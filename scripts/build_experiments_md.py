"""Assemble EXPERIMENTS.md from the benchmark result tables.

Run ``pytest benchmarks/ --benchmark-only`` first (it writes one text
table per figure under ``benchmarks/results/``), then::

    python scripts/build_experiments_md.py
"""

from __future__ import annotations

from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated on the
simulated substrate (see DESIGN.md for what substitutes for what).
Absolute numbers are not comparable — the substrate is a simulator, not
the authors' Xeon testbed — so each entry records the paper's claim,
our measured analogue, and whether the *shape* (who wins, roughly by
what factor, where the crossovers fall) reproduces.

All measured tables below are emitted verbatim by
`pytest benchmarks/ --benchmark-only` (files in `benchmarks/results/`);
the same assertions that gate the benchmarks encode the shape checks.
Programs run at 0.3x their calibrated lengths in the benches; speedup
ratios are length-invariant to within run-to-run noise.

## Headline (paper abstract vs. measured)

| quantity | paper | measured (fig08) | shape |
|---|---|---|---|
| mixture vs OpenMP default | 1.66x | {MIX:.2f}x | ✅ mixture >> default |
| mixture vs online | 1.34x | {VS_ONLINE:.2f}x | ✅ mixture > online |
| mixture vs offline | 1.25x | {VS_OFFLINE:.2f}x | ⚠️ mixture ≈ offline (see deviations) |
| mixture vs analytic | 1.20x | {VS_ANALYTIC:.2f}x | ✅ mixture > analytic |

## Known deviations (why, and where they matter)

1. **Our "offline" baseline is stronger than the paper's.**  In this
   substrate a single pooled linear model with per-program code-feature
   offsets captures most of the specialisation the mixture provides,
   because the simulated cost landscape around each optimum is flatter
   than real hardware's.  Consequence: mixture ≈ offline ≈ monolithic
   overall (within a few percent) instead of the paper's 1.22-1.25x
   gaps (figures 8, 14c, 16).  The mixture still wins or ties every
   scenario against online/analytic/default, never slows the target or
   the workload appreciably, and keeps the architectural advantages
   (extensibility, expert provenance) the paper argues for.
2. **Policy-ordering transposition.**  The paper has analytic as the
   strongest baseline (1.39x) above offline (1.33x); for us offline is
   strongest and analytic sits near online.  The analytic policy's
   exploration windows are expensive at our region granularity
   (~10^2 regions/run vs the paper's ~10^4 loop entries).
3. **Expert-selection frequency (fig15b)** concentrates on the two
   32-core experts: the domain-distance gating (DESIGN.md §6.3) rightly
   keeps 12-core experts out of most 32-core states.  The paper's
   selector spread selections across all four.
4. **ep-class programs** (ep, blackscholes, swaptions): under a
   proportional-share scheduler, occupying every core is genuinely
   optimal for synchronisation-free codes, so no policy can beat the
   default there — all smart policies hover at ~1.0x where the paper
   reports small gains.

## Per-experiment record
"""

#: Experiment id -> (paper claim, shape verdict).
COMMENTARY = {
    "fig01": (
        "50 h of highly dynamic activity on a 2912-core system",
        "✅ synthetic log reproduces scale, burstiness and diurnal shape",
    ),
    "fig02": (
        "policies react differently over time; mixture switches experts",
        "✅ decision streams per policy; the mixture's choices vary with "
        "the environment",
    ),
    "fig03": (
        "either expert beats analytic; mixture best of all",
        "✅ mixture >= best single expert >= analytic > default",
    ),
    "tab01": (
        "per-expert (w, m) weights over the 10 features + β",
        "✅ produced by actual training; four distinct experts from the "
        "2x2 split",
    ),
    "fig06": (
        "feature importance varies across experts",
        "✅ per-expert π distributions differ; environment features "
        "carry substantial weight",
    ),
    "fig07": (
        "static/isolated: no overhead, improves mg/cg/art (1.11x avg)",
        "✅ no benchmark below 0.9x; cg/mg/art improve 1.5-2x; hmean "
        "exceeds the paper's 1.11x",
    ),
    "fig08": (
        "mixture 1.66x > analytic 1.39x > offline 1.33x > online 1.23x",
        "⚠️ mixture > online/analytic and ≈ offline (deviations 1-2)",
    ),
    "fig09": (
        "small/low: mixture 1.5x over default, best everywhere",
        "✅ mixture ~1.3-1.4x, top or tied-top per benchmark",
    ),
    "fig10": (
        "small/high: mixture 1.51x, online hurts ft/sp/art",
        "✅ same shape; online weakest of the adaptive policies",
    ),
    "fig11": (
        "large/low: mixture 1.74x; bt/lu/cg/equake benefit most",
        "⚠️ gains compress under extreme contention (~1.1x); cg/mg/art "
        "still the best movers; mixture ties the best policy",
    ),
    "fig12": (
        "large/high: mixture 1.62x",
        "⚠️ same compression as fig11; ordering vs online/analytic holds",
    ),
    "fig13a": (
        "mixture never degrades workloads; improves them 1.19x",
        "✅ mixture workload gain ≥ 1.0 on every target, ~1.1-1.2x overall",
    ),
    "fig13b": (
        "both-smart pairs: mixture-mixture best, 1.81x",
        "✅ smart pairs stabilise the system; mixture pairing at/near "
        "the top (our combined gains are larger than the paper's)",
    ),
    "fig14a": (
        "live replay with failure: mixture 1.61x, superior to all",
        "⚠️ all adaptive policies gain ~2x; mixture within noise of the "
        "best",
    ),
    "fig14b": (
        "affinity helps everyone, mixture most (2.1x total)",
        "✅ affinity gain for every policy; mixture+affinity best overall",
    ),
    "fig14c": (
        "mixture 1.22x over a monolithic model on the same data",
        "⚠️ mixture ≈ monolithic here (deviation 1)",
    ),
    "fig15a": (
        "experts 79-82% env-prediction accuracy; mixture 87%",
        "✅ experts individually accurate; the mixture's chosen expert "
        "at least as accurate as the average",
    ),
    "fig15b": (
        "one expert dominates per scenario, but all get used",
        "⚠️ dominance reproduces; usage concentrates on the two "
        "platform-matched experts (deviation 3)",
    ),
    "fig15c": (
        "adding experts steadily improves; 4 experts 1.22x over best "
        "single",
        "⚠️ full mixture ≈ best single expert; no catastrophic dip as "
        "experts are added",
    ),
    "fig16": (
        "8 experts (1.63x) > 4 experts (1.55x) > monolithic",
        "⚠️ 8 ≈ 4 ≈ monolithic within a few percent (deviation 1)",
    ),
    "fig17": (
        "experts prefer different thread ranges; mixture spans them",
        "✅ per-expert distributions differ; mixture uses multiple "
        "ranges",
    ),
    "abl_selector_quality": (
        "(ours) hyperplane selection vs cheaper strategies",
        "✅ shipped selector ≈ best; random selection collapses to ~1.0x",
    ),
    "abl_online_update": (
        "(ours) value of Section 5.3's online updates",
        "✅ pretrained+online ≥ frozen variants ≥ blind even partition",
    ),
    "abl_domain_weight": (
        "(ours) domain-distance gating weight",
        "✅ gating on (5-50) beats gating off (0)",
    ),
    "abl_envelope_clipping": (
        "(ours) training-envelope clipping",
        "✅ clipping beats raw linear extrapolation",
    ),
    "ext_svm_experts": (
        "(Section 9 future work) SVM-style experts in the mixture",
        "✅ kernel experts competitive; pooled mixture does not collapse",
    ),
    "ext_data_tradeoff": (
        "(Section 9 future work) experts vs training-data size",
        "✅ both model kinds degrade gracefully with less data",
    ),
    "ext_portability": (
        "(Section 9 future work) unseen 48-core platform",
        "✅ the 12/32-core experts transfer: clear gains over default",
    ),
    "ext_hierarchical": (
        "(related work [18]) hierarchical vs flat expert gating",
        "✅ the two-level gate is competitive with the flat gate",
    ),
    "ext_unseen_suite": (
        "(extension) a whole suite never seen in training (Rodinia)",
        "✅ the mixture's gains generalise to new kernel families",
    ),
    "ext_energy": (
        "(extension, power motivation of [30]) energy to solution",
        "✅ stopping over-threading saves energy, not just time",
    ),
    "ext_churn": (
        "(extension) job churn: Poisson arrivals instead of fixed "
        "restarting workloads",
        "✅ the mixture's advantage survives contention that changes "
        "through arrivals",
    ),
}


def _headline() -> str:
    """Fill the headline table from the measured fig08 overall row."""
    path = RESULTS / "fig08.txt"
    values = {}
    if path.exists():
        for line in path.read_text().splitlines():
            if line.startswith("overall hmean"):
                cells = line.split()
                # scenario label is two words; policies follow the
                # header order default/online/offline/analytic/mixture.
                numbers = [float(v) for v in cells[2:]]
                for name, value in zip(
                    ("default", "online", "offline", "analytic",
                     "mixture"), numbers,
                ):
                    values[name] = value
    if not values:
        return HEADER.replace("{MIX:.2f}", "?").replace(
            "{VS_ONLINE:.2f}", "?").replace(
            "{VS_OFFLINE:.2f}", "?").replace(
            "{VS_ANALYTIC:.2f}", "?")
    mixture = values["mixture"]
    return HEADER.format(
        MIX=mixture,
        VS_ONLINE=mixture / values["online"],
        VS_OFFLINE=mixture / values["offline"],
        VS_ANALYTIC=mixture / values["analytic"],
    )


def main() -> None:
    sections = [_headline()]
    for name, (claim, verdict) in COMMENTARY.items():
        sections.append(f"### {name}\n")
        sections.append(f"*Paper:* {claim}\n")
        sections.append(f"*Shape:* {verdict}\n")
        path = RESULTS / f"{name}.txt"
        if path.exists():
            sections.append("```")
            sections.append(path.read_text().rstrip())
            sections.append("```\n")
        else:
            sections.append(
                "_(no saved table — run the benchmark suite first)_\n"
            )
    out = ROOT / "EXPERIMENTS.md"
    out.write_text("\n".join(sections))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
