#!/usr/bin/env python
"""Roll the benchmark timing ledger into ``BENCH_summary.json``.

The benchmark conftest appends one ledger entry per benchmark test run
(``benchmarks/results/bench_timings.json``), keyed by pytest nodeid
plus an optional ``@<tag>`` suffix (``REPRO_TIMING_TAG``, e.g. ``cold``
vs ``warm`` cache passes).  This script groups those entries per figure
and writes a repo-root ``BENCH_summary.json`` with the headline numbers
a reader (or CI artifact diff) wants: wall clock, simulation runs
executed, and run-cache hits per variant.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_LEDGER = REPO_ROOT / "benchmarks" / "results" / "bench_timings.json"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_summary.json"


def figure_name(nodeid: str) -> str:
    """``benchmarks/bench_fig08_x.py::test_y`` -> ``fig08_x``."""
    path = nodeid.split("::", 1)[0]
    stem = Path(path).stem
    if stem.startswith("bench_"):
        stem = stem[len("bench_"):]
    return stem


def split_tag(key: str) -> tuple:
    """Split ``nodeid@tag`` into (nodeid, tag); tag defaults to 'run'."""
    if "@" in key:
        nodeid, tag = key.rsplit("@", 1)
        return nodeid, tag
    return key, "run"


def scaling_block(variants: dict) -> dict:
    """Speedups of the ``jN`` variants over the ``j1`` serial leg.

    Variants tagged ``j1``/``j2``/``j4`` (written by the per-jobs
    bench-gate passes) are cold-cache runs of the same figure at
    different worker counts; their wall-clock ratio against ``j1`` is
    the parallel-scaling headline.  Non-``jN`` tags are ignored.
    """
    serial = variants.get("j1")
    if not serial or not serial.get("wall_s"):
        return {}
    speedups = {}
    for tag, entry in variants.items():
        if re.fullmatch(r"j\d+", tag) and tag != "j1":
            wall = entry.get("wall_s")
            if wall:
                speedups[tag] = round(serial["wall_s"] / wall, 3)
    return speedups


FLEET_NODE = re.compile(
    r"bench_serve_fleet_throughput\.py::test_fleet_throughput_"
    r"(\d+)_shards?$"
)


def serve_fleet_block(ledger: dict) -> dict:
    """Per-shard-count wall clock for the serving-fleet benchmark.

    The fleet benchmark runs one test per shard count over the same
    request stream, so the wall-clock ratio of the 1-shard leg to the
    N-shard leg is the sharding speedup headline (the per-run req/s
    and p99 live in the ``serve_fleet_throughput_*`` results files).
    """
    by_shards = {}
    for key in ledger:
        nodeid, _ = split_tag(key)
        match = FLEET_NODE.search(nodeid)
        if match:
            by_shards[int(match.group(1))] = float(
                ledger[key].get("duration_s", 0.0)
            )
    if not by_shards:
        return {}
    block = {
        f"{shards}_shard_wall_s": round(wall, 4)
        for shards, wall in sorted(by_shards.items())
    }
    serial = by_shards.get(1)
    if serial:
        for shards, wall in sorted(by_shards.items()):
            if shards != 1 and wall > 0:
                block[f"speedup_{shards}_shards"] = round(
                    serial / wall, 3
                )
    return block


def serve_resize_block(results_dir: Path) -> dict:
    """The live-resharding pause headline, if the bench produced it.

    ``bench_serve_resize_pause.py`` writes its metrics sidecar next to
    the ledger; surface the pause bounds and migration counts so a CI
    artifact diff shows resize-cost drift at a glance.
    """
    path = results_dir / "serve_resize_pause.json"
    if not path.is_file():
        return {}
    try:
        metrics = json.loads(path.read_text())
    except json.JSONDecodeError:
        return {}
    return {
        key: metrics[key]
        for key in ("resizes", "streams_migrated",
                    "resize_pause_p99_s", "resize_pause_max_s",
                    "throughput_rps")
        if key in metrics
    }


def summarise(ledger: dict) -> dict:
    figures: dict = {}
    for key in sorted(ledger):
        entry = ledger[key]
        nodeid, tag = split_tag(key)
        variants = figures.setdefault(figure_name(nodeid), {})
        variants[tag] = {
            "wall_s": round(float(entry.get("duration_s", 0.0)), 4),
            "runs_executed": int(entry.get("runs_executed", 0)),
            "cache_hits": int(entry.get("cache_hits", 0)),
            "jobs": entry.get("jobs"),
        }
    for variants in figures.values():
        speedups = scaling_block(variants)
        if speedups:
            variants["scaling_vs_j1"] = speedups
    totals = {
        "figures": len(figures),
        "entries": len(ledger),
        "wall_s": round(sum(
            float(e.get("duration_s", 0.0)) for e in ledger.values()
        ), 4),
        "runs_executed": sum(
            int(e.get("runs_executed", 0)) for e in ledger.values()
        ),
        "cache_hits": sum(
            int(e.get("cache_hits", 0)) for e in ledger.values()
        ),
    }
    summary = {"totals": totals, "figures": figures}
    fleet = serve_fleet_block(ledger)
    if fleet:
        summary["serve_fleet"] = fleet
    return summary


def attach_resize_block(summary: dict, results_dir: Path) -> dict:
    resize = serve_resize_block(results_dir)
    if resize:
        summary["serve_resize"] = resize
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Summarise the benchmark timing ledger into "
                    "BENCH_summary.json.",
    )
    parser.add_argument(
        "--ledger", type=Path, default=DEFAULT_LEDGER,
        help="timing ledger to read "
             "(default: benchmarks/results/bench_timings.json)",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help="summary to write (default: BENCH_summary.json)",
    )
    args = parser.parse_args(argv)

    try:
        with args.ledger.open() as handle:
            ledger = json.load(handle)
    except FileNotFoundError:
        print(f"error: ledger not found: {args.ledger}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: malformed ledger {args.ledger}: {exc}",
              file=sys.stderr)
        return 2

    summary = attach_resize_block(summarise(ledger),
                                  args.ledger.parent)
    args.output.write_text(json.dumps(summary, indent=2, sort_keys=True)
                           + "\n")
    totals = summary["totals"]
    print(
        f"wrote {args.output}: {totals['figures']} figures, "
        f"{totals['entries']} entries, {totals['wall_s']:.1f}s wall, "
        f"{totals['runs_executed']} runs executed, "
        f"{totals['cache_hits']} cache hits"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
