#!/usr/bin/env python
"""Gate benchmark wall-clock against the checked-in baseline.

Compares the freshly produced timing ledger
(``benchmarks/results/bench_timings.json``, written by the benchmark
suite's conftest hooks) against the committed baseline
(``benchmarks/baseline_timings.json``) and fails when either

* an entry's wall clock regressed by more than ``--max-regression``
  (default 25%), or
* an entry's ``runs_executed`` count changed at all — the simulation
  work a figure performs is deterministic, so any change means the
  experiment itself changed and the baseline must be re-recorded
  deliberately.

Entries are keyed by pytest nodeid, optionally suffixed ``@<tag>``
(``REPRO_TIMING_TAG``); an entry recorded under a different worker
count (``jobs``) is checked for run counts only, since wall clock is
not comparable across parallelism levels.

Underscore-prefixed baseline keys are directives, not timing entries.
``_gates`` declares *ratio gates* between two entries of the current
ledger::

    "_gates": {
        "fig08 cold j4 vs serial": {
            "numerator": "<nodeid>@j4",
            "denominator": "<nodeid>@j1",
            "max_ratio": 1.10
        }
    }

The gate fails when ``numerator.duration_s / denominator.duration_s``
exceeds ``max_ratio`` — e.g. the parallel cold pass of a figure must
not be slower than its serial leg beyond the allowed factor.  A gate
whose entries are absent from the current ledger is skipped with a
note (partial bench invocations stay usable).  A gate may also declare
``min_cores``: on hosts with fewer cores than that it is skipped with
a note instead of failing vacuously — parallel-scaling gates (e.g. the
serving fleet's shards=2 vs shards=1 throughput floor) cannot hold on
a single-core machine.

A gate with ``"kind": "absolute"`` bounds a metric a benchmark wrote
to a results-dir JSON file instead of comparing ledger entries::

    "_gates": {
        "resize pause p99": {
            "kind": "absolute",
            "results_file": "serve_resize_pause.json",
            "metric": "resize_pause_p99_s",
            "max_value": 0.5,
            "min_cores": 2
        }
    }

``results_file`` is resolved relative to the current ledger's
directory; a missing file or metric is skipped with a note, and
``min_cores`` works as for ratio gates.  The gate fails when the
metric exceeds ``max_value`` — e.g. a live resize must pause serving
for at most half a second at p99.

Exit status: 0 clean, 1 regression found, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline_timings.json"
DEFAULT_CURRENT = REPO_ROOT / "benchmarks" / "results" / "bench_timings.json"

#: Wall clocks below this are timer noise; never fail on them.
MIN_COMPARABLE_SECONDS = 0.5


def load_ledger(path: Path) -> dict:
    try:
        with path.open() as handle:
            ledger = json.load(handle)
    except FileNotFoundError:
        print(f"error: ledger not found: {path}", file=sys.stderr)
        raise SystemExit(2)
    except json.JSONDecodeError as exc:
        print(f"error: malformed ledger {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(ledger, dict):
        print(f"error: ledger {path} is not an object", file=sys.stderr)
        raise SystemExit(2)
    return ledger


def compare(
    baseline: dict, current: dict, max_regression: float
) -> list:
    """Compare ledgers; returns a list of failure strings."""
    failures = []
    compared = 0
    for key in sorted(baseline):
        if key.startswith("_"):
            continue  # directive block (e.g. _gates), not an entry
        base = baseline[key]
        now = current.get(key)
        if now is None:
            # The current run did not exercise this entry (e.g. a
            # partial benchmark invocation); absence is not a
            # regression, so report and move on.
            print(f"  skip  {key}: no current entry")
            continue
        compared += 1

        base_runs = base.get("runs_executed")
        now_runs = now.get("runs_executed")
        if base_runs != now_runs:
            failures.append(
                f"{key}: runs_executed changed "
                f"{base_runs} -> {now_runs} (deterministic work drifted; "
                f"re-record the baseline if intentional)"
            )
            continue

        base_wall = float(base.get("duration_s", 0.0))
        now_wall = float(now.get("duration_s", 0.0))
        if base.get("jobs") != now.get("jobs"):
            print(
                f"  note  {key}: jobs {base.get('jobs')} -> "
                f"{now.get('jobs')}; wall clock not compared"
            )
            continue
        if base_wall < MIN_COMPARABLE_SECONDS:
            print(f"  skip  {key}: baseline {base_wall:.3f}s below "
                  f"noise floor")
            continue
        ratio = (now_wall - base_wall) / base_wall
        status = "ok" if ratio <= max_regression else "FAIL"
        print(
            f"  {status:4s}  {key}: {base_wall:.2f}s -> {now_wall:.2f}s "
            f"({ratio:+.1%})"
        )
        if ratio > max_regression:
            failures.append(
                f"{key}: wall clock regressed {ratio:+.1%} "
                f"({base_wall:.2f}s -> {now_wall:.2f}s; "
                f"limit {max_regression:.0%})"
            )
    if compared == 0:
        failures.append(
            "no baseline entry had a current counterpart — the bench "
            "run produced nothing comparable"
        )
    return failures


def check_absolute_gate(label: str, gate: dict,
                        results_dir: Path) -> list:
    """Evaluate one ``kind: absolute`` metric-bound directive."""
    path = results_dir / str(gate.get("results_file", ""))
    if not path.is_file():
        print(f"  skip  gate {label}: {path.name} not produced")
        return []
    try:
        metrics = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"gate {label}: malformed {path.name}: {exc}"]
    metric = str(gate.get("metric", ""))
    if metric not in metrics:
        print(f"  skip  gate {label}: {path.name} has no "
              f"{metric!r} metric")
        return []
    value = float(metrics[metric])
    max_value = float(gate["max_value"])
    status = "ok" if value <= max_value else "FAIL"
    print(
        f"  {status:4s}  gate {label}: {metric} = {value:.4f} "
        f"(limit {max_value:.4f})"
    )
    if value > max_value:
        return [
            f"gate {label}: {metric} {value:.4f} exceeds bound "
            f"{max_value:.4f} ({path.name})"
        ]
    return []


def check_gates(baseline: dict, current: dict,
                results_dir: Path) -> list:
    """Evaluate the baseline's ``_gates`` directives."""
    failures = []
    gates = baseline.get("_gates", {})
    if not isinstance(gates, dict):
        return [f"_gates must be an object, got {type(gates).__name__}"]
    for label in sorted(gates):
        gate = gates[label]
        min_cores = int(gate.get("min_cores", 0))
        if min_cores and (os.cpu_count() or 1) < min_cores:
            # A parallelism gate on a host too small to exhibit the
            # parallelism would fail vacuously — skip loudly instead.
            print(
                f"  skip  gate {label}: needs >= {min_cores} cores, "
                f"host has {os.cpu_count() or 1}"
            )
            continue
        if gate.get("kind") == "absolute":
            failures += check_absolute_gate(label, gate, results_dir)
            continue
        numerator = current.get(gate.get("numerator"))
        denominator = current.get(gate.get("denominator"))
        if numerator is None or denominator is None:
            print(f"  skip  gate {label}: entries absent from current "
                  f"ledger")
            continue
        num_wall = float(numerator.get("duration_s", 0.0))
        den_wall = float(denominator.get("duration_s", 0.0))
        if den_wall <= 0.0:
            print(f"  skip  gate {label}: denominator wall clock is 0")
            continue
        max_ratio = float(gate.get("max_ratio", 1.0))
        ratio = num_wall / den_wall
        status = "ok" if ratio <= max_ratio else "FAIL"
        print(
            f"  {status:4s}  gate {label}: {num_wall:.2f}s / "
            f"{den_wall:.2f}s = {ratio:.2f} (limit {max_ratio:.2f})"
        )
        if ratio > max_ratio:
            failures.append(
                f"gate {label}: ratio {ratio:.2f} exceeds "
                f"{max_ratio:.2f} ({num_wall:.2f}s vs {den_wall:.2f}s)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmark timings regress vs the "
                    "checked-in baseline.",
    )
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help="committed baseline ledger "
             "(default: benchmarks/baseline_timings.json)",
    )
    parser.add_argument(
        "--current", type=Path, default=DEFAULT_CURRENT,
        help="freshly produced ledger "
             "(default: benchmarks/results/bench_timings.json)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed fractional wall-clock increase (default: 0.25)",
    )
    args = parser.parse_args(argv)
    if args.max_regression < 0:
        parser.error("--max-regression must be non-negative")

    baseline = load_ledger(args.baseline)
    current = load_ledger(args.current)
    print(f"bench regression gate: {len(baseline)} baseline entries, "
          f"limit {args.max_regression:.0%}")
    failures = compare(baseline, current, args.max_regression)
    failures += check_gates(baseline, current, args.current.parent)
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("clean: no benchmark regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
