"""Figure 10: per-benchmark speedups, small workload / high frequency."""

from conftest import BENCH_SCALE, MEDIUM_TARGETS, emit, run_once

from repro.experiments.dynamic import run_dynamic_scenario
from repro.experiments.scenarios import SMALL_HIGH


def test_fig10_small_high(benchmark, policies):
    table = run_once(benchmark, lambda: run_dynamic_scenario(
        SMALL_HIGH, targets=MEDIUM_TARGETS, policies=policies,
        iterations_scale=BENCH_SCALE, seeds=(0,),
    ))
    emit("fig10", table.format())

    hmean = table.hmean()
    # Paper: 1.51x over default; "In all cases our approach achieves
    # the best performance improvement."
    assert hmean["mixture"] > 1.15
    assert hmean["mixture"] >= max(
        hmean["online"], hmean["analytic"],
    )
    for row in table.rows:
        assert row.speedups["mixture"] > 0.85, row.target
