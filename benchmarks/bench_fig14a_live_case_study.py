"""Figure 14a: the live-system case study (Result 5).

The Figure 1 trace is replayed with a half-machine hardware-failure
window.  Paper shape: mixture (1.61x) > analytic (1.43x) > offline
(1.34x) > online (1.19x) over the default.
"""

from conftest import BENCH_SCALE, SMALL_TARGETS, emit, run_once

from repro.experiments.live_case_study import run_live_case_study


def test_fig14a_live_case_study(benchmark, policies):
    result = run_once(benchmark, lambda: run_live_case_study(
        targets=SMALL_TARGETS, policies=policies,
        iterations_scale=BENCH_SCALE,
    ))
    emit("fig14a", result.format())

    overall = result.overall()
    # Shape: the mixture is the superior policy in the live replay.
    assert overall["mixture"] > 1.05
    assert overall["mixture"] >= 0.95 * max(
        v for k, v in overall.items() if k != "mixture"
    )
    assert overall["mixture"] > overall["analytic"] * 0.97
