"""Figure 11: per-benchmark speedups, large workload / low frequency."""

from conftest import BENCH_SCALE, SMALL_TARGETS, emit, run_once

from repro.experiments.dynamic import run_dynamic_scenario
from repro.experiments.scenarios import LARGE_LOW


def test_fig11_large_low(benchmark, policies):
    table = run_once(benchmark, lambda: run_dynamic_scenario(
        LARGE_LOW, targets=SMALL_TARGETS, policies=policies,
        iterations_scale=BENCH_SCALE, seeds=(0,),
    ))
    emit("fig11", table.format())

    hmean = table.hmean()
    # Paper: mixture on top (1.74x over default there); under heavy
    # contention our simulator's gains are narrower but the ordering
    # against the reactive policies must hold.
    assert hmean["mixture"] > 1.0
    assert hmean["mixture"] >= 0.97 * max(
        hmean["online"], hmean["analytic"],
    )
    for row in table.rows:
        assert row.speedups["mixture"] > 0.8, row.target
