"""Figure 15a: environment-predictor accuracy.

Paper shape: individual experts predict the future environment
accurately (79-82%); combined in the mixture the accuracy of the
*chosen* expert's prediction is higher still (87%).
"""

from conftest import BENCH_SCALE, SMALL_TARGETS, emit, run_once

import numpy as np

from repro.experiments.analysis import run_env_accuracy
from repro.experiments.scenarios import SMALL_HIGH, SMALL_LOW


def test_fig15a_env_accuracy(benchmark):
    result = run_once(benchmark, lambda: run_env_accuracy(
        targets=SMALL_TARGETS, scenarios=(SMALL_LOW, SMALL_HIGH),
        iterations_scale=BENCH_SCALE,
    ))
    emit("fig15a", result.format())

    # Shape: experts are individually accurate; the mixture's selected
    # expert is at least as accurate as the average expert.
    assert max(result.per_expert) > 0.5
    assert result.mixture >= 0.95 * float(np.mean(result.per_expert))
    assert result.mixture > 0.5
