"""Extension: a whole unseen suite (Rodinia-style kernels).

Trained on NAS only, evaluated on graph traversal, stencils,
wavefronts and clustering kernels.  Expected shape: the mixture still
improves over the OpenMP default on the suite average.
"""

from conftest import BENCH_SCALE, emit, run_once

from repro.experiments.extensions import run_unseen_suite


def test_ext_unseen_suite(benchmark):
    result = run_once(benchmark, lambda: run_unseen_suite(
        iterations_scale=BENCH_SCALE,
    ))
    emit("ext_unseen_suite", result.format())

    assert result.speedups["mixture on rodinia"] > 1.05
