"""Decision-latency microbenchmarks.

The paper's case for the mixture rests partly on overhead: it makes
"instantaneous decisions" instead of the analytic model's exploratory
runs.  These benchmarks time one `select()` call per policy — the cost
a real runtime would pay at every parallel-region entry.  The mixture's
decision must stay within the same order of magnitude as the trivial
policies (microseconds, vs the milliseconds a region takes to run).
"""

import pytest

from conftest import emit

from repro.core.policies import (
    AnalyticPolicy,
    DefaultPolicy,
    OnlineHillClimbPolicy,
)
from repro.experiments.runner import standard_policies
from tests.core.test_policies import make_ctx


def _time_select(benchmark, policy):
    ctx = make_ctx()
    policy.select(ctx)  # warm any lazy state
    return benchmark(policy.select, ctx)


def test_overhead_default(benchmark):
    _time_select(benchmark, DefaultPolicy())


def test_overhead_online(benchmark):
    _time_select(benchmark, OnlineHillClimbPolicy())


def test_overhead_analytic(benchmark):
    _time_select(benchmark, AnalyticPolicy())


def test_overhead_offline(benchmark, policies):
    _time_select(benchmark, policies["offline"]())


def test_overhead_mixture(benchmark, policies):
    policy = policies["mixture"]()
    ctx = make_ctx()
    policy.select(ctx)
    result = benchmark(policy.select, ctx)
    # One mixture decision (score pending predictions, update the
    # selector, pick an expert, predict) must stay far below a region's
    # runtime (~100 ms simulated): well under a millisecond of wall
    # time here.
    assert benchmark.stats["mean"] < 1e-3
