"""Ablation: the domain-distance term in the selection errors.

DESIGN.md calls out the decision to penalise experts consulted outside
their training envelope.  Without it, an out-of-domain expert whose
*environment* numbers happen to extrapolate plausibly can win the
selection contest while its *thread* advice is stale.
"""

from conftest import compare_variants, emit, format_variants, run_once

from repro.core.policies import MixturePolicy
from repro.core.training import default_experts


def test_abl_domain_weight(benchmark):
    bundle = default_experts()
    variants = {
        "domain weight 5 (shipped)": lambda: MixturePolicy(
            bundle.experts, domain_weight=5.0,
        ),
        "domain weight 0": lambda: MixturePolicy(
            bundle.experts, domain_weight=0.0,
        ),
        "domain weight 50": lambda: MixturePolicy(
            bundle.experts, domain_weight=50.0,
        ),
    }
    hmeans = run_once(benchmark, lambda: compare_variants(variants))
    emit("abl_domain_weight",
         format_variants("Ablation: domain-distance weight", hmeans))

    shipped = hmeans["domain weight 5 (shipped)"]
    assert shipped >= 0.95 * max(hmeans.values())
