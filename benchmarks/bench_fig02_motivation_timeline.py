"""Figure 2: thread selections over time, lu vs mg on 12 cores."""

from conftest import BENCH_SCALE, emit, run_once

from repro.experiments.motivation import run_motivation


def test_fig02_motivation_timeline(benchmark):
    result = run_once(
        benchmark, lambda: run_motivation(iterations_scale=BENCH_SCALE),
    )

    lines = ["== Figure 2: thread choices over time (lu vs mg) =="]
    for policy, choices in result.thread_choices.items():
        series = " ".join(
            f"{t:.0f}s:{n}" for t, n in choices[:: max(1, len(choices) // 12)]
        )
        lines.append(f"{policy:10s} {series}")
    emit("fig02", "\n".join(lines))

    # Shape: every policy produces a decision stream; the mixture's
    # choices vary over time (it reacts to the changing environment).
    for policy, choices in result.thread_choices.items():
        assert choices, policy
    mixture_threads = {n for _, n in result.thread_choices["mixture"]}
    assert len(mixture_threads) > 1
