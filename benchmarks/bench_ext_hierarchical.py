"""Extension: hierarchical vs flat expert gating (HME, ref [18]).

Expected shape: the two-level gate (platform group first, expert within
the group second) is competitive with the flat hyperplane gate — the
paper's related work motivates hierarchy as the natural way to scale to
many experts.
"""

from conftest import compare_variants, emit, format_variants, run_once

from repro.core.features import NUM_FEATURES
from repro.core.hierarchical import build_hierarchical_selector
from repro.core.policies import MixturePolicy
from repro.core.training import default_experts
from repro.experiments.runner import mixture_factory


def test_ext_hierarchical(benchmark):
    bundle = default_experts()

    def hme():
        return MixturePolicy(
            bundle.experts,
            selector=build_hierarchical_selector(
                bundle, dim=NUM_FEATURES,
            ),
        )

    variants = {
        "flat gate (shipped)": mixture_factory(bundle),
        "hierarchical gate (HME)": hme,
    }
    hmeans = run_once(benchmark, lambda: compare_variants(variants))
    emit("ext_hierarchical",
         format_variants("Extension: hierarchical expert gating", hmeans))

    assert hmeans["hierarchical gate (HME)"] > 1.0
    assert hmeans["hierarchical gate (HME)"] >= 0.85 * hmeans[
        "flat gate (shipped)"
    ]
