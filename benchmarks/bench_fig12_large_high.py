"""Figure 12: per-benchmark speedups, large workload / high frequency."""

from conftest import BENCH_SCALE, SMALL_TARGETS, emit, run_once

from repro.experiments.dynamic import run_dynamic_scenario
from repro.experiments.scenarios import LARGE_HIGH


def test_fig12_large_high(benchmark, policies):
    table = run_once(benchmark, lambda: run_dynamic_scenario(
        LARGE_HIGH, targets=SMALL_TARGETS, policies=policies,
        iterations_scale=BENCH_SCALE, seeds=(0,),
    ))
    emit("fig12", table.format())

    hmean = table.hmean()
    # Paper: 1.62x over default, beating online/offline/analytic.
    assert hmean["mixture"] > 1.0
    assert hmean["mixture"] >= 0.97 * max(
        hmean["online"], hmean["analytic"],
    )
    for row in table.rows:
        assert row.speedups["mixture"] > 0.8, row.target
