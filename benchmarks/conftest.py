"""Shared benchmark infrastructure.

Every benchmark regenerates one paper figure/table at a reduced but
faithful scale (full policy set, real workload sets, ~1/3-length
programs), prints the result table, writes it under
``benchmarks/results/`` (EXPERIMENTS.md is assembled from these), and
asserts the paper's qualitative *shape* — who wins, roughly by how
much — rather than absolute numbers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

#: Program-length scale for benchmark runs (full programs are ~3x).
BENCH_SCALE = 0.3

#: Target sets: the full evaluation list is used where affordable, a
#: representative subset where a figure multiplies many dimensions.
FULL_TARGETS = (
    "bt", "cg", "ep", "ft", "is", "lu", "mg", "sp",
    "ammp", "art", "equake", "blackscholes", "bodytrack", "freqmine",
)
MEDIUM_TARGETS = (
    "bt", "cg", "ep", "ft", "is", "lu", "mg", "sp", "art", "bodytrack",
)
SMALL_TARGETS = ("cg", "ep", "lu", "mg", "art", "bodytrack")

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a figure's table and save it for EXPERIMENTS.md."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


#: Wall-clock timing ledger, written to ``results/bench_timings.json``.
#: Keys are test node ids, optionally suffixed ``@$REPRO_TIMING_TAG`` so
#: cold-cache and warm-cache passes of the same benchmark can be
#: recorded side by side.
TIMINGS_PATH = RESULTS_DIR / "bench_timings.json"
_TIMINGS: dict = {}


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Record each benchmark's wall-clock time and simulation counts.

    ``runs_executed``/``cache_hits`` are deltas of the process-wide
    :data:`repro.exec.STATS` counters, so an entry shows not just how
    long a benchmark took but how many simulations it actually ran
    versus replayed from the run cache.
    """
    from repro.exec import STATS, resolve_jobs

    before = STATS.snapshot()
    started = time.perf_counter()
    yield
    duration = time.perf_counter() - started
    after = STATS.snapshot()
    key = item.nodeid
    tag = os.environ.get("REPRO_TIMING_TAG", "").strip()
    if tag:
        key = f"{key}@{tag}"
    _TIMINGS[key] = {
        "duration_s": round(duration, 4),
        "runs_executed": after["executed"] - before["executed"],
        "cache_hits": after["cache_hits"] - before["cache_hits"],
        "jobs": resolve_jobs(),
    }


def pytest_sessionfinish(session, exitstatus):
    """Merge this session's timings into the on-disk ledger."""
    if not _TIMINGS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    merged: dict = {}
    if TIMINGS_PATH.exists():
        try:
            merged = json.loads(TIMINGS_PATH.read_text())
        except (OSError, ValueError):
            merged = {}
    merged.update(_TIMINGS)
    TIMINGS_PATH.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture(scope="session")
def policies():
    """The five evaluated policies (trains/loads the experts once)."""
    from repro.experiments.runner import standard_policies

    return standard_policies()


def compare_variants(variants, targets=SMALL_TARGETS,
                     iterations_scale=BENCH_SCALE, seeds=(0,)):
    """hmean speedups of mixture *variants* vs the OpenMP default.

    ``variants`` maps label -> policy factory; a 'default' baseline is
    added automatically.  Used by the ablation benchmarks.
    """
    from repro.core.policies import DefaultPolicy
    from repro.experiments.runner import compare_policies
    from repro.experiments.scenarios import SMALL_LOW
    from repro.runtime.metrics import harmonic_mean

    policies = {"default": DefaultPolicy, **variants}
    collected = {name: [] for name in variants}
    for target in targets:
        comparison = compare_policies(
            target, SMALL_LOW, policies,
            seeds=seeds, iterations_scale=iterations_scale,
        )
        for name in variants:
            collected[name].append(comparison.speedups[name])
    return {
        name: harmonic_mean(values)
        for name, values in collected.items()
    }


def format_variants(title, hmeans):
    lines = [f"== {title} =="]
    lines.append(f"{'variant':28s}{'speedup':>9s}")
    for name, value in hmeans.items():
        lines.append(f"{name:28s}{value:9.2f}")
    return "\n".join(lines)
