"""Happy-path overhead of the fault-tolerance machinery.

Retries, per-run timeouts, checkpointing and failure reporting exist
for the unhappy path; a healthy grid must not pay for them.  This
benchmark replays a fully-cached grid through an executor with every
robustness feature switched on and asserts the per-request overhead
(fingerprint, cache read, report bookkeeping, checkpoint record) stays
far below the cost of even the tiniest real simulation.
"""

import pytest

from repro.exec import (
    Checkpoint,
    Executor,
    PolicySpec,
    RetryPolicy,
    RunCache,
    RunRequest,
)

#: Grid size; big enough that per-request overhead dominates constants.
GRID = 40

#: Generous absolute bound per cached request, seconds.  A real run at
#: benchmark scale costs tens of milliseconds; replaying one through
#: the full retry/timeout/checkpoint/report machinery must cost well
#: under two.
PER_REQUEST_BOUND = 2e-3


def grid_requests():
    return [
        RunRequest(
            target=target, policy=PolicySpec.fixed(threads), seed=seed,
            iterations_scale=0.02,
        )
        for target in ("cg", "ep")
        for threads in (8, 16)
        for seed in range(GRID // 4)
    ]


def test_overhead_cached_grid_with_faults_armed(benchmark, tmp_path):
    requests = grid_requests()
    cache = RunCache(root=tmp_path / "runs")
    Executor(jobs=1, cache=cache, checkpoint=None).run(requests)
    assert cache.stores == GRID

    def replay():
        executor = Executor(
            jobs=1,
            cache=cache,
            retry=RetryPolicy(max_retries=5),
            run_timeout=300.0,
            checkpoint=Checkpoint(tmp_path / "grid.pkl", interval=10),
            max_pool_rebuilds=3,
        )
        summaries = executor.run(requests)
        assert len(summaries) == GRID
        assert all(r.cached for r in executor.last_report.requests)
        return summaries

    benchmark.pedantic(replay, rounds=3, iterations=1, warmup_rounds=1)
    assert benchmark.stats["mean"] / GRID < PER_REQUEST_BOUND
