"""Section 9 extension: number of experts vs training-data size.

Expected shape: more data helps both model kinds; the 4-expert mixture
on the full data is at least competitive with every smaller-data
configuration.
"""

from conftest import BENCH_SCALE, emit, run_once

from repro.experiments.extensions import run_data_tradeoff


def test_ext_data_tradeoff(benchmark):
    result = run_once(benchmark, lambda: run_data_tradeoff(
        iterations_scale=BENCH_SCALE,
    ))
    emit("ext_data_tradeoff", result.format())

    speedups = result.speedups
    full_mix = speedups.get("experts-4 @ 100%")
    assert full_mix is not None
    assert full_mix >= 0.95 * max(speedups.values())
    # More data never hurts the monolithic model much either.
    assert speedups["monolithic @ 100%"] >= 0.9 * speedups.get(
        "monolithic @ 25%", 0.0,
    )
