"""Serving-latency microbenchmarks: what does crash-safety cost?

The serving runtime journals every selector operation and periodically
snapshots full state so a restart loses nothing.  That durability is
paid on the decision path (one flushed journal line per request), so it
has to be cheap relative to the decision itself: the gate here is that
journaling adds at most 20% to p99 decision latency (plus a small
absolute floor to absorb timer noise on shared CI machines).
"""

from __future__ import annotations

from conftest import emit, run_once

from repro.core.training import default_experts
from repro.runtime.metrics import percentile
from repro.serve import (
    PolicyServer,
    ServeConfig,
    SoakSpec,
    build_policy,
    make_request,
    tiny_training_config,
)

REQUESTS = 1_000
SPEC = SoakSpec(requests=REQUESTS)

#: Allowed journaling overhead: relative on p99, plus an absolute
#: floor so timer jitter on a quiet-but-shared machine cannot flake.
P99_RELATIVE_BUDGET = 1.20
P99_ABSOLUTE_FLOOR_S = 200e-6

_LATENCIES: dict = {}


def _serve_stream(state_dir=None):
    """Per-decision latencies over the standard soak stream."""
    bundle = default_experts(tiny_training_config())
    server = PolicyServer(
        build_policy(bundle), ServeConfig(), state_dir=state_dir
    )
    latencies = []
    for index in range(REQUESTS):
        decision = server.serve_one(make_request(SPEC, index))
        latencies.append(decision.latency_s)
    server.close()
    return latencies


def _stats(latencies):
    return {
        "p50": percentile(latencies, 50),
        "p99": percentile(latencies, 99),
        "max": max(latencies),
    }


def test_serve_latency_plain(benchmark):
    latencies = run_once(benchmark, _serve_stream)
    _LATENCIES["plain"] = latencies
    stats = _stats(latencies)
    emit(
        "overhead_serve_latency_plain",
        "== Serving decision latency, no journaling ==\n"
        f"requests {REQUESTS}; p50 {stats['p50'] * 1e6:.1f}us; "
        f"p99 {stats['p99'] * 1e6:.1f}us; "
        f"max {stats['max'] * 1e6:.1f}us",
    )
    # A decision must stay far below a region's runtime (~100ms
    # simulated): well under a millisecond of p50 wall time here.
    assert stats["p50"] < 1e-3


def test_serve_latency_journaled(benchmark, tmp_path):
    latencies = run_once(
        benchmark, lambda: _serve_stream(tmp_path / "state")
    )
    plain = _LATENCIES.get("plain") or _serve_stream()
    journaled = _stats(latencies)
    baseline = _stats(plain)
    overhead = journaled["p99"] / baseline["p99"] - 1.0
    emit(
        "overhead_serve_latency_journaled",
        "== Serving decision latency, write-ahead journaling ==\n"
        f"requests {REQUESTS}; p50 {journaled['p50'] * 1e6:.1f}us; "
        f"p99 {journaled['p99'] * 1e6:.1f}us; "
        f"max {journaled['max'] * 1e6:.1f}us\n"
        f"p99 overhead vs plain: {overhead:+.1%} "
        f"(budget {P99_RELATIVE_BUDGET - 1:.0%} + "
        f"{P99_ABSOLUTE_FLOOR_S * 1e6:.0f}us floor)",
    )
    assert journaled["p99"] <= (
        baseline["p99"] * P99_RELATIVE_BUDGET + P99_ABSOLUTE_FLOOR_S
    )
