"""Figure 14c: monolithic aggregate model vs the mixture (Result 7).

Paper shape: with the same total training data, the mixture gives a
22% improvement over a single aggregate model — "the failure of the
one size fits all approach".
"""

from conftest import BENCH_SCALE, SMALL_TARGETS, emit, run_once

from repro.experiments.generic_vs_experts import run_granularity


def test_fig14c_monolithic_vs_mixture(benchmark):
    result = run_once(benchmark, lambda: run_granularity(
        targets=SMALL_TARGETS, granularities=(1, 4),
        iterations_scale=BENCH_SCALE,
    ))
    emit("fig14c", result.format())

    # Shape: the mixture at least matches the monolithic model
    # trained on the same data (in this substrate the pooled linear
    # model is a stronger baseline than the paper's; see
    # EXPERIMENTS.md) while remaining extensible.
    assert result.speedups["experts-4"] >= (
        0.95 * result.speedups["monolithic"]
    )
    assert result.speedups["experts-4"] > 1.05
