"""Ablation: Section 5.3's online hyperplane adjustment.

Compares the shipped selector (pretrained + online perceptron updates)
against the same pretrained partition frozen at deployment, and against
a blind even partition with no learning at all.
"""

from conftest import compare_variants, emit, format_variants, run_once

from repro.core.features import NUM_FEATURES
from repro.core.policies import MixturePolicy
from repro.core.selector import FrozenEvenSelector
from repro.core.training import (
    default_experts,
    pretrain_selector_state,
    training_dataset,
)
from repro.experiments.runner import mixture_factory


def test_abl_online_update(benchmark):
    bundle = default_experts()
    samples, _ = training_dataset()
    state = pretrain_selector_state(bundle.experts, samples)
    k = len(bundle.experts)

    def frozen_pretrained():
        selector = FrozenEvenSelector(num_experts=k, dim=NUM_FEATURES)
        selector.load_state(state)
        return MixturePolicy(bundle.experts, selector=selector)

    def frozen_even():
        return MixturePolicy(
            bundle.experts,
            selector=FrozenEvenSelector(num_experts=k, dim=NUM_FEATURES),
        )

    variants = {
        "pretrained + online": mixture_factory(bundle),
        "pretrained, frozen": frozen_pretrained,
        "even, frozen": frozen_even,
    }
    hmeans = run_once(benchmark, lambda: compare_variants(variants))
    emit("abl_online_update",
         format_variants("Ablation: online hyperplane updates", hmeans))

    # The shipped configuration must not lose to its frozen variants,
    # and informed partitions must beat the blind even split.
    assert hmeans["pretrained + online"] >= 0.97 * max(hmeans.values())
    assert hmeans["pretrained + online"] >= 0.97 * hmeans["even, frozen"]
