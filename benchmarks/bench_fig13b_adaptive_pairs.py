"""Figure 13b: both programs adaptive (Result 4).

Paper shape: when both co-executing programs employ the same smart
policy, the combined speedup grows with policy quality, and the
mixture-mixture pairing is the best of all ("a win-win situation").
"""

from conftest import BENCH_SCALE, emit, run_once

from repro.experiments.adaptive_pairs import run_adaptive_pairs

PAIRS = (
    ("lu", "mg"), ("cg", "ep"), ("bt", "is"),
    ("art", "equake"), ("bodytrack", "freqmine"),
)


def test_fig13b_adaptive_pairs(benchmark, policies):
    result = run_once(benchmark, lambda: run_adaptive_pairs(
        pairs=PAIRS, policies=policies, iterations_scale=BENCH_SCALE,
    ))
    emit("fig13b", result.format())

    combined = result.combined()
    # Shape: smart-smart pairings beat default-default, and the
    # mixture pairing is the best combination.
    assert combined["default"] == 1.0
    assert combined["mixture"] > 1.5
    assert combined["mixture"] >= 0.92 * max(combined.values())
