"""Extension: mapping under job churn (arrivals/departures).

The Figure 1 motivation is job churn; the paper's protocol approximates
it with restarting workloads.  Here jobs arrive as a Poisson stream and
run once.  Expected shape: the mixture still beats the OpenMP default
when contention changes through arrivals.
"""

from conftest import BENCH_SCALE, emit, run_once

from repro.experiments.extensions import run_churn


def test_ext_churn(benchmark):
    result = run_once(benchmark, lambda: run_churn(
        iterations_scale=BENCH_SCALE,
    ))
    emit("ext_churn", result.format())

    assert result.speedups["mixture under churn"] > 1.0
