"""Figure 6: per-expert feature impact (π)."""

from conftest import emit, run_once

from repro.core.features import FEATURE_NAMES
from repro.experiments.tables import run_feature_impact


def test_fig06_feature_impact(benchmark):
    result = run_once(benchmark, run_feature_impact)
    emit("fig06", result.format())

    # Shape: each expert's impacts form a distribution (a pie chart),
    # and importance *varies across experts* — "although all experts
    # use the same features, they vary in importance across each
    # expert."
    for impacts in result.per_expert.values():
        assert abs(sum(impacts.values()) - 1.0) < 1e-6
        assert set(impacts) == set(FEATURE_NAMES)
    top_features = {
        max(impacts, key=impacts.get)
        for impacts in result.per_expert.values()
    }
    assert len(result.per_expert) >= 3
    # The environment features carry real weight on average.
    env_mass = sum(
        result.averaged[name] for name in FEATURE_NAMES[3:]
    )
    assert env_mass > 0.2
