"""Figure 17: thread-number distribution per expert and the mixture.

Paper shape: the range of thread numbers varies across experts (their
training environments differ), and the mixture draws on the whole
range.
"""

from conftest import BENCH_SCALE, SMALL_TARGETS, emit, run_once

from repro.experiments.analysis import run_thread_distribution


def test_fig17_thread_distribution(benchmark):
    result = run_once(benchmark, lambda: run_thread_distribution(
        targets=SMALL_TARGETS, iterations_scale=BENCH_SCALE,
    ))
    emit("fig17", result.format())

    def spread(hist):
        return sum(1 for v in hist.values() if v > 0)

    distributions = result.distributions
    # Shape: experts differ in their predicted ranges.
    expert_hists = {
        k: v for k, v in distributions.items() if k != "mixture"
    }
    assert len(expert_hists) == 4
    normalised = []
    for hist in expert_hists.values():
        total = sum(hist.values()) or 1
        normalised.append(
            tuple(round(v / total, 2) for v in hist.values())
        )
    assert len(set(normalised)) > 1  # not all experts identical
    # The mixture uses more than one bucket.
    assert spread(distributions["mixture"]) >= 2
