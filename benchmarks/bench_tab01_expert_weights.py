"""Table 1: regression weights of each expert's (w, m) models."""

from conftest import emit, run_once

from repro.core.features import FEATURE_NAMES
from repro.experiments.tables import run_expert_weights


def test_tab01_expert_weights(benchmark):
    table = run_once(benchmark, run_expert_weights)
    emit("tab01", table.format())

    bundle = table.bundle
    # Shape: four experts from the 2x2 split, each with a full weight
    # vector per model (Table 1's columns).
    assert len(bundle.experts) == 4
    provenances = {e.provenance for e in bundle.experts}
    assert provenances == {
        "scalable@twelve-core", "nonscalable@twelve-core",
        "scalable@xeon-l7555", "nonscalable@xeon-l7555",
    }
    rows = table.rows()
    assert len(rows) == len(FEATURE_NAMES) + 1  # + beta
    # Experts differ: no two experts share identical thread weights.
    import numpy as np

    weights = [e.thread_model.weights for e in bundle.experts]
    for i in range(len(weights)):
        for j in range(i + 1, len(weights)):
            assert not np.allclose(weights[i], weights[j])
