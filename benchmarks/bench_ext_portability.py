"""Section 9 extension: portability to an unseen platform.

The experts were trained on 12- and 32-core machines; here they map
programs on a 48-core machine.  Expected shape: the mixture still
improves over the OpenMP default (the selector routes to the 32-core
experts, whose envelope is closest), demonstrating graceful transfer
rather than collapse.
"""

from conftest import BENCH_SCALE, emit, run_once

from repro.experiments.extensions import run_portability


def test_ext_portability(benchmark):
    result = run_once(benchmark, lambda: run_portability(
        iterations_scale=BENCH_SCALE,
    ))
    emit("ext_portability", result.format())

    value = result.speedups["mixture (12/32-core experts)"]
    assert value > 1.0
