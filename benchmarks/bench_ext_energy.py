"""Extension: energy to solution.

Spin-waiting burns active power without retiring work, so stopping
over-threading must save energy, not just time.  Expected shape: the
mixture's joules-per-work is below the OpenMP default's.
"""

from conftest import BENCH_SCALE, emit, run_once

from repro.experiments.extensions import run_energy


def test_ext_energy(benchmark):
    result = run_once(benchmark, lambda: run_energy(
        iterations_scale=BENCH_SCALE,
    ))
    emit("ext_energy", result.format())

    assert result.speedups["mixture energy saving"] > 1.0
