"""Figure 9: per-benchmark speedups, small workload / low frequency."""

from conftest import BENCH_SCALE, MEDIUM_TARGETS, emit, run_once

from repro.experiments.dynamic import run_dynamic_scenario
from repro.experiments.scenarios import SMALL_LOW


def test_fig09_small_low(benchmark, policies):
    table = run_once(benchmark, lambda: run_dynamic_scenario(
        SMALL_LOW, targets=MEDIUM_TARGETS, policies=policies,
        iterations_scale=BENCH_SCALE, seeds=(0,),
    ))
    emit("fig09", table.format())

    hmean = table.hmean()
    # Paper: 1.5x over default in this scenario, beating all others.
    assert hmean["mixture"] > 1.15
    assert hmean["mixture"] >= max(
        hmean["online"], hmean["analytic"],
    )
    # The mixture never loses badly on any single benchmark.
    for row in table.rows:
        assert row.speedups["mixture"] > 0.85, row.target
