"""Figure 15c: speedup vs number of experts (large/low scenario).

Paper shape: individually each expert gives lower performance; adding
experts steadily improves it; the 4-expert mixture beats the best
single expert.
"""

from conftest import BENCH_SCALE, emit, run_once

from repro.experiments.analysis import run_num_experts

TARGETS = ("cg", "lu", "mg", "art")


def test_fig15c_num_experts(benchmark):
    result = run_once(benchmark, lambda: run_num_experts(
        targets=TARGETS, iterations_scale=BENCH_SCALE,
    ))
    emit("fig15c", result.format())

    counts = sorted(result.by_count)
    full = result.by_count[counts[-1]]
    # Shape: the full mixture is near the best configuration...
    assert full >= 0.93 * max(result.by_count.values())
    # ...and close to the best single expert (the paper's mixture
    # exceeds it; ours matches it within a few percent).
    assert full >= 0.9 * max(result.single_expert)
    # Adding experts is at worst neutral overall.
    assert full >= 0.9 * result.by_count[counts[0]]
