"""Figure 8: speedup summary across the four dynamic scenarios.

Paper shape (average over all benchmarks and scenarios): the online,
offline and analytic approaches all improve over the OpenMP default,
and the mixture of experts outperforms every one of them (paper: 1.66x
mean over default, 1.34x over online, 1.25x over offline, 1.2x over
analytic).
"""

from conftest import BENCH_SCALE, SMALL_TARGETS, emit, run_once

from repro.experiments.dynamic import run_dynamic_summary


def test_fig08_dynamic_summary(benchmark, policies):
    summary = run_once(benchmark, lambda: run_dynamic_summary(
        targets=SMALL_TARGETS, policies=policies,
        iterations_scale=BENCH_SCALE, seeds=(0,),
    ))
    emit("fig08", summary.format())

    overall = summary.overall()
    # Shape: every adaptive policy beats the default on average, and
    # the mixture beats them all.
    assert overall["mixture"] > 1.15
    assert overall["mixture"] >= overall["online"]
    assert overall["mixture"] >= overall["analytic"]
    # Our pooled offline baseline is stronger than the paper's (see
    # EXPERIMENTS.md); the mixture must stay within a few percent.
    assert overall["mixture"] >= 0.95 * overall["offline"]
    for policy in ("online", "offline", "analytic"):
        assert overall[policy] > 0.95
    # The mixture is at (or within 3% of) the top in most scenarios.
    wins = sum(
        1 for hm in summary.scenario_hmeans().values()
        if hm["mixture"] >= max(
            v for k, v in hm.items() if k != "mixture"
        ) * 0.95
    )
    assert wins >= 3
