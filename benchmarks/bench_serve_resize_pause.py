"""Resize pause: what does a live reshard cost the request stream?

Drives a supervised process-mode fleet through the canonical 2→4→3
elastic walk mid-stream and reports the drain-pause distribution —
the wall-clock each resize stalls serving for (quiesce → drain
barrier → ship → epoch swap).  The p99 bound is written to
``results/serve_resize_pause.json`` where the regression gate's
absolute-bound directive (``_gates`` in ``baseline_timings.json``)
checks it: resharding a small fleet must stay a sub-second pause, not
a stop-the-world rebuild.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from conftest import RESULTS_DIR, emit, run_once

from repro.core.training import default_experts
from repro.exec import shm
from repro.serve import (
    FleetConfig,
    ServeConfig,
    SoakSpec,
    run_fleet_soak,
    tiny_training_config,
)

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="POSIX shared memory unavailable"
)

REQUESTS = 2_000
SPEC = SoakSpec(requests=REQUESTS, seed=0)
RESIZE_AT = {REQUESTS // 3: 4, (2 * REQUESTS) // 3: 3}

METRICS_PATH = RESULTS_DIR / "serve_resize_pause.json"


def _histogram_quantile(snapshot: dict, q: float) -> float:
    """Upper bound of the bucket holding the q-th sample."""
    counts = snapshot.get("counts") or []
    bounds = snapshot.get("bounds") or []
    total = sum(counts)
    if not total:
        return 0.0
    rank = max(1, -(-total * q // 100))
    seen = 0
    for i, count in enumerate(counts):
        seen += count
        if seen >= rank:
            return float(bounds[i]) if i < len(bounds) else float(
                bounds[-1]
            )
    return float(bounds[-1])


def _resize_session():
    bundle = default_experts(tiny_training_config())
    config = FleetConfig(
        shards=2, batch_max=32,
        serve=ServeConfig(queue_capacity=64),
    )
    with tempfile.TemporaryDirectory() as tmp:
        report, _, _ = run_fleet_soak(
            SPEC, bundle, config=config, state_root=Path(tmp),
            processes=True, resize_at=RESIZE_AT, supervise=True,
        )
    return report


def test_resize_pause(benchmark):
    report = run_once(benchmark, _resize_session)
    assert report.total == REQUESTS
    assert report.answered + report.shed == REQUESTS
    assert report.resizes == len(RESIZE_AT)
    assert report.epochs == len(RESIZE_AT)
    pause_p99 = _histogram_quantile(report.drain_pause, 99.0)
    pause_max = _histogram_quantile(report.drain_pause, 100.0)
    METRICS_PATH.parent.mkdir(exist_ok=True)
    METRICS_PATH.write_text(json.dumps({
        "requests": REQUESTS,
        "resizes": report.resizes,
        "streams_migrated": report.streams_migrated,
        "resize_pause_p99_s": pause_p99,
        "resize_pause_max_s": pause_max,
        "throughput_rps": round(report.throughput_rps, 1),
    }, indent=2, sort_keys=True) + "\n")
    emit(
        "serve_resize_pause",
        "== Live resharding pause (2→4→3, supervised) ==\n"
        f"requests {REQUESTS}; resizes {report.resizes}; "
        f"streams migrated {report.streams_migrated}\n"
        f"drain pause p99 <= {pause_p99 * 1e3:.1f}ms, "
        f"max <= {pause_max * 1e3:.1f}ms (histogram bounds)\n"
        f"throughput {report.throughput_rps:,.0f} req/s over "
        f"{report.wall_s:.2f}s",
    )
    # the histogram's last bound is ~4.2s: a pause landing in the
    # overflow bucket means resharding degenerated to stop-the-world
    assert pause_p99 <= 4.2
