"""Figure 15b: how often each expert is selected, per scenario.

Paper shape: one expert dominates each scenario, yet every expert is
selected at some point — the mixture exploits all of them.
"""

from conftest import BENCH_SCALE, SMALL_TARGETS, emit, run_once

from repro.experiments.analysis import run_selection_frequency


def test_fig15b_expert_frequency(benchmark):
    result = run_once(benchmark, lambda: run_selection_frequency(
        targets=SMALL_TARGETS, iterations_scale=BENCH_SCALE,
    ))
    emit("fig15b", result.format())

    for scenario, freqs in result.frequencies.items():
        assert abs(sum(freqs) - 1.0) < 1e-6, scenario
        # One expert dominates each scenario...
        assert max(freqs) > 0.35, scenario
    # ...but across scenarios more than one expert gets real use.
    used = {
        index
        for freqs in result.frequencies.values()
        for index, f in enumerate(freqs) if f > 0.02
    }
    assert len(used) >= 2
