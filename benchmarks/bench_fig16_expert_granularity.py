"""Figure 16: finer expert granularity (monolithic vs 4 vs 8 experts).

Paper shape: more experts help — 8 experts (1.63x) > 4 experts (1.55x)
> monolithic, in the small-workload/low-frequency scenario.
"""

from conftest import BENCH_SCALE, SMALL_TARGETS, emit, run_once

from repro.experiments.generic_vs_experts import run_granularity


def test_fig16_expert_granularity(benchmark):
    result = run_once(benchmark, lambda: run_granularity(
        targets=SMALL_TARGETS, granularities=(1, 4, 8),
        iterations_scale=BENCH_SCALE,
    ))
    emit("fig16", result.format())

    speedups = result.speedups
    # Shape: expert mixtures stay with the monolithic model...
    assert speedups["experts-4"] >= 0.95 * speedups["monolithic"]
    # ...and the finer 8-expert split is at least competitive with 4.
    assert speedups["experts-8"] >= 0.93 * speedups["experts-4"]
    assert max(
        speedups["experts-8"], speedups["experts-4"],
    ) >= 0.95 * speedups["monolithic"]
