"""Ablation: clipping expert inputs to the training envelope.

DESIGN.md decision: linear experts are only trusted inside the region
they saw data for; inputs are clipped to that envelope.  Without
clipping, evaluation states beyond the training contention level are
linearly extrapolated into nonsense thread counts.
"""

from conftest import compare_variants, emit, format_variants, run_once

from repro.core.policies import MixturePolicy
from repro.core.training import default_experts


def test_abl_envelope_clipping(benchmark):
    bundle = default_experts()
    stripped = tuple(e.without_envelope() for e in bundle.experts)
    variants = {
        "clipped (shipped)": lambda: MixturePolicy(bundle.experts),
        "unclipped": lambda: MixturePolicy(stripped),
    }
    hmeans = run_once(benchmark, lambda: compare_variants(variants))
    emit("abl_envelope_clipping",
         format_variants("Ablation: training-envelope clipping", hmeans))

    assert hmeans["clipped (shipped)"] >= 0.95 * hmeans["unclipped"]
