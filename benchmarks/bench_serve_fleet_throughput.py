"""Serving-fleet throughput: what does sharding buy?

Drives the same synthetic request stream through process-mode fleets
of 1, 2 and 4 shards and reports requests/second plus the p99 latency
bound from the merged per-shard histograms.  One test function per
shard count keeps the timing-ledger nodeids distinct so the regression
gate can compare them across runs.

The scaling assertions (2 shards >= 1.6x one shard, 4 shards >= 2x)
only hold when the machine actually has cores to scale onto; on
smaller hosts they are skipped with an explicit note rather than
silently passing, and the matching ``_gates`` directives in
``baseline_timings.json`` carry ``min_cores`` so the ledger gate skips
there too.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import pytest
from conftest import emit, run_once

from repro.core.training import default_experts
from repro.exec import shm
from repro.serve import (
    FleetConfig,
    ServeConfig,
    SoakSpec,
    run_fleet_soak,
    tiny_training_config,
)

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="POSIX shared memory unavailable"
)

REQUESTS = 2_000
SPEC = SoakSpec(requests=REQUESTS, seed=0)

#: Required speedup of N shards over one shard — only asserted when
#: the host has at least N cores (see ``_scaling_gate``).
SCALING_FLOORS = {2: 1.6, 4: 2.0}

_THROUGHPUT: dict = {}


def _fleet_session(shards: int):
    """One full process-mode fleet session; returns its FleetReport."""
    bundle = default_experts(tiny_training_config())
    config = FleetConfig(
        shards=shards, batch_max=32,
        serve=ServeConfig(queue_capacity=64),
    )
    with tempfile.TemporaryDirectory() as tmp:
        report, _, _ = run_fleet_soak(
            SPEC, bundle, config=config,
            state_root=Path(tmp), processes=True,
        )
    return report


def _run(benchmark, shards: int):
    report = run_once(benchmark, lambda: _fleet_session(shards))
    assert report.total == REQUESTS
    assert report.answered + report.shed == REQUESTS
    assert report.failovers == 0
    rps = report.throughput_rps
    _THROUGHPUT[shards] = rps
    emit(
        f"serve_fleet_throughput_{shards}shard",
        f"== Serving fleet throughput, {shards} shard(s) ==\n"
        f"requests {REQUESTS}; answered {report.answered}; "
        f"shed {report.shed}\n"
        f"throughput {rps:,.0f} req/s over {report.wall_s:.2f}s; "
        f"p99 <= {report.latency_quantile(99.0) * 1e6:.0f}us "
        f"(histogram bound)",
    )
    return report


def _scaling_gate(shards: int) -> None:
    floor = SCALING_FLOORS[shards]
    cores = os.cpu_count() or 1
    if cores < shards:
        pytest.skip(
            f"scaling gate needs >= {shards} cores, host has {cores}: "
            f"{shards}-shard vs 1-shard speedup not asserted"
        )
    base = _THROUGHPUT.get(1) or _fleet_session(1).throughput_rps
    ratio = _THROUGHPUT[shards] / base
    assert ratio >= floor, (
        f"{shards} shards reached only {ratio:.2f}x one shard "
        f"(floor {floor}x)"
    )


def test_fleet_throughput_1_shard(benchmark):
    _run(benchmark, 1)


def test_fleet_throughput_2_shards(benchmark):
    _run(benchmark, 2)
    _scaling_gate(2)


def test_fleet_throughput_4_shards(benchmark):
    _run(benchmark, 4)
    _scaling_gate(4)
