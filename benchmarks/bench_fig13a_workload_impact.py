"""Figure 13a: impact on co-executing workloads (Result 3).

Paper shape: the mixture never degrades the workloads and improves
their performance (1.19x on average) — "a reduction in system-wide
contention benefiting target and workload".
"""

from conftest import BENCH_SCALE, SMALL_TARGETS, emit, run_once

from repro.experiments.scenarios import LARGE_LOW, SMALL_LOW
from repro.experiments.workload_impact import run_workload_impact


def test_fig13a_workload_impact(benchmark, policies):
    result = run_once(benchmark, lambda: run_workload_impact(
        targets=SMALL_TARGETS, scenarios=(SMALL_LOW, LARGE_LOW),
        policies=policies, iterations_scale=BENCH_SCALE,
    ))
    emit("fig13a", result.format())

    overall = result.overall()
    # Shape: the mixture never slows the workload down...
    assert overall["mixture"] >= 1.0
    # ...and improves it, close to the best policy.
    assert overall["mixture"] >= 0.9 * max(
        v for k, v in overall.items() if k != "mixture"
    )
    # Per-target: no workload degradation under the mixture.
    for target, gains in result.per_target.items():
        assert gains["mixture"] > 0.95, target
