"""Figure 3: motivation speedups (analytic vs single experts vs mixture).

Paper shape: analytic improves over the OpenMP default but is
outperformed by either expert; the mixture improves further still.
"""

from conftest import BENCH_SCALE, emit, run_once

from repro.experiments.motivation import run_motivation


def test_fig03_motivation_speedup(benchmark):
    result = run_once(
        benchmark, lambda: run_motivation(iterations_scale=BENCH_SCALE),
    )
    emit("fig03", result.format())

    speedups = result.speedups
    # Shape: the mixture is the best policy and beats the analytic model.
    assert speedups["mixture"] >= max(
        speedups["analytic"], speedups["default"],
    )
    # And it is at least as good as the better single expert (within a
    # small tolerance: per-run noise).
    best_expert = max(speedups["expert-1"], speedups["expert-2"])
    assert speedups["mixture"] >= 0.95 * best_expert
