"""Section 9 extension: SVM-style experts in the mixture.

The paper's future work asks "whether other modeling techniques such as
SVMs trained on the same data ... can be selected by a mixtures
approach".  Expected shape: kernel experts are competitive with the
linear ones, and the pooled mixture (selector choosing among both
families) does not lose to either family alone.
"""

from conftest import BENCH_SCALE, emit, run_once

from repro.experiments.extensions import run_model_comparison


def test_ext_svm_experts(benchmark):
    result = run_once(benchmark, lambda: run_model_comparison(
        iterations_scale=BENCH_SCALE,
    ))
    emit("ext_svm_experts", result.format())

    speedups = result.speedups
    assert speedups["linear experts (paper)"] > 1.0
    assert speedups["kernel experts (SVM-style)"] > 0.9
    # Pooling both families is at worst a small regression on either.
    assert speedups["linear + kernel pooled"] >= 0.9 * max(
        speedups["linear experts (paper)"],
        speedups["kernel experts (SVM-style)"],
    )
