"""Figure 14b: affinity scheduling (Result 6).

Paper shape: "All schemes show improvement with affinity scheduling but
our approach gives the largest improvement" (mixture reaches 2.1x
overall in the small-workload scenario).
"""

from conftest import BENCH_SCALE, SMALL_TARGETS, emit, run_once

from repro.experiments.affinity import run_affinity


def test_fig14b_affinity(benchmark, policies):
    result = run_once(benchmark, lambda: run_affinity(
        targets=SMALL_TARGETS, policies=policies,
        iterations_scale=BENCH_SCALE,
    ))
    emit("fig14b", result.format())

    gains = result.improvement()
    # Shape: affinity helps every policy...
    for policy, gain in gains.items():
        assert gain > 0.98, policy
    # ...the combined mixture+affinity result is the best overall...
    assert result.with_affinity["mixture"] >= 0.97 * max(
        result.with_affinity.values()
    )
    # ...and it improves on the plain mixture.
    assert result.with_affinity["mixture"] > (
        result.without_affinity["mixture"]
    )
