"""Figure 7: isolated static system (Result 1).

Paper shape: the mixture "improves performance with no overhead in a
static system under isolation" — it never slows any program down and
improves the irregular/memory-bound codes (mg, cg, art).
"""

from conftest import BENCH_SCALE, FULL_TARGETS, emit, run_once

from repro.experiments.dynamic import run_static_isolated


def test_fig07_static_isolated(benchmark, policies):
    table = run_once(benchmark, lambda: run_static_isolated(
        targets=FULL_TARGETS, policies=policies,
        iterations_scale=BENCH_SCALE,
    ))
    emit("fig07", table.format())

    hmean = table.hmean()
    # Shape: the mixture improves over the default on average...
    assert hmean["mixture"] > 1.05
    # ...and never slows any target down appreciably (Result 1).
    for row in table.rows:
        assert row.speedups["mixture"] > 0.9, row.target
    # The memory-bound irregular codes benefit most.
    by_target = {row.target: row.speedups["mixture"] for row in table.rows}
    assert by_target["cg"] > 1.3
    assert by_target["mg"] > 1.3
    assert by_target["art"] > 1.2
