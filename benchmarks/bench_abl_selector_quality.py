"""Ablation: quality of the expert-selection mechanism.

DESIGN.md: is the environment-predictor proxy + learned hyperplanes
actually better than cheaper selection strategies?  Compares the shipped
selector (pretrained hyperplanes + online updates) against a recent-
accuracy tracker (feature-blind), and uniform-random expert choice.
"""

from conftest import compare_variants, emit, format_variants, run_once

from repro.core.features import NUM_FEATURES
from repro.core.policies import MixturePolicy
from repro.core.selector import AccuracyEMASelector, RandomSelector
from repro.core.training import default_experts
from repro.experiments.runner import mixture_factory


def test_abl_selector_quality(benchmark):
    bundle = default_experts()
    k = len(bundle.experts)
    variants = {
        "hyperplanes (shipped)": mixture_factory(bundle),
        "recent-accuracy (EMA)": lambda: MixturePolicy(
            bundle.experts, selector=AccuracyEMASelector(k),
        ),
        "random expert": lambda: MixturePolicy(
            bundle.experts, selector=RandomSelector(k, seed=5),
        ),
    }
    hmeans = run_once(benchmark, lambda: compare_variants(variants))
    emit("abl_selector_quality",
         format_variants("Ablation: selector quality", hmeans))

    shipped = hmeans["hyperplanes (shipped)"]
    assert shipped >= 0.97 * max(hmeans.values())
    assert shipped > hmeans["random expert"]
