"""Figure 1: 50 hours of live-system activity (synthetic log)."""

from conftest import emit, run_once

from repro.machine.topology import HPC_SYSTEM
from repro.workload.trace import FIFTY_HOURS, generate_live_trace


def test_fig01_live_trace(benchmark):
    trace = run_once(benchmark, lambda: generate_live_trace(seed=2015))

    lines = ["== Figure 1: live HPC system activity =="]
    lines.append(
        f"{len(trace.times)} samples over "
        f"{trace.times[-1] / 3600:.1f}h on {trace.system.hw_contexts} "
        f"hardware contexts"
    )
    step = max(1, len(trace.times) // 20)
    for index in range(0, len(trace.times), step):
        n = trace.threads[index]
        bar = "#" * max(1, int(50 * n / trace.system.hw_contexts))
        lines.append(f"{trace.times[index] / 3600:6.1f}h {n:6d} {bar}")
    emit("fig01", "\n".join(lines))

    # Shape: 50 hours of highly dynamic activity on the 2912-core system.
    assert trace.times[-1] >= 0.99 * FIFTY_HOURS
    assert trace.system is HPC_SYSTEM
    spread = max(trace.threads) - min(trace.threads)
    assert spread > 0.3 * HPC_SYSTEM.hw_contexts
