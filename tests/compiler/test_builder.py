"""IRBuilder construction and misuse errors."""

import pytest

from repro.compiler.builder import IRBuilder, IRBuilderError
from repro.compiler.ir import AccessPattern, Opcode, Schedule


class TestStructure:
    def test_simple_module(self):
        b = IRBuilder("m")
        with b.function("f"):
            b.call("init")
            with b.parallel_loop("l", trip_count=4):
                b.load()
                b.fadd()
                b.store()
        module = b.build()
        assert module.name == "m"
        func = module.function("f")
        assert len(func.serial) == 1
        assert func.loops[0].trip_count == 4
        assert len(func.loops[0].body) == 3

    def test_nested_loops(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("outer", trip_count=2):
                b.fadd()
                with b.parallel_loop("inner", trip_count=8):
                    b.load()
        module = b.build()
        outer = module.function("f").loops[0]
        assert len(module.function("f").loops) == 1
        assert outer.nested[0].name == "inner"
        assert outer.nested[0].trip_count == 8

    def test_loop_attributes(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop(
                "l", trip_count=3, schedule=Schedule.DYNAMIC,
                access=AccessPattern.IRREGULAR, reduction=True,
            ):
                b.reduce()
        loop = b.build().function("f").loops[0]
        assert loop.schedule is Schedule.DYNAMIC
        assert loop.access_pattern is AccessPattern.IRREGULAR
        assert loop.has_reduction

    def test_multiple_functions(self):
        b = IRBuilder("m")
        for name in ("f", "g"):
            with b.function(name):
                with b.parallel_loop("loop_" + name):
                    b.fadd()
        module = b.build()
        assert [f.name for f in module.functions] == ["f", "g"]


class TestErrors:
    def test_nested_functions_rejected(self):
        b = IRBuilder("m")
        with pytest.raises(IRBuilderError, match="nested"):
            with b.function("f"):
                with b.function("g"):
                    pass

    def test_loop_outside_function_rejected(self):
        b = IRBuilder("m")
        with pytest.raises(IRBuilderError, match="open function"):
            with b.parallel_loop("l"):
                pass

    def test_emit_outside_function_rejected(self):
        b = IRBuilder("m")
        with pytest.raises(IRBuilderError, match="open function"):
            b.fadd()

    def test_build_validates(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("empty"):
                pass  # no instructions
        with pytest.raises(Exception):
            b.build()

    def test_build_can_skip_validation(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("empty"):
                pass
        module = b.build(validate=False)
        assert module.name == "m"


class TestEmitters:
    OPCODES = {
        "load": Opcode.LOAD,
        "store": Opcode.STORE,
        "gep": Opcode.GEP,
        "add": Opcode.ADD,
        "sub": Opcode.SUB,
        "mul": Opcode.MUL,
        "div": Opcode.DIV,
        "fadd": Opcode.FADD,
        "fsub": Opcode.FSUB,
        "fmul": Opcode.FMUL,
        "fdiv": Opcode.FDIV,
        "fma": Opcode.FMA,
        "sqrt": Opcode.SQRT,
        "cmp": Opcode.CMP,
        "branch": Opcode.BRANCH,
        "cond_branch": Opcode.COND_BRANCH,
        "call": Opcode.CALL,
        "barrier": Opcode.BARRIER,
        "atomic": Opcode.ATOMIC,
        "critical": Opcode.CRITICAL,
        "reduce": Opcode.REDUCE,
    }

    @pytest.mark.parametrize("method,opcode", sorted(
        OPCODES.items(), key=lambda kv: kv[0]
    ))
    def test_emitter_opcode(self, method, opcode):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("l"):
                getattr(b, method)()
        loop = b.build().function("f").loops[0]
        assert loop.body[0].opcode is opcode

    def test_value_names_are_fresh(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("l"):
                first = b.load()
                second = b.load()
        assert first.result != second.result

    def test_serial_emission(self):
        b = IRBuilder("m")
        with b.function("f"):
            b.call("setup")
            with b.parallel_loop("l"):
                b.fadd()
        func = b.build().function("f")
        assert func.serial[0].opcode is Opcode.CALL
