"""Analysis pass results."""

import pytest

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import AccessPattern, Schedule
from repro.compiler.passes import (
    PassManager,
    analyze_loop,
    analyze_module,
)


def build_module():
    b = IRBuilder("m")
    with b.function("f"):
        b.call("init")
        b.call("read_input")
        with b.parallel_loop("hot", trip_count=10,
                             access=AccessPattern.IRREGULAR,
                             schedule=Schedule.DYNAMIC):
            b.load()
            b.load()
            b.gep()
            b.fadd()
            b.fmul()
            b.cond_branch()
            b.store()
            b.barrier()
        with b.parallel_loop("cold", trip_count=2, reduction=True):
            b.add()
            b.reduce()
    return b.build()


class TestLoopAnalysis:
    def analysis(self):
        module = build_module()
        return analyze_loop(module.function("f").loops[0])

    def test_totals(self):
        a = self.analysis()
        assert a.total == 8 * 10
        assert a.trip_count == 10

    def test_memory_counts(self):
        a = self.analysis()
        assert a.loads == 20
        assert a.stores == 10
        assert a.memory_ops == 40  # loads + stores + gep

    def test_branches_and_float(self):
        a = self.analysis()
        assert a.branches == 10
        assert a.float_ops == 20

    def test_sync(self):
        a = self.analysis()
        assert a.sync_ops == 10

    def test_intensities(self):
        a = self.analysis()
        assert a.memory_intensity == pytest.approx(40 / 80)
        assert a.branch_intensity == pytest.approx(10 / 80)
        assert a.sync_intensity == pytest.approx(10 / 80)
        assert a.arithmetic_intensity == pytest.approx(20 / 40)

    def test_flags(self):
        a = self.analysis()
        assert a.access_pattern is AccessPattern.IRREGULAR
        assert a.schedule is Schedule.DYNAMIC
        assert not a.has_reduction

    def test_zero_total_loop_intensities(self):
        from repro.compiler.ir import ParallelLoop
        from repro.compiler.passes import LoopAnalysis
        a = LoopAnalysis(
            name="x", total=0, memory_ops=0, loads=0, stores=0,
            branches=0, float_ops=0, int_ops=0, sync_ops=0, calls=0,
            depth=1, trip_count=1, schedule=Schedule.STATIC,
            access_pattern=AccessPattern.REGULAR, has_reduction=False,
        )
        assert a.memory_intensity == 0.0
        assert a.branch_intensity == 0.0


class TestModuleAnalysis:
    def test_serial_count(self):
        analysis = analyze_module(build_module())
        assert analysis.serial_instructions == 2

    def test_total(self):
        analysis = analyze_module(build_module())
        assert analysis.total_instructions == 2 + 80 + 4

    def test_parallel_fraction(self):
        analysis = analyze_module(build_module())
        assert analysis.parallel_fraction == pytest.approx(84 / 86)

    def test_loops_indexed_by_name(self):
        analysis = analyze_module(build_module())
        assert set(analysis.loops) == {"hot", "cold"}

    def test_duplicate_loop_names_rejected(self):
        from repro.compiler.ir import IRValidationError

        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("same"):
                b.fadd()
        with b.function("g"):
            with b.parallel_loop("same"):
                b.fadd()
        # Validation now catches this at build time...
        with pytest.raises(IRValidationError,
                           match="duplicate parallel loop"):
            b.build()
        # ...and analyze_module still defends itself when validation
        # is skipped.
        module = b.build(validate=False)
        with pytest.raises(ValueError, match="duplicate loop name"):
            analyze_module(module)


class TestPassManager:
    def test_caches_by_identity(self):
        module = build_module()
        manager = PassManager()
        first = manager.get(module)
        assert manager.get(module) is first

    def test_invalidate(self):
        module = build_module()
        manager = PassManager()
        first = manager.get(module)
        manager.invalidate(module)
        assert manager.get(module) is not first

    def test_analyze_many(self):
        modules = [build_module(), build_module()]
        modules[1].name = "other"
        manager = PassManager()
        result = manager.analyze_many(modules)
        assert set(result) == {"m", "other"}
