"""Static feature extraction."""

import pytest

from repro.compiler.builder import IRBuilder
from repro.compiler.features import (
    CODE_FEATURE_NAMES,
    extract_code_features,
    extract_raw_loop_features,
    raw_code_feature_names,
)
from repro.compiler.passes import analyze_module


def build_module():
    b = IRBuilder("m")
    with b.function("f"):
        b.call("init")
        with b.parallel_loop("a", trip_count=10):
            b.load()
            b.store()
            b.fadd()
            b.cond_branch()
        with b.parallel_loop("b", trip_count=5):
            b.fmul()
            b.fmul()
    return b.build()


class TestCanonicalFeatures:
    def test_names(self):
        assert CODE_FEATURE_NAMES == (
            "load_store_count", "instructions", "branches",
        )

    def test_normalized_to_program_total(self):
        module = build_module()
        # Program total: 1 serial + 4*10 + 2*5 = 51.
        features = extract_code_features(module, "a")
        assert features.load_store_count == pytest.approx(20 / 51)
        assert features.instructions == pytest.approx(40 / 51)
        assert features.branches == pytest.approx(10 / 51)

    def test_second_loop(self):
        module = build_module()
        features = extract_code_features(module, "b")
        assert features.load_store_count == 0.0
        assert features.instructions == pytest.approx(10 / 51)
        assert features.branches == 0.0

    def test_unknown_loop(self):
        with pytest.raises(KeyError, match="no parallel loop"):
            extract_code_features(build_module(), "nope")

    def test_accepts_precomputed_analysis(self):
        module = build_module()
        analysis = analyze_module(module)
        features = extract_code_features(module, "a", analysis)
        assert features.instructions > 0

    def test_as_tuple(self):
        features = extract_code_features(build_module(), "a")
        assert len(features.as_tuple()) == 3


class TestRawFeatures:
    def raw(self):
        module = build_module()
        loop = module.function("f").loops[0]
        return extract_raw_loop_features(module, loop)

    def test_contains_canonical(self):
        raw = self.raw()
        assert "code.load_store_count" in raw
        assert "code.instructions" in raw
        assert "code.branches" in raw

    def test_per_opcode_counts(self):
        raw = self.raw()
        assert raw["code.opcount.load"] == 10.0
        assert raw["code.opcount.fadd"] == 10.0
        assert raw["code.opcount.barrier"] == 0.0

    def test_structure_features(self):
        raw = self.raw()
        assert raw["code.trip_count"] == 10.0
        assert raw["code.loop_depth"] == 1.0
        assert raw["code.access_regular"] == 1.0
        assert raw["code.schedule_static"] == 1.0

    def test_intensities_in_range(self):
        raw = self.raw()
        for key in ("code.memory_intensity", "code.branch_intensity",
                    "code.sync_intensity", "code.float_fraction"):
            assert 0.0 <= raw[key] <= 1.0

    def test_all_values_are_floats(self):
        for value in self.raw().values():
            assert isinstance(value, float)


class TestRawFeatureNames:
    def test_deterministic(self):
        assert raw_code_feature_names() == raw_code_feature_names()

    def test_sorted(self):
        names = raw_code_feature_names()
        assert names == sorted(names)

    def test_matches_extractor_keys(self):
        module = build_module()
        loop = module.function("f").loops[0]
        raw = extract_raw_loop_features(module, loop)
        assert sorted(raw) == raw_code_feature_names()
