"""IR structure, counting, validation and printing."""

import pytest

from repro.compiler.ir import (
    AccessPattern,
    BRANCH_OPCODES,
    FLOAT_OPCODES,
    Function,
    Instruction,
    IRValidationError,
    MEMORY_OPCODES,
    Module,
    Opcode,
    ParallelLoop,
    Schedule,
    SYNC_OPCODES,
    count_instructions,
    format_module,
)


def make_loop(name="loop", trip=10, body=None, nested=None):
    return ParallelLoop(
        name=name,
        trip_count=trip,
        body=body if body is not None else [Instruction(Opcode.FADD)],
        nested=nested or [],
    )


class TestInstruction:
    def test_str_with_result(self):
        inst = Instruction(Opcode.LOAD, ("%a",), result="%v0")
        assert str(inst) == "%v0 = load %a"

    def test_str_without_result(self):
        inst = Instruction(Opcode.STORE, ("%a",))
        assert str(inst) == "store %a"

    def test_is_memory(self):
        assert Instruction(Opcode.LOAD).is_memory
        assert Instruction(Opcode.GEP).is_memory
        assert not Instruction(Opcode.FADD).is_memory

    def test_is_branch(self):
        assert Instruction(Opcode.COND_BRANCH).is_branch
        assert not Instruction(Opcode.CMP).is_branch

    def test_is_sync(self):
        assert Instruction(Opcode.BARRIER).is_sync
        assert Instruction(Opcode.ATOMIC).is_sync
        assert not Instruction(Opcode.CALL).is_sync

    def test_frozen(self):
        inst = Instruction(Opcode.ADD)
        with pytest.raises(AttributeError):
            inst.opcode = Opcode.SUB


class TestOpcodeGroups:
    def test_groups_are_disjoint(self):
        assert not (MEMORY_OPCODES & BRANCH_OPCODES)
        assert not (MEMORY_OPCODES & SYNC_OPCODES)
        assert not (FLOAT_OPCODES & SYNC_OPCODES)

    def test_groups_cover_known_opcodes(self):
        assert Opcode.LOAD in MEMORY_OPCODES
        assert Opcode.SWITCH in BRANCH_OPCODES
        assert Opcode.REDUCE in SYNC_OPCODES
        assert Opcode.SQRT in FLOAT_OPCODES


class TestParallelLoop:
    def test_weighted_count_flat(self):
        loop = make_loop(body=[Instruction(Opcode.FADD)] * 3)
        assert loop.weighted_count() == 3

    def test_weighted_count_nested(self):
        inner = make_loop("inner", trip=5,
                          body=[Instruction(Opcode.LOAD)] * 2)
        outer = make_loop("outer", trip=10,
                          body=[Instruction(Opcode.FADD)],
                          nested=[inner])
        # 1 own + 5*2 nested per outer iteration.
        assert outer.weighted_count() == 11

    def test_dynamic_count_multiplies_trip(self):
        loop = make_loop(trip=7, body=[Instruction(Opcode.FADD)] * 2)
        assert loop.dynamic_count() == 14

    def test_dynamic_count_with_predicate(self):
        loop = make_loop(trip=3, body=[
            Instruction(Opcode.LOAD), Instruction(Opcode.FADD),
        ])
        assert loop.dynamic_count(lambda i: i.is_memory) == 3

    def test_depth(self):
        inner = make_loop("i")
        middle = make_loop("m", nested=[inner])
        outer = make_loop("o", nested=[middle])
        assert outer.depth == 3
        assert inner.depth == 1

    def test_validate_rejects_zero_trip(self):
        loop = make_loop(trip=0)
        with pytest.raises(IRValidationError, match="trip_count"):
            loop.validate()

    def test_validate_rejects_empty_body(self):
        loop = ParallelLoop(name="empty", trip_count=1)
        with pytest.raises(IRValidationError, match="empty body"):
            loop.validate()

    def test_validate_recurses(self):
        bad_inner = make_loop("inner", trip=0)
        outer = make_loop("outer", nested=[bad_inner])
        with pytest.raises(IRValidationError):
            outer.validate()

    def test_instructions_iterates_nested(self):
        inner = make_loop("inner", body=[Instruction(Opcode.LOAD)])
        outer = make_loop("outer", body=[Instruction(Opcode.FADD)],
                          nested=[inner])
        opcodes = [inst.opcode for inst in outer.instructions()]
        assert opcodes == [Opcode.FADD, Opcode.LOAD]


class TestModule:
    def make_module(self):
        func = Function(
            name="main",
            serial=[Instruction(Opcode.CALL, ("init",))],
            loops=[make_loop("l1"), make_loop("l2")],
        )
        return Module(name="m", functions=[func])

    def test_parallel_loops(self):
        module = self.make_module()
        assert [l.name for l in module.parallel_loops()] == ["l1", "l2"]

    def test_function_lookup(self):
        module = self.make_module()
        assert module.function("main").name == "main"
        with pytest.raises(KeyError):
            module.function("nope")

    def test_validate_ok(self):
        self.make_module().validate()

    def test_validate_rejects_empty_module(self):
        with pytest.raises(IRValidationError, match="no functions"):
            Module(name="empty").validate()

    def test_validate_rejects_duplicate_functions(self):
        func = Function(name="f", loops=[make_loop()])
        module = Module(name="m", functions=[func, Function(
            name="f", loops=[make_loop("other")],
        )])
        with pytest.raises(IRValidationError, match="duplicate"):
            module.validate()

    def test_validate_rejects_duplicate_loops_in_function(self):
        # Loops are resolved by name module-wide (extract_code_features),
        # so two loops named 'l' must be rejected, like duplicate funcs.
        func = Function(name="f", loops=[make_loop("l"), make_loop("l")])
        module = Module(name="m", functions=[func])
        with pytest.raises(IRValidationError,
                           match="duplicate parallel loop 'l'"):
            module.validate()

    def test_validate_rejects_duplicate_loops_across_functions(self):
        module = Module(name="m", functions=[
            Function(name="f", loops=[make_loop("l")]),
            Function(name="g", loops=[make_loop("l")]),
        ])
        with pytest.raises(IRValidationError,
                           match="duplicate parallel loop"):
            module.validate()

    def test_validate_rejects_nested_loop_shadowing_top_level(self):
        inner = make_loop("l")
        module = Module(name="m", functions=[Function(name="f", loops=[
            make_loop("l", nested=[inner]),
        ])])
        with pytest.raises(IRValidationError,
                           match="duplicate parallel loop"):
            module.validate()

    def test_format_contains_structure(self):
        text = format_module(self.make_module())
        assert "module m {" in text
        assert "parallel_loop l1" in text
        assert "func main()" in text

    def test_str_matches_format(self):
        module = self.make_module()
        assert str(module) == format_module(module)


class TestCountInstructions:
    def test_plain(self):
        insts = [Instruction(Opcode.LOAD), Instruction(Opcode.FADD)]
        assert count_instructions(insts) == 2

    def test_predicate(self):
        insts = [Instruction(Opcode.LOAD), Instruction(Opcode.FADD)]
        assert count_instructions(insts, lambda i: i.is_memory) == 1


class TestEnums:
    def test_access_pattern_values(self):
        assert AccessPattern("irregular") is AccessPattern.IRREGULAR

    def test_schedule_values(self):
        assert Schedule("dynamic") is Schedule.DYNAMIC
