"""The IR lint framework: diagnostics, rules, linter, hooks, registry gate.

The registry gate at the bottom is the contract the CI workflow
enforces with ``repro lint --strict``: every benchmark program lints
clean of errors and warnings, and its info-level diagnostics match the
documented baseline in ``tests/compiler/data/registry_lint_baseline.
json``.  Regenerate the baseline (after auditing the diff!) with::

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.programs import all_programs
    from repro.compiler.analysis import lint_module
    baseline = {
        p.name: sorted(f"{d.code} {d.location}"
                       for d in lint_module(p.module))
        for p in all_programs()
    }
    with open("tests/compiler/data/registry_lint_baseline.json", "w") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    EOF
"""

import json
import pathlib

import pytest

from repro.compiler.analysis import (
    Diagnostic,
    IRLintError,
    Linter,
    Location,
    Severity,
    VALIDATION_CODE,
    all_rules,
    diagnostics_payload,
    is_failure,
    is_shared_operand,
    lint_module,
    max_severity,
    render_diagnostics_json,
    render_diagnostics_text,
)
from repro.compiler.analysis import analyze_module as lint_analyze_module
from repro.compiler.builder import IRBuilder
from repro.compiler.ir import AccessPattern, Module, Schedule
from repro.compiler.parser import parse_module
from repro.programs import all_programs

BASELINE_PATH = (
    pathlib.Path(__file__).parent / "data" / "registry_lint_baseline.json"
)

RACY_TEXT = """
module racy {
  func main() {
    parallel_loop accumulate [trip=1000, access=irregular] {
      %v0 = load %data
      %v1 = fmul %v0
      store sum
    }
  }
}
"""


def codes(diagnostics):
    return {d.code for d in diagnostics}


def only(diagnostics, code):
    return [d for d in diagnostics if d.code == code]


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.ERROR >= Severity.WARNING
        assert not Severity.ERROR < Severity.INFO

    def test_max_severity(self):
        loc = Location("m")
        diags = [
            Diagnostic("R005", Severity.INFO, "x", loc),
            Diagnostic("R002", Severity.WARNING, "y", loc),
        ]
        assert max_severity(diags) is Severity.WARNING
        assert max_severity([]) is None

    def test_is_failure(self):
        loc = Location("m")
        warning = [Diagnostic("R002", Severity.WARNING, "y", loc)]
        info = [Diagnostic("R005", Severity.INFO, "x", loc)]
        error = [Diagnostic("R001", Severity.ERROR, "z", loc)]
        assert not is_failure(warning)
        assert is_failure(warning, strict=True)
        assert not is_failure(info, strict=True)
        assert is_failure(error)


class TestLocation:
    def test_str_full(self):
        loc = Location("m", "f", "outer.inner", 3)
        assert str(loc) == "m:f:outer.inner#3"

    def test_str_module_only(self):
        assert str(Location("m")) == "m"

    def test_diagnostic_str_has_code_and_severity(self):
        diag = Diagnostic(
            "R001", Severity.ERROR, "boom", Location("m", "f", "l", 0),
        )
        text = str(diag)
        assert "R001" in text and "error" in text and "m:f:l#0" in text


class TestRuleRegistry:
    def test_expected_rule_codes(self):
        assert [r.code for r in all_rules()] == [
            "R001", "R002", "R003", "R004", "R005",
            "R006", "R007", "R008", "R009", "R010",
            "R011", "R012",
        ]

    def test_rules_have_summaries_and_names(self):
        for rule in all_rules():
            assert rule.summary
            assert rule.name
            assert isinstance(rule.severity, Severity)

    def test_shared_operand_convention(self):
        assert is_shared_operand("sum")
        assert is_shared_operand("@hist")
        assert not is_shared_operand("%mem")
        assert not is_shared_operand("%v0")


class TestR001RacyStore:
    def test_unprotected_shared_store_is_error(self):
        diags = only(lint_module(parse_module(RACY_TEXT)), "R001")
        assert len(diags) == 1
        diag = diags[0]
        assert diag.severity is Severity.ERROR
        assert diag.location.loop == "accumulate"
        assert diag.location.instruction == 2
        assert "'sum'" in diag.message
        assert "irregular" in diag.message

    def test_private_store_is_clean(self):
        b = IRBuilder("clean")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=10):
                b.load()
                b.store()  # default '%mem' is thread-private
        assert not only(lint_module(b.build()), "R001")

    def test_atomic_immediately_before_protects(self):
        text = RACY_TEXT.replace("store sum", "atomic\n      store sum")
        assert not only(lint_module(parse_module(text)), "R001")

    def test_critical_immediately_before_protects(self):
        text = RACY_TEXT.replace("store sum", "critical\n      store sum")
        assert not only(lint_module(parse_module(text)), "R001")

    def test_declared_reduction_with_reduce_protects(self):
        b = IRBuilder("red")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=10, reduction=True):
                b.load()
                b.fadd()
                b.reduce()
                b.store("sum")
        assert not only(lint_module(b.build()), "R001")

    def test_declared_reduction_without_reduce_does_not_protect(self):
        b = IRBuilder("red")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=10, reduction=True):
                b.fadd()
                b.store("sum")
        assert only(lint_module(b.build()), "R001")

    def test_fires_in_nested_loop_with_path(self):
        b = IRBuilder("nest")
        with b.function("f"):
            with b.parallel_loop("outer", trip_count=10):
                b.fadd()
                with b.parallel_loop("inner", trip_count=5):
                    b.store("acc")
        diags = only(lint_module(b.build()), "R001")
        assert diags and diags[0].location.loop == "outer.inner"


class TestR002R003Reductions:
    def test_reduce_without_declaration_warns(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=10):
                b.fadd()
                b.reduce()
        diags = only(lint_module(b.build()), "R002")
        assert diags and diags[0].severity is Severity.WARNING

    def test_declared_reduction_without_combine_is_info(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=10, reduction=True):
                b.fadd()
        diags = only(lint_module(b.build()), "R003")
        assert diags and diags[0].severity is Severity.INFO

    def test_consistent_reduction_is_clean(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=10, reduction=True):
                b.fadd()
                b.reduce()
        assert not codes(lint_module(b.build())) & {"R002", "R003"}


class TestR004R005Registers:
    def test_use_before_def_is_error(self):
        text = """
        module m {
          func f() {
            parallel_loop l [trip=2] {
              %v1 = fadd %v0
            }
          }
        }
        """
        diags = only(lint_module(parse_module(text)), "R004")
        assert diags and diags[0].severity is Severity.ERROR
        assert "%v0" in diags[0].message

    def test_def_then_use_is_clean(self):
        text = """
        module m {
          func f() {
            parallel_loop l [trip=2] {
              %v0 = load %a
              %v1 = fadd %v0
              store %v1
            }
          }
        }
        """
        diags = lint_module(parse_module(text))
        assert not codes(diags) & {"R004", "R005"}

    def test_serial_def_visible_in_loop(self):
        text = """
        module m {
          func f() {
            %v0 = call init
            parallel_loop l [trip=2] {
              %v1 = fadd %v0
              store %v1
            }
          }
        }
        """
        assert not only(lint_module(parse_module(text)), "R004")

    def test_non_vreg_operands_exempt(self):
        text = """
        module m {
          func f() {
            parallel_loop l [trip=2] {
              %v0 = load %mem
              store %v0
            }
          }
        }
        """
        assert not only(lint_module(parse_module(text)), "R004")

    def test_unused_registers_aggregate_per_loop(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=2):
                for _ in range(5):
                    b.load()
        diags = only(lint_module(b.build()), "R005")
        assert len(diags) == 1
        assert diags[0].severity is Severity.INFO
        assert "5 virtual register(s)" in diags[0].message


class TestR006BarrierPlacement:
    def test_barrier_in_hot_inner_loop_warns(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("outer", trip_count=100):
                b.fadd()
                with b.parallel_loop("inner", trip_count=64):
                    b.load()
                    b.barrier()
        diags = only(lint_module(b.build()), "R006")
        assert len(diags) == 1
        assert diags[0].severity is Severity.WARNING
        assert diags[0].location.loop == "outer.inner"

    def test_barrier_in_parallel_loop_body_is_fine(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=100):
                b.fadd()
                b.barrier()
        assert not only(lint_module(b.build()), "R006")

    def test_single_trip_inner_loop_is_fine(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("outer", trip_count=100):
                b.fadd()
                with b.parallel_loop("inner", trip_count=1):
                    b.load()
                    b.barrier()
        assert not only(lint_module(b.build()), "R006")


class TestR007DegenerateLoops:
    def test_trip_one_parallel_loop_warns(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=1):
                b.fadd()
        diags = only(lint_module(b.build()), "R007")
        assert diags and "trip_count=1" in diags[0].message

    def test_sync_only_body_warns(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=100):
                b.barrier()
                b.atomic()
        diags = only(lint_module(b.build()), "R007")
        assert diags and "synchronisation" in diags[0].message

    def test_normal_loop_is_clean(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=100):
                b.load()
                b.barrier()
        assert not only(lint_module(b.build()), "R007")


class TestR008ScheduleAccess:
    def test_static_irregular_is_info(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=100,
                                 access=AccessPattern.IRREGULAR):
                b.load()
        diags = only(lint_module(b.build()), "R008")
        assert diags and diags[0].severity is Severity.INFO

    def test_dynamic_irregular_is_clean(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=100,
                                 access=AccessPattern.IRREGULAR,
                                 schedule=Schedule.DYNAMIC):
                b.load()
        assert not only(lint_module(b.build()), "R008")


class TestR009R010ModuleSanity:
    def test_no_parallel_loops_warns(self):
        text = """
        module m {
          func f() {
            %v0 = call init
          }
        }
        """
        diags = only(lint_module(parse_module(text)), "R010")
        assert diags and diags[0].severity is Severity.WARNING

    def test_zero_instructions_is_error(self):
        from repro.compiler.ir import Function

        module = Module(name="void", functions=[Function(name="f")])
        diags = lint_module(module)
        assert "R009" in codes(diags)
        assert any(d.severity is Severity.ERROR for d in only(diags, "R009"))

    def test_normal_module_is_clean(self):
        b = IRBuilder("m")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=100):
                b.load()
        assert not codes(lint_module(b.build())) & {"R009", "R010"}


class TestLinter:
    def test_select_restricts_rules(self):
        module = parse_module(RACY_TEXT)
        diags = lint_module(module, select={"R001"})
        assert codes(diags) == {"R001"}

    def test_ignore_drops_rules(self):
        module = parse_module(RACY_TEXT)
        diags = lint_module(module, ignore={"R001", "R005", "R008"})
        assert not codes(diags) & {"R001", "R005", "R008"}

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError, match="R999"):
            Linter(select={"R999"})
        with pytest.raises(KeyError, match="R999"):
            Linter(ignore={"R999"})

    def test_diagnostics_sorted_by_location_then_code(self):
        diags = lint_module(parse_module(RACY_TEXT))
        keys = [d.sort_key() for d in diags]
        assert keys == sorted(keys)
        # Location-major: the rule code is the final tiebreaker, so two
        # findings at the same location appear in code order.
        assert keys == [
            (*d.location.sort_key(), d.code) for d in diags
        ]

    def test_duplicate_diagnostics_are_dropped(self):
        module = parse_module(RACY_TEXT)
        diags = lint_module(module)
        assert len(diags) == len(set(diags))

    def test_invalid_module_yields_r000(self):
        module = Module(name="empty")  # no functions: fails validate()
        diags = lint_module(module)
        assert len(diags) == 1
        assert diags[0].code == VALIDATION_CODE
        assert diags[0].severity is Severity.ERROR

    def test_analyze_module_alias_returns_diagnostics(self):
        diags = lint_analyze_module(parse_module(RACY_TEXT))
        assert diags and all(isinstance(d, Diagnostic) for d in diags)

    def test_lint_many_preserves_order(self):
        b1 = IRBuilder("b1")
        with b1.function("f"):
            with b1.parallel_loop("l1", trip_count=2):
                b1.fadd()
        b2 = IRBuilder("b2")
        with b2.function("f"):
            with b2.parallel_loop("l2", trip_count=2):
                b2.fadd()
        results = Linter().lint_many([b2.build(), b1.build()])
        assert list(results) == ["b2", "b1"]


class TestHooks:
    def test_parse_module_lint_flag_raises(self):
        with pytest.raises(IRLintError, match="R001"):
            parse_module(RACY_TEXT, lint=True)

    def test_parse_module_lint_flag_passes_clean(self):
        text = """
        module m {
          func f() {
            parallel_loop l [trip=2] {
              %v0 = load %a
              store %v0
            }
          }
        }
        """
        assert parse_module(text, lint=True).name == "m"

    def test_builder_lint_flag_raises(self):
        b = IRBuilder("racy")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=10):
                b.fadd()
                b.store("sum")
        with pytest.raises(IRLintError, match="R001"):
            b.build(lint=True)

    def test_builder_lint_flag_passes_clean(self):
        b = IRBuilder("ok")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=10):
                b.load()
                b.store()
        assert b.build(lint=True).name == "ok"

    def test_lint_error_carries_diagnostics(self):
        try:
            parse_module(RACY_TEXT, lint=True)
        except IRLintError as error:
            assert any(d.code == "R001" for d in error.diagnostics)
        else:
            pytest.fail("expected IRLintError")

    def test_lint_error_is_validation_error(self):
        from repro.compiler.ir import IRValidationError

        with pytest.raises(IRValidationError):
            parse_module(RACY_TEXT, lint=True)


class TestReporting:
    def make_results(self):
        return {"racy": lint_module(parse_module(RACY_TEXT))}

    def test_text_report_has_lines_and_summary(self):
        text = render_diagnostics_text(self.make_results())
        assert "racy:main:accumulate#2: R001 error:" in text
        assert "verdict" in text and "FAIL" in text
        assert "1 module(s)" in text

    def test_json_report_round_trips(self):
        payload = json.loads(render_diagnostics_json(self.make_results()))
        assert payload["summary"]["errors"] == 1
        [entry] = payload["modules"]
        assert entry["module"] == "racy"
        assert entry["failed"] is True
        racy = [d for d in entry["diagnostics"] if d["code"] == "R001"]
        assert racy[0]["severity"] == "error"
        assert racy[0]["loop"] == "accumulate"
        assert racy[0]["instruction"] == 2

    def test_payload_strict_promotes_warnings(self):
        b = IRBuilder("warny")
        with b.function("f"):
            with b.parallel_loop("l", trip_count=10):
                b.fadd()
                b.reduce()  # R002 warning
        results = {"warny": lint_module(b.build())}
        assert diagnostics_payload(results)["summary"]["failed"] == 0
        strict = diagnostics_payload(results, strict=True)
        assert strict["summary"]["failed"] == 1


class TestRegistryGate:
    """Every benchmark in the registry must stay lint-clean (the CI gate)."""

    def test_no_errors_or_warnings_anywhere(self):
        for program in all_programs():
            diags = lint_module(program.module)
            noisy = [d for d in diags
                     if d.severity is not Severity.INFO]
            assert not noisy, (
                f"{program.name} has non-info diagnostics: "
                f"{[str(d) for d in noisy]}"
            )

    def test_info_diagnostics_match_documented_baseline(self):
        with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        actual = {
            p.name: sorted(
                f"{d.code} {d.location}" for d in lint_module(p.module)
            )
            for p in all_programs()
        }
        assert actual == baseline, (
            "registry lint output drifted from the documented baseline; "
            "audit the diff and regenerate (see module docstring)"
        )

    def test_strict_gate_passes(self):
        for program in all_programs():
            assert not is_failure(
                lint_module(program.module), strict=True
            ), program.name

    def test_every_registry_loop_is_dependence_safe(self):
        """The dependence analysis must prove every benchmark loop SAFE.

        The registry kernels follow the owner-computes discipline
        (each iteration writes its own ``out[i]`` element; reductions
        combine through a protected accumulator), so anything other
        than a SAFE verdict is a bug in a kernel or in the analysis.
        """
        from repro.analysis.deps import ParallelSafety, analyze_dependences

        for program in all_programs():
            report = analyze_dependences(program.module)
            assert report.loops, program.name
            assert not report.confirmed_races(), program.name
            assert not report.possible_races(), program.name
            for loop_name, loop_report in report.loops.items():
                assert loop_report.verdict is ParallelSafety.SAFE, (
                    f"{program.name}:{loop_name} -> "
                    f"{loop_report.verdict.value}: "
                    f"{[d.describe() for d in loop_report.unprotected]}"
                )
