"""Textual IR parsing and print/parse round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import (
    AccessPattern,
    Instruction,
    Opcode,
    Schedule,
    format_module,
)
from repro.compiler.parser import IRParseError, parse_module
from repro.programs import all_programs

SAMPLE = """
module saxpy {
  func main() {
    %v0 = call init
    parallel_loop axpy [trip=1000, sched=dynamic, access=strided] {
      %v1 = load %x
      %v2 = fmul
      store %y
    }
  }
}
"""


class TestParse:
    def test_basic_structure(self):
        module = parse_module(SAMPLE)
        assert module.name == "saxpy"
        func = module.function("main")
        assert func.serial[0].opcode is Opcode.CALL
        loop = func.loops[0]
        assert loop.name == "axpy"
        assert loop.trip_count == 1000
        assert loop.schedule is Schedule.DYNAMIC
        assert loop.access_pattern is AccessPattern.STRIDED

    def test_instruction_details(self):
        module = parse_module(SAMPLE)
        body = module.function("main").loops[0].body
        assert body[0] == Instruction(Opcode.LOAD, ("%x",), "%v1")
        assert body[2] == Instruction(Opcode.STORE, ("%y",))

    def test_reduction_flag(self):
        text = """
        module m {
          func f() {
            parallel_loop l [trip=2, reduction] {
              reduce
            }
          }
        }
        """
        loop = parse_module(text).function("f").loops[0]
        assert loop.has_reduction

    def test_nested_loops(self):
        text = """
        module m {
          func f() {
            parallel_loop outer [trip=4] {
              fadd
              parallel_loop inner [trip=8] {
                load %a
              }
            }
          }
        }
        """
        outer = parse_module(text).function("f").loops[0]
        assert outer.nested[0].trip_count == 8
        assert outer.nested[0].body[0].opcode is Opcode.LOAD

    def test_comments_and_blank_lines(self):
        text = SAMPLE.replace(
            "%v2 = fmul", "# a comment\n\n      %v2 = fmul",
        )
        assert parse_module(text).name == "saxpy"

    def test_defaults_without_attrs(self):
        text = """
        module m {
          func f() {
            parallel_loop l {
              fadd
            }
          }
        }
        """
        loop = parse_module(text).function("f").loops[0]
        assert loop.trip_count == 1
        assert loop.schedule is Schedule.STATIC


class TestErrors:
    @pytest.mark.parametrize("text,message", [
        ("", "empty input"),
        ("module m {", "unexpected end"),
        ("func f() {\n}", "expected 'module"),
        ("module m {\n  func f() {\n    zzz_bad_opcode\n  }\n}\n",
         "unknown opcode"),
        ("module m {\n  func f() {\n    parallel_loop l [zoom=3] {\n"
         "      fadd\n    }\n  }\n}", "unknown loop attribute"),
        ("module m {\n  func f() {\n    parallel_loop l [trip=x] {\n"
         "      fadd\n    }\n  }\n}", "bad value"),
        ("module m {\n}\nextra\n", "after module end"),
        ("module m {\n  load %a\n}\n", "outside a function"),
    ])
    def test_parse_errors(self, text, message):
        with pytest.raises(IRParseError, match=message):
            parse_module(text)

    def test_error_carries_line_number(self):
        try:
            parse_module("module m {\n  bogus!\n}")
        except IRParseError as error:
            assert error.line_number == 2
        else:
            pytest.fail("expected IRParseError")

    def test_duplicate_loop_names_rejected(self):
        # Regression: loops are resolved by name module-wide, so a
        # module with two loops named 'l' must fail validation.
        text = """
        module m {
          func f() {
            parallel_loop l [trip=2] {
              fadd
            }
            parallel_loop l [trip=4] {
              fmul
            }
          }
        }
        """
        from repro.compiler.ir import IRValidationError

        with pytest.raises(IRValidationError,
                           match="duplicate parallel loop 'l'"):
            parse_module(text)
        # Without validation the structure still parses.
        module = parse_module(text, validate=False)
        assert [l.name for l in module.parallel_loops()] == ["l", "l"]


class TestErrorLineNumbers:
    """Each parse-error class reports the exact offending line."""

    def err(self, text):
        with pytest.raises(IRParseError) as info:
            parse_module(text)
        return info.value

    def test_unknown_opcode_line(self):
        error = self.err(
            "module m {\n"          # 1
            "  func f() {\n"        # 2
            "    fadd\n"            # 3
            "    zzz_bad_opcode\n"  # 4
            "  }\n"
            "}\n"
        )
        assert "unknown opcode" in str(error)
        assert error.line_number == 4

    def test_unknown_loop_attribute_line(self):
        error = self.err(
            "module m {\n"                        # 1
            "  func f() {\n"                      # 2
            "    parallel_loop l [zoom=3] {\n"    # 3
            "      fadd\n"
            "    }\n"
            "  }\n"
            "}\n"
        )
        assert "unknown loop attribute" in str(error)
        assert error.line_number == 3

    def test_bad_attribute_value_line(self):
        error = self.err(
            "module m {\n"                            # 1
            "  func f() {\n"                          # 2
            "    fadd\n"                              # 3
            "    parallel_loop l [trip=banana] {\n"   # 4
            "      fadd\n"
            "    }\n"
            "  }\n"
            "}\n"
        )
        assert "bad value for 'trip'" in str(error)
        assert error.line_number == 4

    def test_bad_schedule_value_line(self):
        error = self.err(
            "module m {\n"
            "  func f() {\n"
            "    parallel_loop l [sched=sometimes] {\n"  # 3
            "      fadd\n"
            "    }\n"
            "  }\n"
            "}\n"
        )
        assert "bad value for 'sched'" in str(error)
        assert error.line_number == 3

    def test_malformed_attribute_line(self):
        error = self.err(
            "module m {\n"
            "  func f() {\n"
            "    parallel_loop l [chaos] {\n"  # 3
            "      fadd\n"
            "    }\n"
            "  }\n"
            "}\n"
        )
        assert "malformed loop attribute" in str(error)
        assert error.line_number == 3

    def test_unclosed_braces_report_line_zero(self):
        # End-of-input errors have no offending line; the parser pins
        # them to line 0 by contract.
        for text in (
            "module m {\n",
            "module m {\n  func f() {\n    fadd\n",
            "module m {\n  func f() {\n    parallel_loop l {\n      fadd\n",
        ):
            error = self.err(text)
            assert "missing '}'" in str(error)
            assert error.line_number == 0

    def test_content_after_module_end_line(self):
        error = self.err("module m {\n}\nextra\n")
        assert error.line_number == 3


class TestRoundTrip:
    def test_all_benchmark_modules_round_trip(self):
        for program in all_programs():
            text = format_module(program.module)
            parsed = parse_module(text)
            assert format_module(parsed) == text

    def test_registry_round_trip_preserves_analyses(self):
        # Property: for every registered benchmark, the textual round
        # trip re-validates and is analysis-equivalent — every
        # LoopAnalysis (dynamic counts, schedule, access pattern,
        # depth) and the module totals are identical, so features
        # extracted from dumped-and-reloaded IR match the original.
        from repro.compiler.passes import analyze_module

        for program in all_programs():
            original = analyze_module(program.module)
            reparsed = parse_module(format_module(program.module))
            reparsed.validate()  # idempotent revalidation
            restored = analyze_module(reparsed)
            assert restored == original, program.name

    def test_registry_round_trip_preserves_lint_diagnostics(self):
        # The static-analysis verdict survives the round trip too.
        from repro.compiler.analysis import lint_module

        for program in all_programs():
            original = lint_module(program.module)
            reparsed = parse_module(format_module(program.module))
            assert lint_module(reparsed) == original, program.name

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_random_modules_round_trip(self, data):
        b = IRBuilder("fuzz")
        emitters = ["load", "store", "fadd", "fmul", "cond_branch",
                    "barrier", "atomic", "call", "cmp", "gep"]
        n_loops = data.draw(st.integers(min_value=1, max_value=3))
        with b.function("f"):
            for _ in range(data.draw(st.integers(0, 3))):
                b.call("setup")
            for index in range(n_loops):
                trip = data.draw(st.integers(1, 10_000))
                schedule = data.draw(st.sampled_from(list(Schedule)))
                access = data.draw(st.sampled_from(list(AccessPattern)))
                reduction = data.draw(st.booleans())
                with b.parallel_loop(f"l{index}", trip_count=trip,
                                     schedule=schedule, access=access,
                                     reduction=reduction):
                    for _ in range(data.draw(st.integers(1, 8))):
                        getattr(b, data.draw(st.sampled_from(emitters)))()
        module = b.build()
        text = format_module(module)
        assert format_module(parse_module(text)) == text
