"""Unit tests for the benchmark-ledger scripts.

`scripts/check_bench_regression.py` gates CI on wall-clock and
run-count drift; `scripts/bench_report.py` rolls the ledger into
`BENCH_summary.json`.  Both are plain scripts (not part of the `repro`
package), so they are imported straight off the `scripts/` directory.
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def load_script(name):
    spec = importlib.util.spec_from_file_location(
        name, SCRIPTS / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


check = load_script("check_bench_regression")
report = load_script("bench_report")


def entry(duration_s, runs=240, hits=0, jobs=1):
    return {
        "duration_s": duration_s,
        "runs_executed": runs,
        "cache_hits": hits,
        "jobs": jobs,
    }


class TestCompare:
    def test_identical_ledgers_are_clean(self):
        ledger = {"b.py::t": entry(10.0), "b.py::t@cold": entry(12.0)}
        assert check.compare(ledger, dict(ledger), 0.25) == []

    def test_small_slowdown_within_limit(self):
        baseline = {"b.py::t": entry(10.0)}
        current = {"b.py::t": entry(12.0)}
        assert check.compare(baseline, current, 0.25) == []

    def test_wall_clock_regression_fails(self):
        baseline = {"b.py::t": entry(10.0)}
        current = {"b.py::t": entry(13.0)}
        failures = check.compare(baseline, current, 0.25)
        assert len(failures) == 1
        assert "wall clock regressed" in failures[0]

    def test_speedup_is_clean(self):
        baseline = {"b.py::t": entry(10.0)}
        current = {"b.py::t": entry(3.0)}
        assert check.compare(baseline, current, 0.25) == []

    def test_run_count_change_fails_even_when_faster(self):
        baseline = {"b.py::t": entry(10.0, runs=240)}
        current = {"b.py::t": entry(5.0, runs=120)}
        failures = check.compare(baseline, current, 0.25)
        assert len(failures) == 1
        assert "runs_executed changed" in failures[0]

    def test_run_count_checked_before_jobs_mismatch(self):
        # A warm entry re-recorded under a different worker count must
        # still fail if the deterministic run count drifted.
        baseline = {"b.py::t@warm": entry(0.2, runs=0, hits=240, jobs=4)}
        current = {"b.py::t@warm": entry(0.2, runs=96, hits=144, jobs=1)}
        failures = check.compare(baseline, current, 0.25)
        assert len(failures) == 1
        assert "runs_executed changed" in failures[0]

    def test_jobs_mismatch_skips_wall_clock(self):
        baseline = {"b.py::t": entry(10.0, jobs=4)}
        current = {"b.py::t": entry(50.0, jobs=1)}
        assert check.compare(baseline, current, 0.25) == []

    def test_noise_floor_skips_tiny_baselines(self):
        baseline = {"b.py::t@warm": entry(0.2, runs=0, hits=240)}
        current = {"b.py::t@warm": entry(0.45, runs=0, hits=240)}
        assert check.compare(baseline, current, 0.25) == []

    def test_missing_current_entry_is_not_a_failure(self):
        baseline = {"a.py::t": entry(10.0), "b.py::t": entry(10.0)}
        current = {"a.py::t": entry(10.0)}
        assert check.compare(baseline, current, 0.25) == []

    def test_nothing_comparable_fails(self):
        baseline = {"a.py::t": entry(10.0)}
        assert check.compare(baseline, {}, 0.25) != []

    def test_underscore_keys_are_not_entries(self):
        baseline = {
            "b.py::t": entry(10.0),
            "_gates": {"g": {"numerator": "x", "denominator": "y",
                             "max_ratio": 1.0}},
        }
        current = {"b.py::t": entry(10.0)}
        assert check.compare(baseline, current, 0.25) == []

    def test_main_exit_codes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps({"b.py::t": entry(10.0)}))
        current.write_text(json.dumps({"b.py::t": entry(10.0)}))
        argv = ["--baseline", str(baseline), "--current", str(current)]
        assert check.main(argv) == 0
        current.write_text(json.dumps({"b.py::t": entry(99.0)}))
        assert check.main(argv) == 1
        with pytest.raises(SystemExit) as exc:
            check.main(["--baseline", str(tmp_path / "missing.json"),
                        "--current", str(current)])
        assert exc.value.code == 2


class TestGates:
    def gate(self, max_ratio=1.35):
        return {"_gates": {"cold j4 vs j1": {
            "numerator": "b.py::t@j4",
            "denominator": "b.py::t@j1",
            "max_ratio": max_ratio,
        }}}

    def test_ratio_within_limit_is_clean(self):
        current = {"b.py::t@j1": entry(18.0),
                   "b.py::t@j4": entry(21.0, jobs=4)}
        assert check.check_gates(self.gate(), current, Path('.')) == []

    def test_ratio_beyond_limit_fails(self):
        current = {"b.py::t@j1": entry(18.0),
                   "b.py::t@j4": entry(30.0, jobs=4)}
        failures = check.check_gates(self.gate(), current, Path('.'))
        assert len(failures) == 1
        assert "exceeds" in failures[0]

    def test_absent_entries_skip_gate(self):
        current = {"b.py::t@j1": entry(18.0)}
        assert check.check_gates(self.gate(), current, Path('.')) == []
        assert check.check_gates(self.gate(), {}, Path('.')) == []

    def test_zero_denominator_skips_gate(self):
        current = {"b.py::t@j1": entry(0.0),
                   "b.py::t@j4": entry(21.0, jobs=4)}
        assert check.check_gates(self.gate(), current, Path('.')) == []

    def test_no_gates_block_is_clean(self):
        assert check.check_gates({"b.py::t": entry(1.0)}, {}, Path(".")) == []

    def test_gate_failure_fails_main(self, tmp_path):
        node = "b.py::t"
        ledger = {f"{node}@j1": entry(18.0),
                  f"{node}@j4": entry(21.0, jobs=4)}
        baseline_path = tmp_path / "baseline.json"
        current_path = tmp_path / "current.json"
        baseline_path.write_text(json.dumps({**ledger, **self.gate()}))
        current_path.write_text(json.dumps(ledger))
        argv = ["--baseline", str(baseline_path),
                "--current", str(current_path)]
        assert check.main(argv) == 0
        slow = dict(ledger)
        slow[f"{node}@j4"] = entry(30.0, jobs=4)
        current_path.write_text(json.dumps(slow))
        assert check.main(argv) == 1


class TestAbsoluteGates:
    def gate(self, max_value=0.5, **extra):
        return {"_gates": {"resize pause p99": {
            "kind": "absolute",
            "results_file": "serve_resize_pause.json",
            "metric": "resize_pause_p99_s",
            "max_value": max_value,
            **extra,
        }}}

    def write_metrics(self, directory, value):
        (directory / "serve_resize_pause.json").write_text(
            json.dumps({"resize_pause_p99_s": value})
        )

    def test_within_bound_is_clean(self, tmp_path):
        self.write_metrics(tmp_path, 0.13)
        assert check.check_gates(self.gate(), {}, tmp_path) == []

    def test_beyond_bound_fails(self, tmp_path):
        self.write_metrics(tmp_path, 0.9)
        failures = check.check_gates(self.gate(), {}, tmp_path)
        assert len(failures) == 1
        assert "exceeds bound" in failures[0]

    def test_missing_results_file_skips(self, tmp_path):
        assert check.check_gates(self.gate(), {}, tmp_path) == []

    def test_missing_metric_skips(self, tmp_path):
        (tmp_path / "serve_resize_pause.json").write_text(
            json.dumps({"something_else": 1.0})
        )
        assert check.check_gates(self.gate(), {}, tmp_path) == []

    def test_min_cores_skips_on_small_hosts(self, tmp_path,
                                            monkeypatch):
        self.write_metrics(tmp_path, 0.9)  # would fail if evaluated
        monkeypatch.setattr(check.os, "cpu_count", lambda: 1)
        assert check.check_gates(
            self.gate(min_cores=2), {}, tmp_path
        ) == []

    def test_malformed_results_file_fails(self, tmp_path):
        (tmp_path / "serve_resize_pause.json").write_text("{nope")
        failures = check.check_gates(self.gate(), {}, tmp_path)
        assert len(failures) == 1
        assert "malformed" in failures[0]


class TestReport:
    def test_figure_name_strips_path_and_prefix(self):
        assert report.figure_name(
            "benchmarks/bench_fig08_dynamic_summary.py::test_summary"
        ) == "fig08_dynamic_summary"
        assert report.figure_name("benchmarks/other.py::t") == "other"

    def test_split_tag(self):
        assert report.split_tag("b.py::t@cold") == ("b.py::t", "cold")
        assert report.split_tag("b.py::t") == ("b.py::t", "run")

    def test_summarise_groups_by_figure_and_tag(self):
        ledger = {
            "benchmarks/bench_fig08_x.py::t": entry(14.4178),
            "benchmarks/bench_fig08_x.py::t@cold": entry(16.7, jobs=4),
            "benchmarks/bench_fig08_x.py::t@warm": entry(
                0.22, runs=0, hits=240, jobs=4
            ),
        }
        summary = report.summarise(ledger)
        variants = summary["figures"]["fig08_x"]
        assert set(variants) == {"run", "cold", "warm"}
        assert variants["run"]["wall_s"] == 14.4178
        assert variants["warm"]["cache_hits"] == 240
        assert variants["warm"]["runs_executed"] == 0
        totals = summary["totals"]
        assert totals["figures"] == 1
        assert totals["entries"] == 3
        assert totals["runs_executed"] == 480
        assert totals["cache_hits"] == 240

    def test_scaling_block_speedups_vs_j1(self):
        ledger = {
            "benchmarks/bench_fig08_x.py::t@j1": entry(18.0),
            "benchmarks/bench_fig08_x.py::t@j2": entry(9.0, jobs=2),
            "benchmarks/bench_fig08_x.py::t@j4": entry(6.0, jobs=4),
            "benchmarks/bench_fig08_x.py::t@cold": entry(6.0, jobs=4),
        }
        variants = report.summarise(ledger)["figures"]["fig08_x"]
        assert variants["scaling_vs_j1"] == {"j2": 2.0, "j4": 3.0}

    def test_scaling_block_absent_without_j1(self):
        ledger = {
            "benchmarks/bench_fig08_x.py::t@j4": entry(6.0, jobs=4),
        }
        variants = report.summarise(ledger)["figures"]["fig08_x"]
        assert "scaling_vs_j1" not in variants

    def test_summarise_empty_ledger(self):
        summary = report.summarise({})
        assert summary["totals"]["entries"] == 0
        assert summary["figures"] == {}

    def test_main_writes_summary(self, tmp_path):
        ledger = tmp_path / "ledger.json"
        output = tmp_path / "summary.json"
        ledger.write_text(json.dumps(
            {"benchmarks/bench_fig08_x.py::t": entry(10.0)}
        ))
        assert report.main(
            ["--ledger", str(ledger), "--output", str(output)]
        ) == 0
        written = json.loads(output.read_text())
        assert written["totals"]["entries"] == 1
        assert report.main(
            ["--ledger", str(tmp_path / "none.json"),
             "--output", str(output)]
        ) == 2


class TestResizeBlock:
    def test_metrics_sidecar_is_surfaced(self, tmp_path):
        (tmp_path / "serve_resize_pause.json").write_text(json.dumps({
            "resizes": 2, "streams_migrated": 3,
            "resize_pause_p99_s": 0.131, "resize_pause_max_s": 0.131,
            "throughput_rps": 2100.0, "requests": 2000,
        }))
        block = report.serve_resize_block(tmp_path)
        assert block["resizes"] == 2
        assert block["resize_pause_p99_s"] == 0.131
        assert "requests" not in block  # only headline keys surface
        summary = report.attach_resize_block({"totals": {}}, tmp_path)
        assert summary["serve_resize"] == block

    def test_absent_or_malformed_sidecar_is_silent(self, tmp_path):
        assert report.serve_resize_block(tmp_path) == {}
        (tmp_path / "serve_resize_pause.json").write_text("{nope")
        assert report.serve_resize_block(tmp_path) == {}
