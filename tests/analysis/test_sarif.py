"""SARIF 2.1.0 rendering shared by lint and sanitize."""

from __future__ import annotations

import json

from repro.analysis.sarif import (
    LEVELS,
    SARIF_SCHEMA,
    SARIF_VERSION,
    SarifResult,
    render_sarif,
    render_sarif_json,
)

RULES = {
    "S001": {
        "name": "unseeded-rng",
        "summary": "rng without a seed",
        "level": "error",
    },
    "R005": {"name": "wide-loop"},
}

RESULTS = [
    SarifResult(
        rule_id="S001",
        level="error",
        message="default_rng() without a seed",
        uri="src/repro/foo.py",
        line=12,
        column=5,
    ),
    SarifResult(
        rule_id="R005",
        level="note",
        message="[mod:fn:loop#1] loop is wide",
        uri="ir/mod.ir",
        line=2,
    ),
]


class TestDocumentStructure:
    def test_top_level_envelope(self):
        document = render_sarif(RESULTS, "repro-test", RULES)
        assert document["$schema"] == SARIF_SCHEMA
        assert document["version"] == SARIF_VERSION == "2.1.0"
        assert len(document["runs"]) == 1

    def test_driver_carries_fired_rules_sorted(self):
        document = render_sarif(RESULTS, "repro-test", RULES)
        driver = document["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-test"
        assert [rule["id"] for rule in driver["rules"]] == [
            "R005", "S001",
        ]
        s001 = driver["rules"][1]
        assert s001["name"] == "unseeded-rng"
        assert s001["shortDescription"]["text"] == "rng without a seed"
        assert s001["defaultConfiguration"]["level"] == "error"
        # Optional metadata stays optional.
        assert "shortDescription" not in driver["rules"][0]

    def test_unfired_rules_are_omitted(self):
        document = render_sarif([RESULTS[0]], "repro-test", RULES)
        driver = document["runs"][0]["tool"]["driver"]
        assert [rule["id"] for rule in driver["rules"]] == ["S001"]

    def test_results_keep_caller_order_and_locations(self):
        document = render_sarif(RESULTS, "repro-test", RULES)
        results = document["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["S001", "R005"]
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/foo.py"
        assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert location["region"] == {"startLine": 12, "startColumn": 5}

    def test_line_and_column_are_clamped_to_one(self):
        result = SarifResult(
            rule_id="X", level="note", message="m", uri="u",
            line=0, column=-3,
        )
        region = result.to_sarif()["locations"][0][
            "physicalLocation"]["region"]
        assert region == {"startLine": 1, "startColumn": 1}

    def test_severity_level_mapping(self):
        assert LEVELS == {
            "error": "error", "warning": "warning", "info": "note",
        }


class TestSerialization:
    def test_json_rendering_is_deterministic(self):
        first = render_sarif_json(RESULTS, "repro-test", RULES)
        second = render_sarif_json(list(RESULTS), "repro-test", dict(RULES))
        assert first == second
        parsed = json.loads(first)
        assert parsed["version"] == "2.1.0"

    def test_empty_findings_render_an_empty_run(self):
        document = render_sarif([], "repro-test", RULES)
        run = document["runs"][0]
        assert run["results"] == []
        assert run["tool"]["driver"]["rules"] == []
