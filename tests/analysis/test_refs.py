"""Memory-reference grammar: parse_ref / parse_subscript."""

from __future__ import annotations

import pytest

from repro.analysis.refs import AffineSubscript, parse_ref, parse_subscript


class TestParseSubscript:
    @pytest.mark.parametrize(
        "text,trip,coeff,offset",
        [
            ("i", 8, 1, 0),
            ("-i", 8, -1, 0),
            ("2*i", 8, 2, 0),
            ("i*2", 8, 2, 0),
            ("2*i+1", 8, 2, 1),
            ("i+1", 8, 1, 1),
            ("i-1", 8, 1, -1),
            ("0", 8, 0, 0),
            ("7", 8, 0, 7),
            ("n", 8, 0, 8),
            ("n-1", 8, 0, 7),
            ("n-1-i", 8, -1, 7),
            ("2*n-i", 5, -1, 10),
            ("n*3", 4, 0, 12),
            ("i + 1", 8, 1, 1),  # whitespace is ignored
            ("i+i", 8, 2, 0),    # repeated terms accumulate
        ],
    )
    def test_affine_forms(self, text, trip, coeff, offset):
        sub = parse_subscript(text, trip_count=trip)
        assert sub == AffineSubscript(coeff=coeff, offset=offset)

    @pytest.mark.parametrize(
        "text",
        ["idx[i]", "j", "2i", "i*j", "", "i+", "x+1", "i**2", "3*"],
    )
    def test_non_affine_forms(self, text):
        assert parse_subscript(text, trip_count=8) is None

    def test_at_evaluates_the_subscript(self):
        sub = parse_subscript("2*i+1", trip_count=8)
        assert sub is not None
        assert [sub.at(k) for k in range(3)] == [1, 3, 5]


class TestParseRef:
    def test_scalar_reference(self):
        ref = parse_ref("sum", trip_count=8)
        assert ref.base == "sum"
        assert ref.is_scalar
        assert ref.is_affine
        # A scalar is the degenerate 0*i+0: same address every iteration.
        assert ref.subscript == AffineSubscript(coeff=0, offset=0)

    def test_affine_array_reference(self):
        ref = parse_ref("A[n-1-i]", trip_count=8)
        assert ref.base == "A"
        assert not ref.is_scalar
        assert ref.subscript == AffineSubscript(coeff=-1, offset=7)

    def test_opaque_subscript(self):
        # Nested brackets parse as base "in0", subscript "idx[i]" —
        # present but not affine.
        ref = parse_ref("in0[idx[i]]", trip_count=8)
        assert ref.base == "in0"
        assert ref.subscript_text == "idx[i]"
        assert not ref.is_scalar
        assert not ref.is_affine

    def test_private_register_base(self):
        ref = parse_ref("%mem", trip_count=8)
        assert ref.base == "%mem"
        assert ref.is_scalar

    def test_str_roundtrips_raw(self):
        assert str(parse_ref("A[2*i+1]", trip_count=4)) == "A[2*i+1]"
