"""Determinism sanitizer: rules, pragmas, and the repo-clean gate."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.sanitize import (
    all_sanitize_rules,
    sanitize_findings_failed,
    sanitize_path,
    sanitize_source,
    sanitize_tree,
)

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

DETERMINISTIC_PATH = "runtime/engine.py"
PERSISTENCE_PATH = "serve/journal.py"
NEUTRAL_PATH = "experiments/figures.py"


def findings(source, path=NEUTRAL_PATH):
    return sanitize_source(textwrap.dedent(source), path)


def codes(source, path=NEUTRAL_PATH):
    return [f.code for f in findings(source, path)]


class TestRuleMetadata:
    def test_rules_are_ordered_and_complete(self):
        rules = all_sanitize_rules()
        assert [r.code for r in rules] == [
            "S001", "S002", "S003", "S004", "S005",
        ]
        assert {r.severity for r in rules} == {"error", "warning"}


class TestUnseededRng:
    def test_default_rng_without_seed_flags_everywhere(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()
        """
        assert codes(src) == ["S001"]

    def test_default_rng_with_seed_passes(self):
        src = """
        import numpy as np
        rng = np.random.default_rng(1234)
        """
        assert codes(src) == []

    def test_global_random_functions_flag(self):
        src = """
        import random
        x = random.random()
        y = random.randint(0, 7)
        """
        assert codes(src) == ["S001", "S001"]

    def test_seeded_random_instance_passes(self):
        src = """
        import random
        rng = random.Random(99)
        x = rng.random()
        """
        assert codes(src) == []


class TestZoneRules:
    def test_wall_clock_flags_in_deterministic_zone_only(self):
        src = """
        import time
        def stamp():
            return time.time()
        """
        assert codes(src, DETERMINISTIC_PATH) == ["S002"]
        assert codes(src, NEUTRAL_PATH) == []

    def test_json_dump_without_sort_keys_warns(self):
        src = """
        import json
        def save(payload, handle):
            json.dump(payload, handle)
        """
        assert codes(src, DETERMINISTIC_PATH) == ["S004"]
        assert codes(src, NEUTRAL_PATH) == []

    def test_json_dump_with_sort_keys_passes(self):
        src = """
        import json
        def save(payload, handle):
            json.dump(payload, handle, sort_keys=True)
        """
        assert codes(src, DETERMINISTIC_PATH) == []

    def test_builtin_hash_warns_in_deterministic_zone(self):
        src = """
        def key(value):
            return hash(value)
        """
        assert codes(src, DETERMINISTIC_PATH) == ["S005"]
        assert codes(src, NEUTRAL_PATH) == []

    def test_hashlib_is_not_flagged(self):
        src = """
        import hashlib
        def key(value):
            return hashlib.sha256(value).hexdigest()
        """
        assert codes(src, DETERMINISTIC_PATH) == []


class TestAtomicWrite:
    def test_plain_write_flags_in_persistence_zone(self):
        src = """
        def save(path, text):
            with open(path, "w") as handle:
                handle.write(text)
        """
        assert codes(src, PERSISTENCE_PATH) == ["S003"]
        assert codes(src, NEUTRAL_PATH) == []

    def test_write_with_atomic_publish_passes(self):
        src = """
        import os
        def save(path, text):
            with open(path + ".tmp", "w") as handle:
                handle.write(text)
            os.replace(path + ".tmp", path)
        """
        assert codes(src, PERSISTENCE_PATH) == []

    def test_reads_and_appends_pass(self):
        src = """
        def tail(path, line):
            with open(path) as handle:
                handle.read()
            with open(path, "a") as handle:
                handle.write(line)
        """
        assert codes(src, PERSISTENCE_PATH) == []


class TestPragmas:
    def test_bare_pragma_suppresses_all_codes(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()  # sanitize: ok
        """
        assert codes(src) == []

    def test_coded_pragma_suppresses_only_named_codes(self):
        src = """
        import numpy as np
        rng = np.random.default_rng()  # sanitize: ok S001
        """
        assert codes(src) == []
        src = """
        import numpy as np
        other = np.random.default_rng()  # sanitize: ok S002
        """
        assert codes(src) == ["S001"]  # wrong code: not suppressed

    def test_pragma_on_previous_line_applies(self):
        src = """
        import numpy as np
        # sanitize: ok S001
        rng = np.random.default_rng()
        """
        assert codes(src) == []


class TestVerdicts:
    def test_errors_always_fail(self):
        errors = findings(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        assert sanitize_findings_failed(errors, strict=False)
        assert sanitize_findings_failed(errors, strict=True)

    def test_warnings_fail_only_under_strict(self):
        warnings = findings(
            "import json\n"
            "def save(p, h):\n"
            "    json.dump(p, h)\n",
            DETERMINISTIC_PATH,
        )
        assert [f.severity for f in warnings] == ["warning"]
        assert not sanitize_findings_failed(warnings, strict=False)
        assert sanitize_findings_failed(warnings, strict=True)

    def test_clean_source_passes_strict(self):
        assert not sanitize_findings_failed([], strict=True)


class TestTreeScan:
    def test_findings_are_labelled_relative_to_root(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "dirty.py").write_text(
            "import random\nx = random.random()\n"
        )
        (package / "clean.py").write_text("VALUE = 1\n")
        results = sanitize_tree(package)
        assert [f.path for f in results] == ["dirty.py"]
        assert results[0].code == "S001"

    def test_single_file_scan_matches_tree_scan(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text("import random\nx = random.choice([1, 2])\n")
        assert (
            sanitize_path(target, root=tmp_path)
            == sanitize_tree(tmp_path)
        )

    def test_repository_source_is_sanitize_clean(self):
        # The acceptance gate: `repro sanitize --strict` on src/repro
        # reports nothing (pragmas mark the deliberate exceptions).
        assert sanitize_tree(REPO_SRC) == []
