"""Runtime determinism hooks: StateDigest and the stepping cross-check."""

from __future__ import annotations

import pytest

import repro.exec.request as request_module
from repro.analysis.determinism import (
    ENV_FLAG,
    DeterminismError,
    StateDigest,
    sanitize_active,
)
from repro.exec import PolicySpec, RunRequest, execute_request

SCALE = 0.02


def tiny_request(**overrides) -> RunRequest:
    base = dict(
        target="cg",
        policy=PolicySpec.fixed(4),
        iterations_scale=SCALE,
    )
    base.update(overrides)
    return RunRequest(**base)


class TestSanitizeActive:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not sanitize_active()

    def test_armed_only_by_exactly_one(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert sanitize_active()
        monkeypatch.setenv(ENV_FLAG, "true")
        assert not sanitize_active()


class TestStateDigest:
    def test_same_observations_same_digest(self):
        first, second = StateDigest(), StateDigest()
        for digest in (first, second):
            digest.fold("consult", {"job": "target", "threads": 8})
            digest.fold("complete", {"job": "target", "runs": 1})
        assert first.hexdigest() == second.hexdigest()
        assert first.events == second.events == 2

    def test_observation_order_matters(self):
        first, second = StateDigest(), StateDigest()
        first.fold("a", 1)
        first.fold("b", 2)
        second.fold("b", 2)
        second.fold("a", 1)
        assert first.hexdigest() != second.hexdigest()

    def test_dict_key_order_does_not_matter(self):
        first, second = StateDigest(), StateDigest()
        first.fold("consult", {"job": "target", "threads": 8})
        second.fold("consult", {"threads": 8, "job": "target"})
        assert first.hexdigest() == second.hexdigest()

    def test_payload_differences_show_up(self):
        first, second = StateDigest(), StateDigest()
        first.fold("consult", {"threads": 8})
        second.fold("consult", {"threads": 4})
        assert first.hexdigest() != second.hexdigest()


class TestEngineDigest:
    def test_engine_has_no_digest_when_inactive(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        _result, engine, _recorder, _policy = request_module._simulate(
            tiny_request(), "event"
        )
        assert engine.state_digest is None

    def test_event_and_fixed_digests_agree(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        _r1, event_engine, _, _ = request_module._simulate(
            tiny_request(), "event"
        )
        _r2, fixed_engine, _, _ = request_module._simulate(
            tiny_request(), "fixed"
        )
        assert event_engine.state_digest is not None
        assert fixed_engine.state_digest is not None
        assert event_engine.state_digest.events > 0
        assert (
            event_engine.state_digest.hexdigest()
            == fixed_engine.state_digest.hexdigest()
        )


class TestCrossCheck:
    def test_execute_request_cross_checks_cleanly(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        summary = execute_request(tiny_request())
        assert summary.target_time is not None

    def test_sanitized_summary_matches_unsanitized(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        plain = execute_request(tiny_request())
        monkeypatch.setenv(ENV_FLAG, "1")
        checked = execute_request(tiny_request())
        assert checked == plain

    def test_divergent_digests_raise(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        request = tiny_request()
        _result, engine, _, _ = request_module._simulate(request, "event")

        class ShadowEngine:
            state_digest = StateDigest()

        ShadowEngine.state_digest.fold("tampered", 1)

        def fake_simulate(req, stepping):
            assert stepping == "fixed"
            return None, ShadowEngine(), None, None

        monkeypatch.setattr(request_module, "_simulate", fake_simulate)
        with pytest.raises(DeterminismError, match="diverged"):
            request_module._sanitize_cross_check(request, engine)

    def test_cross_check_is_a_no_op_without_digest(self):
        class InactiveEngine:
            state_digest = None

        request_module._sanitize_cross_check(
            tiny_request(), InactiveEngine()
        )
