"""IR dependence analysis: collision solver, loop reports, verdicts."""

from __future__ import annotations

import pytest

from repro.analysis.deps import (
    Confidence,
    DependenceKind,
    ParallelSafety,
    Provenance,
    affine_collision,
    analyze_dependences,
    analyze_loop,
    safety_verdicts,
)
from repro.compiler.builder import IRBuilder
from repro.compiler.ir import AccessPattern, IRValidationError


def build_loop(body, trip_count=8, reduction=False,
               access=AccessPattern.REGULAR):
    """One-function one-loop module; returns (module, loop report)."""
    b = IRBuilder("m")
    with b.function("f"):
        with b.parallel_loop("L", trip_count=trip_count, access=access,
                             reduction=reduction):
            body(b)
    module = b.build(validate=False)
    function = module.functions[0]
    return module, analyze_loop(function, function.loops[0])


def brute_force_collision(a1, b1, a2, b2, trip_count):
    for i1 in range(trip_count):
        for i2 in range(trip_count):
            if i1 != i2 and a1 * i1 + b1 == a2 * i2 + b2:
                return True
    return False


class TestAffineCollision:
    def test_matches_brute_force_exhaustively(self):
        coeffs = range(-3, 4)
        offsets = range(-4, 5)
        for trip in (1, 2, 5, 8):
            for a1 in coeffs:
                for b1 in offsets:
                    for a2 in coeffs:
                        for b2 in offsets:
                            got = affine_collision(a1, b1, a2, b2, trip)
                            expect = brute_force_collision(
                                a1, b1, a2, b2, trip
                            )
                            assert (got is not None) == expect, (
                                (a1, b1, a2, b2, trip, got)
                            )
                            if got is not None:
                                i1, i2 = got
                                assert 0 <= i1 < trip
                                assert 0 <= i2 < trip
                                assert i1 != i2
                                assert a1 * i1 + b1 == a2 * i2 + b2

    def test_scalar_pair_collides_at_first_two_iterations(self):
        assert affine_collision(0, 3, 0, 3, 8) == (0, 1)
        assert affine_collision(0, 3, 0, 4, 8) is None

    def test_single_iteration_loop_cannot_cross(self):
        assert affine_collision(0, 0, 0, 0, 1) is None
        assert affine_collision(1, 0, 1, 0, 1) is None

    def test_identical_streams_never_cross(self):
        # A[i] vs A[i]: same element only at the same iteration.
        assert affine_collision(1, 0, 1, 0, 1024) is None

    def test_shifted_streams_cross_at_the_shift(self):
        assert affine_collision(1, 0, 1, 1, 1024) is not None

    def test_gcd_excludes_parity_disjoint_streams(self):
        # 2*i vs 2*i+1: even vs odd elements, provably disjoint.
        assert affine_collision(2, 0, 2, 1, 1 << 20) is None

    def test_large_trip_counts_stay_exact(self):
        n = 1 << 30
        got = affine_collision(3, 1, 5, 2, n)
        assert got is not None
        i1, i2 = got
        assert 3 * i1 + 1 == 5 * i2 + 2 and i1 != i2


class TestLoopReports:
    def test_owner_computes_loop_is_safe(self):
        _, report = build_loop(
            lambda b: (b.load("A[i]"), b.fadd(), b.store("B[i]"))
        )
        assert report.dependences == []
        assert report.verdict is ParallelSafety.SAFE

    def test_distinct_bases_do_not_alias(self):
        _, report = build_loop(
            lambda b: (b.load("A[i+1]"), b.store("B[i]"))
        )
        assert report.dependences == []
        assert report.verdict is ParallelSafety.SAFE

    def test_loop_carried_reduction_is_safe(self):
        # Declared-and-realized reduction: the scalar accumulator store
        # is region-protected by the reduce combine.
        def body(b):
            b.load("x[i]")
            b.fadd()
            b.store("acc")
            b.reduce()

        _, report = build_loop(body, reduction=True)
        assert report.verdict is ParallelSafety.SAFE
        assert len(report.dependences) == 1
        (dep,) = report.dependences
        assert dep.kind is DependenceKind.OUTPUT
        assert dep.protected
        assert report.unprotected == []

    def test_undeclared_reduction_is_racy(self):
        # The same accumulator without the reduction clause is the
        # canonical confirmed race: witness iterations 0 and 1.
        def body(b):
            b.load("x[i]")
            b.fadd()
            b.store("acc")

        _, report = build_loop(body)
        assert report.verdict is ParallelSafety.RACY
        (dep,) = report.dependences
        assert dep.confidence is Confidence.CONFIRMED
        assert dep.witness == (0, 1)
        assert dep.distance is None
        assert not dep.protected

    def test_anti_dependence_with_constant_distance_is_ordered(self):
        # read A[i+1] / write A[i]: iteration k reads what iteration
        # k+1 overwrites — anti-dependence, distance 1.
        _, report = build_loop(
            lambda b: (b.load("A[i+1]"), b.store("A[i]"))
        )
        (dep,) = report.dependences
        assert dep.kind is DependenceKind.ANTI
        assert dep.confidence is Confidence.CONFIRMED
        assert dep.distance == 1
        assert dep.witness == (0, 1)
        assert not dep.src.is_write and dep.dst.is_write
        assert report.verdict is ParallelSafety.ORDERED

    def test_reversed_subscripts_are_a_confirmed_race(self):
        # read A[i] / write A[n-1-i]: the traversal directions cross,
        # so the dependence distance varies per pair — no schedule
        # ordering repairs it.
        _, report = build_loop(
            lambda b: (b.load("A[i]"), b.store("A[n-1-i]"))
        )
        (dep,) = report.dependences
        assert dep.confidence is Confidence.CONFIRMED
        assert dep.distance is None
        assert dep.witness is not None
        i1, i2 = dep.witness
        assert i1 < i2
        # The witness pair really touches the same element.
        assert (7 - i1 == i2) or (i1 == 7 - i2)
        assert report.verdict is ParallelSafety.RACY

    def test_strided_self_overlap_is_a_confirmed_race(self):
        # write A[2*i] vs write A[i]: iterations 1 and 2 both write
        # element 2 with no constant distance.
        _, report = build_loop(
            lambda b: (b.store("A[2*i]"), b.store("A[i]"))
        )
        (dep,) = report.dependences
        assert dep.kind is DependenceKind.OUTPUT
        assert dep.confidence is Confidence.CONFIRMED
        assert dep.distance is None
        assert dep.witness is not None
        assert report.verdict is ParallelSafety.RACY

    def test_gep_alias_resolves_to_the_shared_array(self):
        # %p = gep A makes a store through %p a store to A: the
        # dependence against the direct A[i+1] read is found through
        # the alias.
        def body(b):
            pointer = b.gep("A")
            b.store(f"{pointer.result}[i]")
            b.load("A[i+1]")

        _, report = build_loop(body)
        (dep,) = report.dependences
        assert dep.base == "A"
        assert dep.kind is DependenceKind.ANTI
        assert dep.confidence is Confidence.CONFIRMED
        assert dep.distance == 1
        assert report.verdict is ParallelSafety.ORDERED

    def test_gep_to_distinct_arrays_does_not_alias(self):
        def body(b):
            pointer = b.gep("B")
            b.store(f"{pointer.result}[i]")
            b.load("A[i]")

        _, report = build_loop(body)
        assert report.dependences == []
        assert report.verdict is ParallelSafety.SAFE

    def test_undefined_register_is_thread_private(self):
        # The builder convention: %mem with no reaching definition is a
        # private scratch handle, never a shared location.
        _, report = build_loop(lambda b: (b.load(), b.store()))
        assert report.dependences == []
        assert report.verdict is ParallelSafety.SAFE

    def test_load_defined_pointer_may_alias_anything(self):
        # A pointer loaded from memory has unknown provenance: the
        # store through it gets a POSSIBLE dependence against A.
        def body(b):
            pointer = b.load("table[i]")
            b.store(f"{pointer.result}[i]")
            b.load("A[i]")

        _, report = build_loop(body)
        assert report.verdict is ParallelSafety.RACY
        possible = [
            d for d in report.dependences
            if d.confidence is Confidence.POSSIBLE
        ]
        assert possible
        assert any(
            Provenance.UNKNOWN in (d.src.provenance, d.dst.provenance)
            for d in possible
        )

    def test_opaque_subscript_is_possible_not_confirmed(self):
        _, report = build_loop(
            lambda b: (b.load("A[idx[i]]"), b.store("A[i]")),
            access=AccessPattern.IRREGULAR,
        )
        (dep,) = report.dependences
        assert dep.confidence is Confidence.POSSIBLE
        assert dep.witness is None
        assert report.verdict is ParallelSafety.RACY

    def test_atomic_protection_suppresses_the_race(self):
        def body(b):
            b.load("x[i]")
            b.atomic()
            b.store("acc")

        _, report = build_loop(body)
        assert report.verdict is ParallelSafety.SAFE
        assert report.unprotected == []


class TestModuleReports:
    def racy_module(self):
        b = IRBuilder("racy")
        with b.function("main"):
            with b.parallel_loop("histogram", trip_count=64,
                                 access=AccessPattern.IRREGULAR):
                b.load("w[i]")
                b.fadd()
                b.store("hist[idx[i]]")
        return b.build(validate=False)

    def crossing_module(self):
        b = IRBuilder("crossing")
        with b.function("main"):
            with b.parallel_loop("reverse_copy", trip_count=32):
                b.load("A[i]")
                b.store("A[n-1-i]")
        return b.build(validate=False)

    def test_module_verdict_is_worst_loop(self):
        report = analyze_dependences(self.crossing_module())
        assert report.verdict is ParallelSafety.RACY
        assert safety_verdicts(self.crossing_module()) == {
            "reverse_copy": ParallelSafety.RACY
        }

    def test_confirmed_races_carry_witnesses(self):
        report = analyze_dependences(self.crossing_module())
        races = report.confirmed_races()
        assert races
        for dep in races:
            assert dep.witness is not None
            assert dep.distance is None

    def test_possible_races_for_opaque_scatter(self):
        report = analyze_dependences(self.racy_module())
        assert report.verdict is ParallelSafety.RACY
        assert report.possible_races()
        assert report.confirmed_races() == []

    def test_validate_check_races_rejects_racy_modules(self):
        module = self.crossing_module()
        module.validate()  # structural checks alone pass
        with pytest.raises(IRValidationError) as excinfo:
            module.validate(check_races=True)
        message = str(excinfo.value)
        assert "reverse_copy" in message
        assert "RACY" in message
        assert "witness" in message

    def test_validate_check_races_accepts_ordered_loops(self):
        b = IRBuilder("ordered")
        with b.function("main"):
            with b.parallel_loop("shift", trip_count=32):
                b.load("A[i+1]")
                b.store("A[i]")
        module = b.build(validate=False)
        module.validate(check_races=True)  # ORDERED is legal IR

    def test_registry_modules_pass_check_races(self):
        from repro.programs.registry import all_programs

        for program in all_programs():
            program.module.validate(check_races=True)
