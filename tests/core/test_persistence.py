"""JSON expert persistence."""

import json

import numpy as np
import pytest

from repro.core.persistence import (
    DEFAULT_QUARANTINE_KEEP,
    FORMAT_VERSION,
    ChecksumError,
    bundle_from_dict,
    bundle_to_dict,
    dump_checked_json,
    expert_from_dict,
    expert_to_dict,
    load_bundle,
    load_checked_json,
    payload_checksum,
    prune_quarantine,
    resolve_quarantine_keep,
    save_bundle,
)
from tests.core.test_expert import make_samples
from repro.core.expert import train_expert


class TestExpertRoundTrip:
    def test_predictions_preserved(self):
        expert = train_expert("E-x", make_samples(), provenance="p")
        clone = expert_from_dict(expert_to_dict(expert))
        for sample in make_samples(n=10, seed=7):
            assert clone.predict_threads(
                sample.features, 32,
            ) == expert.predict_threads(sample.features, 32)
            assert clone.predict_env_norm(
                sample.features,
            ) == pytest.approx(expert.predict_env_norm(sample.features))

    def test_envelope_preserved(self):
        expert = train_expert("E-x", make_samples())
        clone = expert_from_dict(expert_to_dict(expert))
        assert np.allclose(clone.feature_low, expert.feature_low)
        assert np.allclose(clone.feature_high, expert.feature_high)

    def test_unbounded_expert(self):
        expert = train_expert("E-x", make_samples()).without_envelope()
        clone = expert_from_dict(expert_to_dict(expert))
        assert clone.feature_low is None


class TestBundleRoundTrip:
    def test_file_round_trip(self, tiny_bundle, tmp_path):
        path = save_bundle(tiny_bundle, tmp_path / "bundle.json")
        loaded = load_bundle(path)
        assert len(loaded.experts) == len(tiny_bundle.experts)
        assert loaded.config == tiny_bundle.config
        assert loaded.samples_per_expert == tiny_bundle.samples_per_expert
        for original, clone in zip(tiny_bundle.experts, loaded.experts):
            assert clone.name == original.name
            assert clone.provenance == original.provenance
            assert np.allclose(
                clone.thread_model.weights,
                original.thread_model.weights,
            )

    def test_scalability_preserved(self, tiny_bundle, tmp_path):
        path = save_bundle(tiny_bundle, tmp_path / "b.json")
        loaded = load_bundle(path)
        for record in loaded.scalability:
            original = tiny_bundle.scalability_of(
                record.program, record.platform,
            )
            assert record.speedup_at_p == pytest.approx(
                original.speedup_at_p,
            )

    def test_loaded_bundle_is_usable(self, tiny_bundle, tmp_path):
        from repro.core.policies import MixturePolicy
        from tests.core.test_policies import make_ctx

        loaded = load_bundle(save_bundle(tiny_bundle, tmp_path / "b.json"))
        policy = MixturePolicy(loaded.experts)
        assert 1 <= policy.select(make_ctx()) <= 32

    def test_json_is_human_readable(self, tiny_bundle, tmp_path):
        path = save_bundle(tiny_bundle, tmp_path / "b.json")
        data = json.loads(path.read_text())
        assert data["format_version"] == FORMAT_VERSION
        assert data["feature_names"][0] == "load_store_count"


class TestValidation:
    def test_bad_version_rejected(self, tiny_bundle):
        data = bundle_to_dict(tiny_bundle)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            bundle_from_dict(data)

    def test_feature_mismatch_rejected(self, tiny_bundle):
        data = bundle_to_dict(tiny_bundle)
        data["feature_names"] = ["other"]
        with pytest.raises(ValueError, match="feature vector"):
            bundle_from_dict(data)


class TestCheckedJson:
    def test_round_trip(self, tmp_path):
        payload = {"b": [1.0, 2.5], "a": {"nested": [0.1]}}
        path = tmp_path / "doc.json"
        dump_checked_json(payload, path)
        assert load_checked_json(path) == payload

    def test_numpy_values_serialise(self, tmp_path):
        payload = {"w": np.arange(3, dtype=float), "n": np.float64(0.5)}
        path = tmp_path / "doc.json"
        dump_checked_json(payload, path)
        assert load_checked_json(path) == {"w": [0.0, 1.0, 2.0], "n": 0.5}

    def test_checksum_is_representation_independent(self):
        # Same logical payload, different key order and container
        # types: the checksum must not care.
        assert payload_checksum({"a": 1, "b": [2.0]}) == payload_checksum(
            {"b": np.array([2.0]), "a": 1}
        )

    def test_tampering_detected(self, tmp_path):
        path = tmp_path / "doc.json"
        dump_checked_json({"value": 1.0}, path)
        doc = json.loads(path.read_text())
        doc["payload"]["value"] = 2.0
        path.write_text(json.dumps(doc))
        with pytest.raises(ChecksumError):
            load_checked_json(path)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "doc.json"
        dump_checked_json({"value": list(range(100))}, path)
        path.write_text(path.read_text()[:40])
        with pytest.raises(ChecksumError):
            load_checked_json(path)

    def test_missing_file_is_a_checksum_error(self, tmp_path):
        with pytest.raises(ChecksumError):
            load_checked_json(tmp_path / "never-written.json")


class TestQuarantineRetention:
    def fill(self, directory, count):
        directory.mkdir(parents=True, exist_ok=True)
        for i in range(count):
            (directory / f"corrupt-{i:04d}").write_text(str(i))

    def test_keeps_newest_k(self, tmp_path):
        self.fill(tmp_path, 12)
        removed = prune_quarantine(tmp_path, keep=5)
        assert removed == 7
        # mtimes tie within the test's resolution; the name order
        # tie-break keeps the highest-numbered (newest) files.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            f"corrupt-{i:04d}" for i in range(7, 12)
        ]

    def test_under_limit_is_untouched(self, tmp_path):
        self.fill(tmp_path, 3)
        assert prune_quarantine(tmp_path, keep=5) == 0
        assert len(list(tmp_path.iterdir())) == 3

    def test_missing_directory_is_a_noop(self, tmp_path):
        assert prune_quarantine(tmp_path / "absent") == 0

    def test_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUARANTINE_KEEP", raising=False)
        assert resolve_quarantine_keep() == DEFAULT_QUARANTINE_KEEP
        monkeypatch.setenv("REPRO_QUARANTINE_KEEP", "3")
        assert resolve_quarantine_keep() == 3
        # An explicit argument wins over the environment.
        assert resolve_quarantine_keep(11) == 11

    def test_bad_env_value_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUARANTINE_KEEP", "not-a-number")
        with pytest.warns(UserWarning, match="REPRO_QUARANTINE_KEEP"):
            assert resolve_quarantine_keep() == DEFAULT_QUARANTINE_KEEP

    def test_env_drives_pruning(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUARANTINE_KEEP", "2")
        self.fill(tmp_path, 6)
        assert prune_quarantine(tmp_path) == 4
        assert len(list(tmp_path.iterdir())) == 2


class TestMoveAside:
    def test_moves_files_and_directories_with_labels(self, tmp_path):
        from repro.core.persistence import move_aside

        victim = tmp_path / "stream-abc"
        victim.mkdir()
        (victim / "journal.jsonl").write_text("{}\n")
        quarantine = tmp_path / "quarantine"
        moved = move_aside(victim, quarantine, "superseded")
        assert moved == quarantine / "stream-abc.superseded"
        assert not victim.exists()
        assert (moved / "journal.jsonl").read_text() == "{}\n"

    def test_collisions_get_serial_suffixes(self, tmp_path):
        from repro.core.persistence import move_aside

        quarantine = tmp_path / "quarantine"
        targets = []
        for _ in range(3):
            victim = tmp_path / "torn"
            victim.write_text("x")
            targets.append(move_aside(victim, quarantine, "stage"))
        assert [t.name for t in targets] == [
            "torn.stage", "torn.stage.1", "torn.stage.2"
        ]

    def test_missing_source_is_a_noop(self, tmp_path):
        from repro.core.persistence import move_aside

        assert move_aside(tmp_path / "absent",
                          tmp_path / "quarantine") is None
        assert not (tmp_path / "quarantine").exists()
