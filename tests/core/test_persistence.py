"""JSON expert persistence."""

import json

import numpy as np
import pytest

from repro.core.persistence import (
    FORMAT_VERSION,
    bundle_from_dict,
    bundle_to_dict,
    expert_from_dict,
    expert_to_dict,
    load_bundle,
    save_bundle,
)
from tests.core.test_expert import make_samples
from repro.core.expert import train_expert


class TestExpertRoundTrip:
    def test_predictions_preserved(self):
        expert = train_expert("E-x", make_samples(), provenance="p")
        clone = expert_from_dict(expert_to_dict(expert))
        for sample in make_samples(n=10, seed=7):
            assert clone.predict_threads(
                sample.features, 32,
            ) == expert.predict_threads(sample.features, 32)
            assert clone.predict_env_norm(
                sample.features,
            ) == pytest.approx(expert.predict_env_norm(sample.features))

    def test_envelope_preserved(self):
        expert = train_expert("E-x", make_samples())
        clone = expert_from_dict(expert_to_dict(expert))
        assert np.allclose(clone.feature_low, expert.feature_low)
        assert np.allclose(clone.feature_high, expert.feature_high)

    def test_unbounded_expert(self):
        expert = train_expert("E-x", make_samples()).without_envelope()
        clone = expert_from_dict(expert_to_dict(expert))
        assert clone.feature_low is None


class TestBundleRoundTrip:
    def test_file_round_trip(self, tiny_bundle, tmp_path):
        path = save_bundle(tiny_bundle, tmp_path / "bundle.json")
        loaded = load_bundle(path)
        assert len(loaded.experts) == len(tiny_bundle.experts)
        assert loaded.config == tiny_bundle.config
        assert loaded.samples_per_expert == tiny_bundle.samples_per_expert
        for original, clone in zip(tiny_bundle.experts, loaded.experts):
            assert clone.name == original.name
            assert clone.provenance == original.provenance
            assert np.allclose(
                clone.thread_model.weights,
                original.thread_model.weights,
            )

    def test_scalability_preserved(self, tiny_bundle, tmp_path):
        path = save_bundle(tiny_bundle, tmp_path / "b.json")
        loaded = load_bundle(path)
        for record in loaded.scalability:
            original = tiny_bundle.scalability_of(
                record.program, record.platform,
            )
            assert record.speedup_at_p == pytest.approx(
                original.speedup_at_p,
            )

    def test_loaded_bundle_is_usable(self, tiny_bundle, tmp_path):
        from repro.core.policies import MixturePolicy
        from tests.core.test_policies import make_ctx

        loaded = load_bundle(save_bundle(tiny_bundle, tmp_path / "b.json"))
        policy = MixturePolicy(loaded.experts)
        assert 1 <= policy.select(make_ctx()) <= 32

    def test_json_is_human_readable(self, tiny_bundle, tmp_path):
        path = save_bundle(tiny_bundle, tmp_path / "b.json")
        data = json.loads(path.read_text())
        assert data["format_version"] == FORMAT_VERSION
        assert data["feature_names"][0] == "load_store_count"


class TestValidation:
    def test_bad_version_rejected(self, tiny_bundle):
        data = bundle_to_dict(tiny_bundle)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            bundle_from_dict(data)

    def test_feature_mismatch_rejected(self, tiny_bundle):
        data = bundle_to_dict(tiny_bundle)
        data["feature_names"] = ["other"]
        with pytest.raises(ValueError, match="feature vector"):
            bundle_from_dict(data)
