"""Canonical feature vector assembly."""

import numpy as np
import pytest

from repro.compiler.features import CodeFeatures
from repro.core.features import (
    ENV_OFFSET,
    FEATURE_NAMES,
    FeatureSample,
    NUM_FEATURES,
    env_norm_of,
    env_part,
    make_feature_vector,
)
from repro.sched.stats import EnvironmentSample, environment_norm


def sample_env():
    return EnvironmentSample(
        time=0.0, workload_threads=4, processors=8, runq_sz=16,
        ldavg_1=4.76, ldavg_5=2.17, cached_memory=1.11,
        pages_free_rate=1.65,
    )


class TestVector:
    def test_dimension_is_ten(self):
        assert NUM_FEATURES == 10
        assert len(FEATURE_NAMES) == 10
        assert ENV_OFFSET == 3

    def test_table_1_order(self):
        assert FEATURE_NAMES == (
            "load_store_count", "instructions", "branches",
            "workload_threads", "processors", "runq_sz",
            "ldavg_1", "ldavg_5", "cached_memory", "pages_free_rate",
        )

    def test_assembly_matches_section_5_4_example(self):
        """The Section 5.4 example vector f_1."""
        code = CodeFeatures(0.032, 0.026, 0.2)
        vec = make_feature_vector(code, sample_env())
        assert vec.tolist() == pytest.approx(
            [0.032, 0.026, 0.2, 4, 8, 16, 4.76, 2.17, 1.11, 1.65]
        )

    def test_env_part(self):
        code = CodeFeatures(0.1, 0.2, 0.3)
        vec = make_feature_vector(code, sample_env())
        assert env_part(vec).tolist() == [4, 8, 16, 4.76, 2.17, 1.11, 1.65]

    def test_env_part_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            env_part(np.zeros(7))

    def test_env_norm_of(self):
        code = CodeFeatures(0.1, 0.2, 0.3)
        env = sample_env()
        vec = make_feature_vector(code, env)
        assert env_norm_of(vec) == pytest.approx(env.norm)

    def test_env_norm_matches_rms(self):
        env = sample_env()
        assert env.norm == pytest.approx(
            environment_norm(env.as_vector())
        )


class TestFeatureSample:
    def good(self, **overrides):
        kwargs = dict(
            features=np.arange(10, dtype=float),
            best_threads=8,
            speedup=2.0,
            next_env_norm=5.0,
        )
        kwargs.update(overrides)
        return FeatureSample(**kwargs)

    def test_valid(self):
        sample = self.good()
        assert sample.best_threads == 8

    def test_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            self.good(features=np.zeros(7))

    def test_bad_threads(self):
        with pytest.raises(ValueError):
            self.good(best_threads=0)

    def test_bad_speedup(self):
        with pytest.raises(ValueError):
            self.good(speedup=0.0)

    def test_bad_norm(self):
        with pytest.raises(ValueError):
            self.good(next_env_norm=-1.0)

    def test_metadata(self):
        sample = self.good()
        assert sample.program == ""
        assert sample.platform == ""
