"""Thread-selection policies (unit level)."""

import numpy as np
import pytest

from repro.compiler.features import CodeFeatures
from repro.core.policies import (
    AnalyticPolicy,
    DefaultPolicy,
    FixedPolicy,
    MixturePolicy,
    MonolithicPolicy,
    OfflinePolicy,
    OnlineHillClimbPolicy,
    RecordingPolicy,
    SingleExpertPolicy,
)
from repro.core.policies.base import PolicyContext, RegionReport
from repro.sched.stats import EnvironmentSample


def make_ctx(time=0.0, loop="loop", available=32, workload=8.0,
             max_threads=32):
    env = EnvironmentSample(
        time=time, workload_threads=workload, processors=available,
        runq_sz=workload, ldavg_1=workload, ldavg_5=workload,
        cached_memory=8.0, pages_free_rate=1.0,
    )
    return PolicyContext(
        time=time,
        loop_name=loop,
        code=CodeFeatures(0.1, 0.3, 0.05),
        env=env,
        available_processors=available,
        max_threads=max_threads,
    )


def report(time, loop="loop", threads=8, elapsed=1.0, work=8.0):
    return RegionReport(time=time, loop_name=loop, threads=threads,
                        elapsed=elapsed, work=work)


class TestPolicyContext:
    def test_feature_vector(self):
        vec = make_ctx().feature_vector()
        assert vec.shape == (10,)
        assert vec[4] == 32.0

    def test_clamp(self):
        ctx = make_ctx(max_threads=16)
        assert ctx.clamp(100) == 16
        assert ctx.clamp(-5) == 1
        assert ctx.clamp(7.6) == 8

    def test_snap_to_available(self):
        ctx = make_ctx(available=32)
        assert ctx.snap_to_available(29) == 32
        assert ctx.snap_to_available(8) == 8
        low = make_ctx(available=8)
        assert low.snap_to_available(7) == 8
        assert low.snap_to_available(20) == 20  # above is untouched


class TestDefaultPolicy:
    def test_matches_available(self):
        policy = DefaultPolicy()
        assert policy.select(make_ctx(available=20)) == 20
        assert policy.select(make_ctx(available=32)) == 32

    def test_clamped_to_max(self):
        assert DefaultPolicy().select(
            make_ctx(available=32, max_threads=16)
        ) == 16


class TestFixedPolicy:
    def test_fixed(self):
        assert FixedPolicy(6).select(make_ctx()) == 6

    def test_clamped(self):
        assert FixedPolicy(64).select(make_ctx(max_threads=32)) == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedPolicy(0)


class TestRecordingPolicy:
    def test_records_features_and_choice(self):
        recorder = RecordingPolicy(FixedPolicy(4))
        recorder.select(make_ctx(time=1.0))
        recorder.select(make_ctx(time=2.0))
        assert len(recorder.records) == 2
        assert recorder.records[0].threads == 4
        assert recorder.records[0].features.shape == (10,)

    def test_reset_keeps_records(self):
        recorder = RecordingPolicy(FixedPolicy(4))
        recorder.select(make_ctx())
        recorder.reset()
        assert len(recorder.records) == 1


class TestOnlineHillClimb:
    def test_starts_at_fraction(self):
        policy = OnlineHillClimbPolicy(start_fraction=0.5)
        assert policy.select(make_ctx(available=32)) == 16

    def test_climbs_on_improvement(self):
        policy = OnlineHillClimbPolicy(step=2)
        first = policy.select(make_ctx())
        policy.observe(report(1.0, threads=first, elapsed=1.0))
        second = policy.select(make_ctx(time=1.0))
        assert second == first + 2

    def test_reverses_on_regression(self):
        policy = OnlineHillClimbPolicy(step=2)
        n0 = policy.select(make_ctx())
        policy.observe(report(1.0, threads=n0, elapsed=1.0, work=8.0))
        n1 = policy.select(make_ctx(time=1.0))
        # Much slower now: direction should flip on the next move.
        policy.observe(report(2.0, threads=n1, elapsed=4.0, work=8.0))
        n2 = policy.select(make_ctx(time=2.0))
        assert n2 < n1

    def test_per_loop_state(self):
        policy = OnlineHillClimbPolicy()
        a = policy.select(make_ctx(loop="a"))
        policy.observe(report(1.0, loop="a", threads=a))
        again_a = policy.select(make_ctx(loop="a", time=1.0))
        b = policy.select(make_ctx(loop="b", time=1.0))
        assert again_a != a or b == a  # "b" starts fresh
        assert b == 16

    def test_stays_in_bounds(self):
        policy = OnlineHillClimbPolicy(step=8)
        n = policy.select(make_ctx())
        for t in range(1, 30):
            policy.observe(report(float(t), threads=n, elapsed=1.0))
            n = policy.select(make_ctx(time=float(t)))
            assert 1 <= n <= 32

    def test_reset(self):
        policy = OnlineHillClimbPolicy()
        policy.select(make_ctx())
        policy.reset()
        assert policy.select(make_ctx()) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineHillClimbPolicy(step=0)
        with pytest.raises(ValueError):
            OnlineHillClimbPolicy(start_fraction=0.0)
        with pytest.raises(ValueError):
            OnlineHillClimbPolicy(tolerance=-1.0)


class TestAnalyticPolicy:
    def test_explores_then_exploits(self):
        policy = AnalyticPolicy(explore_window=1.0, explore_period=50.0)
        probe_a = policy.select(make_ctx(time=0.0))
        # Feed it measurements during exploration.
        policy.observe(report(0.5, threads=probe_a, elapsed=1.0,
                              work=probe_a * 0.9))
        probe_b = policy.select(make_ctx(time=1.1))
        policy.observe(report(1.5, threads=probe_b, elapsed=1.0,
                              work=probe_b * 0.7))
        chosen = policy.select(make_ctx(time=2.3))
        assert 1 <= chosen <= 32

    def test_probes_differ(self):
        policy = AnalyticPolicy(explore_window=1.0)
        a = policy.select(make_ctx(time=0.0))
        b = policy.select(make_ctx(time=1.5))
        assert a != b

    def test_probes_bounded_below(self):
        policy = AnalyticPolicy(seed=3)
        for trial in range(20):
            policy.reset()
            probe = policy.select(make_ctx(time=0.0, available=32))
            assert probe >= 8  # P/4 lower bound

    def test_periodic_reexploration(self):
        policy = AnalyticPolicy(explore_window=0.5, explore_period=5.0)
        # Walk it into exploit.
        for t, n in ((0.0, None), (0.6, None), (1.2, None)):
            chosen = policy.select(make_ctx(time=t))
            policy.observe(report(t + 0.1, threads=chosen))
        exploit = policy.select(make_ctx(time=2.0))
        # After the period it probes again (may differ from exploit n).
        later = policy.select(make_ctx(time=30.0))
        assert 1 <= later <= 32

    def test_validation(self):
        with pytest.raises(ValueError):
            AnalyticPolicy(explore_window=0.0)
        with pytest.raises(ValueError):
            AnalyticPolicy(deviation=1.5)

    def test_reset(self):
        policy = AnalyticPolicy()
        policy.select(make_ctx(time=0.0))
        policy.reset()
        assert policy._phase_started is None


class TestModelPolicies:
    def test_single_expert_policy(self, tiny_bundle):
        expert = tiny_bundle.experts[0]
        policy = SingleExpertPolicy(expert)
        n = policy.select(make_ctx())
        assert 1 <= n <= 32
        assert policy.name == expert.name

    def test_offline_and_monolithic_names(self, tiny_mono):
        expert = tiny_mono.experts[0]
        assert OfflinePolicy(expert).name == "offline"
        assert MonolithicPolicy(expert).name == "monolithic"


class TestMixturePolicy:
    def test_decisions_logged(self, tiny_bundle):
        policy = MixturePolicy(tiny_bundle.experts)
        policy.select(make_ctx(time=0.0))
        policy.select(make_ctx(time=1.0))
        assert len(policy.decisions) == 2
        first = policy.decisions[0]
        assert first.observed_next_norm is not None  # scored by 2nd call
        assert policy.decisions[1].observed_next_norm is None
        assert len(first.predicted_norms) == len(tiny_bundle.experts)
        assert len(first.predicted_threads) == len(tiny_bundle.experts)

    def test_selection_counts(self, tiny_bundle):
        policy = MixturePolicy(tiny_bundle.experts)
        for t in range(10):
            policy.select(make_ctx(time=float(t)))
        counts = policy.selection_counts()
        assert sum(counts) == 10

    def test_accuracies_in_unit_interval(self, tiny_bundle):
        policy = MixturePolicy(tiny_bundle.experts)
        for t in range(20):
            policy.select(make_ctx(time=float(t),
                                   workload=8.0 + (t % 5)))
        for value in policy.env_prediction_accuracies():
            assert 0.0 <= value <= 1.0
        assert 0.0 <= policy.mixture_accuracy() <= 1.0

    def test_reset_clears_state(self, tiny_bundle):
        policy = MixturePolicy(tiny_bundle.experts)
        policy.select(make_ctx())
        policy.reset()
        assert policy.decisions == []

    def test_thread_choice_in_range(self, tiny_bundle):
        policy = MixturePolicy(tiny_bundle.experts)
        for workload in (0.0, 16.0, 64.0, 200.0):
            n = policy.select(make_ctx(workload=workload))
            assert 1 <= n <= 32

    def test_empty_experts_rejected(self):
        with pytest.raises(ValueError):
            MixturePolicy(())

    def test_negative_domain_weight_rejected(self, tiny_bundle):
        with pytest.raises(ValueError):
            MixturePolicy(tiny_bundle.experts, domain_weight=-1.0)

    def test_no_accuracy_without_decisions(self, tiny_bundle):
        policy = MixturePolicy(tiny_bundle.experts)
        assert policy.mixture_accuracy() == 0.0
        assert policy.env_prediction_accuracies() == (
            [0.0] * len(tiny_bundle.experts)
        )
