"""Information-gain feature selection and feature impact."""

import numpy as np
import pytest

from repro.compiler.builder import IRBuilder
from repro.compiler.features import extract_raw_loop_features
from repro.core.feature_selection import (
    CANDIDATE_POOL_SIZE,
    average_impact,
    build_candidate_pool,
    feature_impact,
    information_gain,
    rank_by_information_gain,
    select_features,
)
from repro.core.features import FEATURE_NAMES
from repro.machine.topology import XEON_L7555
from repro.sched.scheduler import JobDemand, ProportionalShareScheduler
from repro.sched.stats import SystemStatsSampler


def env_raw(threads=8):
    sched = ProportionalShareScheduler(XEON_L7555)
    sampler = SystemStatsSampler(XEON_L7555)
    demands = [JobDemand("a", threads)]
    allocation = sched.allocate(demands, 32)
    sampler.update(0.0, 0.1, demands, allocation)
    return sampler.sample("a").raw


def code_raw():
    b = IRBuilder("m")
    with b.function("f"):
        with b.parallel_loop("l", trip_count=10):
            b.load()
            b.fadd()
            b.cond_branch()
            b.store()
    module = b.build()
    return extract_raw_loop_features(module, module.function("f").loops[0])


class TestCandidatePool:
    def test_exactly_134_features(self):
        """Section 5.2.2: '134 features were collected'."""
        pool = build_candidate_pool(code_raw(), env_raw(), env_raw(4))
        assert len(pool) == CANDIDATE_POOL_SIZE == 134

    def test_contains_lags_and_interactions(self):
        pool = build_candidate_pool(code_raw(), env_raw(), env_raw(4))
        assert "env.runq_sz.lag1" in pool
        assert "code.instructions*env.ldavg_1" in pool

    def test_lag_values_come_from_previous(self):
        prev = env_raw(4)
        pool = build_candidate_pool(code_raw(), env_raw(16), prev)
        assert pool["env.workload_threads.lag1"] == prev[
            "env.workload_threads"
        ]


class TestInformationGain:
    def test_informative_feature_has_positive_gain(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=400)
        feature = labels * 10.0 + rng.normal(scale=0.1, size=400)
        assert information_gain(feature, labels) > 0.5

    def test_random_feature_has_low_gain(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, size=400)
        noise = rng.normal(size=400)
        assert information_gain(noise, labels) < 0.2

    def test_constant_feature_zero_gain(self):
        labels = np.array([0, 1] * 50)
        assert information_gain(np.ones(100), labels) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            information_gain(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            information_gain(np.zeros(0), np.zeros(0))


class TestRanking:
    def table(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(1, 5, size=300)
        return {
            "signal": labels * 2.0 + rng.normal(scale=0.05, size=300),
            "noise": rng.normal(size=300),
            "half": labels + rng.normal(scale=3.0, size=300),
        }, labels

    def test_rank_order(self):
        table, labels = self.table()
        ranked = rank_by_information_gain(table, labels)
        assert ranked[0].name == "signal"
        assert ranked[-1].name == "noise"

    def test_select_top_k(self):
        table, labels = self.table()
        assert select_features(table, labels, k=1) == ["signal"]
        assert len(select_features(table, labels, k=2)) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_by_information_gain({}, np.zeros(3))
        table, labels = self.table()
        with pytest.raises(ValueError):
            select_features(table, labels, k=0)


class TestFeatureImpact:
    def make_samples(self, n=80):
        from repro.core.features import FeatureSample

        rng = np.random.default_rng(3)
        samples = []
        for _ in range(n):
            features = rng.uniform(0.1, 1.0, size=10)
            features[4] = rng.integers(4, 33)  # processors drive labels
            best = int(max(1, features[4] // 2))
            samples.append(FeatureSample(
                features=features, best_threads=best, speedup=1.5,
                next_env_norm=3.0,
            ))
        return samples

    def test_sums_to_one(self):
        impact = feature_impact(self.make_samples())
        assert sum(impact.values()) == pytest.approx(1.0)

    def test_driving_feature_dominates(self):
        impact = feature_impact(self.make_samples())
        assert impact["processors"] == max(impact.values())

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            feature_impact(self.make_samples(n=5))

    def test_average_impact(self):
        impacts = [feature_impact(self.make_samples())] * 2
        averaged = average_impact(impacts)
        assert set(averaged) == set(FEATURE_NAMES)
        assert sum(averaged.values()) == pytest.approx(1.0)

    def test_average_impact_empty(self):
        with pytest.raises(ValueError):
            average_impact([])
