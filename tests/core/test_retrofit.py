"""Online retrofitting of environment predictors (Section 4.1)."""

import numpy as np
import pytest

from repro.core.features import NUM_FEATURES, env_norm_of
from repro.core.retrofit import RetrofitExpert
from tests.core.test_expert import make_samples


def fair_share(features, max_threads):
    return max(1, round(features[4] - features[3] / 2.0))


@pytest.fixture
def expert():
    return RetrofitExpert("E-hand", fair_share, refit_every=20)


class TestThreadRule:
    def test_rule_applied_and_clamped(self, expert):
        features = np.zeros(NUM_FEATURES)
        features[4] = 16  # processors
        features[3] = 8  # workload
        assert expert.predict_threads(features, 32) == 12
        assert expert.predict_threads(features, 4) == 4
        features[3] = 1000
        assert expert.predict_threads(features, 32) == 1


class TestPersistencePrior:
    def test_predicts_no_change_before_fit(self, expert):
        sample = make_samples(n=1)[0]
        assert not expert.fitted
        assert expert.predict_env_norm(sample.features) == pytest.approx(
            env_norm_of(sample.features)
        )

    def test_no_domain_penalty_before_fit(self, expert):
        assert expert.domain_distance(np.full(NUM_FEATURES, 1e9)) == 0.0


class TestOnlineLearning:
    def test_fits_after_enough_observations(self, expert):
        for sample in make_samples(n=40):
            expert.record_observation(
                sample.features, sample.next_env_norm,
            )
        assert expert.fitted
        assert expert.observations == 40

    def test_fitted_model_beats_persistence(self, expert):
        train = make_samples(n=200, seed=1)
        for sample in train:
            expert.record_observation(
                sample.features, sample.next_env_norm,
            )
        test = make_samples(n=40, seed=2)
        fitted_err = np.mean([
            expert.env_error(s.features, s.next_env_norm) for s in test
        ])
        persistence_err = np.mean([
            abs(env_norm_of(s.features) - s.next_env_norm)
            for s in test
        ])
        assert fitted_err < persistence_err

    def test_observation_window_bounded(self):
        expert = RetrofitExpert("E", fair_share, refit_every=10,
                                max_observations=30)
        for sample in make_samples(n=100):
            expert.record_observation(
                sample.features, sample.next_env_norm,
            )
        assert expert.observations == 30

    def test_observation_validation(self, expert):
        with pytest.raises(ValueError):
            expert.record_observation(np.zeros(3), 1.0)
        with pytest.raises(ValueError):
            expert.record_observation(np.zeros(NUM_FEATURES), -1.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            RetrofitExpert("E", fair_share, refit_every=1)
        with pytest.raises(ValueError):
            RetrofitExpert("E", fair_share, refit_every=10,
                           max_observations=5)

    def test_repr_reflects_state(self, expert):
        assert "persistence" in repr(expert)
        for sample in make_samples(n=20):
            expert.record_observation(
                sample.features, sample.next_env_norm,
            )
        assert "fitted" in repr(expert)


class TestMixtureIntegration:
    def test_mixture_feeds_observations(self, tiny_bundle):
        from repro.core.policies import MixturePolicy
        from tests.core.test_policies import make_ctx

        retrofit = RetrofitExpert("E-hand", fair_share, refit_every=5)
        policy = MixturePolicy(tiny_bundle.experts + (retrofit,))
        for t in range(12):
            policy.select(make_ctx(time=float(t), workload=8.0 + t))
        assert retrofit.observations == 11  # every scored decision
        assert retrofit.fitted

    def test_end_to_end_run(self, tiny_bundle):
        from repro.core.policies import MixturePolicy
        from repro.experiments.runner import run_target
        from repro.experiments.scenarios import SMALL_LOW
        from repro.workload.spec import workload_sets

        retrofit = RetrofitExpert("E-hand", fair_share, refit_every=10)
        policy = MixturePolicy(tiny_bundle.experts + (retrofit,))
        outcome = run_target(
            "cg", policy, SMALL_LOW,
            workload_set=workload_sets("small")[0],
            iterations_scale=0.08,
        )
        assert outcome.target_time > 0
        assert retrofit.observations > 10
