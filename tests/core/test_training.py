"""The offline training pipeline (miniature configuration)."""

import numpy as np
import pytest

from repro.core.training import (
    ScalabilityRecord,
    TrainingConfig,
    default_experts,
    partition_samples,
    pretrain_selector_state,
    scale_program,
    thread_candidates,
    training_dataset,
)
from repro.programs import registry


class TestThreadCandidates:
    def test_powers_of_two_plus_p(self):
        assert thread_candidates(32) == [1, 2, 4, 8, 16, 32]
        assert thread_candidates(12) == [1, 2, 4, 8, 12]
        assert thread_candidates(1) == [1]

    def test_validation(self):
        with pytest.raises(ValueError):
            thread_candidates(0)


class TestScaleProgram:
    def test_scales_iterations(self):
        lu = registry.get("lu")
        scaled = scale_program(lu, 0.5)
        assert scaled.iterations == round(lu.iterations * 0.5)

    def test_floor(self):
        lu = registry.get("lu")
        assert scale_program(lu, 0.001).iterations == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_program(registry.get("lu"), 0.0)


class TestScalabilityRecord:
    def test_criterion(self):
        """Scalable iff speedup >= P/4 (Section 5.1)."""
        assert ScalabilityRecord("x", "p", 8.0, 32).scalable
        assert not ScalabilityRecord("x", "p", 7.9, 32).scalable
        assert ScalabilityRecord("x", "p", 3.0, 12).scalable


class TestTrainingData:
    def test_samples_have_labels(self, tiny_config):
        samples, scalability = training_dataset(tiny_config)
        assert len(samples) > 50
        for sample in samples[:20]:
            assert sample.features.shape == (10,)
            assert sample.best_threads >= 1
            assert sample.speedup > 0
            assert sample.next_env_norm >= 0
            assert sample.program in tiny_config.target_names
            assert sample.platform in tiny_config.platform_names

    def test_scalability_covers_targets(self, tiny_config):
        _, scalability = training_dataset(tiny_config)
        pairs = {(r.program, r.platform) for r in scalability}
        expected = {
            (t, p)
            for t in tiny_config.target_names
            for p in tiny_config.platform_names
        }
        assert pairs == expected

    def test_labels_respond_to_processors(self, tiny_config):
        """ep's best thread count must grow with the processor level."""
        samples, _ = training_dataset(tiny_config)
        ep = [s for s in samples if s.program == "ep"]
        by_procs = {}
        for s in ep:
            by_procs.setdefault(s.features[4], []).append(s.best_threads)
        levels = sorted(by_procs)
        assert np.mean(by_procs[levels[-1]]) >= np.mean(
            by_procs[levels[0]]
        )

    def test_isolated_states_present(self, tiny_config):
        samples, _ = training_dataset(tiny_config)
        assert any(s.features[3] == 0.0 for s in samples)


class TestPartition:
    def test_granularity_one_pools_everything(self, tiny_config):
        samples, scalability = training_dataset(tiny_config)
        slices = partition_samples(samples, scalability, 1)
        assert list(slices) == ["E1"]
        assert len(slices["E1"]) == len(samples)

    def test_granularity_four_slices_by_platform_and_scaling(
        self, tiny_config,
    ):
        samples, scalability = training_dataset(tiny_config)
        slices = partition_samples(samples, scalability, 4)
        for key in slices:
            scal, platform = key.split("@")
            assert scal in ("scalable", "nonscalable")
            assert platform in tiny_config.platform_names

    def test_partition_preserves_samples(self, tiny_config):
        samples, scalability = training_dataset(tiny_config)
        slices = partition_samples(samples, scalability, 4)
        assert sum(len(v) for v in slices.values()) <= len(samples)

    def test_bad_granularity(self, tiny_config):
        samples, scalability = training_dataset(tiny_config)
        with pytest.raises(ValueError):
            partition_samples(samples, scalability, 3)


class TestBundles:
    def test_bundle_contents(self, tiny_bundle, tiny_config):
        assert len(tiny_bundle.experts) >= 2
        assert tiny_bundle.config == tiny_config
        for expert in tiny_bundle.experts:
            assert tiny_bundle.samples_per_expert[expert.name] >= 15

    def test_expert_lookup(self, tiny_bundle):
        first = tiny_bundle.experts[0]
        assert tiny_bundle.expert(first.name) is first
        with pytest.raises(KeyError):
            tiny_bundle.expert("E99")

    def test_scalability_lookup(self, tiny_bundle, tiny_config):
        record = tiny_bundle.scalability_of(
            "ep", tiny_config.platform_names[0]
        )
        assert record.program == "ep"
        with pytest.raises(KeyError):
            tiny_bundle.scalability_of("nope", "nowhere")

    def test_monolithic_single_expert(self, tiny_mono):
        assert len(tiny_mono.experts) == 1

    def test_in_process_cache(self, tiny_config, tiny_bundle):
        assert default_experts(tiny_config) is tiny_bundle

    def test_ep_is_scalable_everywhere(self, tiny_bundle, tiny_config):
        for platform in tiny_config.platform_names:
            assert tiny_bundle.scalability_of("ep", platform).scalable


class TestPretraining:
    def test_state_shape(self, tiny_bundle, tiny_config):
        samples, _ = training_dataset(tiny_config)
        state = pretrain_selector_state(tiny_bundle.experts, samples)
        assert state["V"].shape == (len(tiny_bundle.experts), 10)

    def test_deterministic(self, tiny_bundle, tiny_config):
        samples, _ = training_dataset(tiny_config)
        a = pretrain_selector_state(tiny_bundle.experts, samples)
        b = pretrain_selector_state(tiny_bundle.experts, samples)
        assert np.allclose(a["V"], b["V"])
        assert np.allclose(a["b"], b["b"])

    def test_validation(self, tiny_bundle):
        with pytest.raises(ValueError):
            pretrain_selector_state(tiny_bundle.experts, [])
        with pytest.raises(ValueError):
            pretrain_selector_state([], [1])
