"""Expert selectors."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.selector import (
    AccuracyEMASelector,
    FrozenEvenSelector,
    HyperplaneSelector,
    RandomSelector,
)

DIM = 10


def regime_point(rng, regime):
    """Two linearly-separable regimes along feature 4."""
    x = rng.normal(size=DIM)
    x[4] = 30.0 + rng.normal() if regime else 5.0 + rng.normal()
    return x


def errors_for(regime, num_experts=2):
    """Expert ``regime`` is accurate in its regime, others are not."""
    errors = [5.0] * num_experts
    errors[regime] = 1.0
    return errors


class TestHyperplaneSelector:
    def test_learns_separable_regimes(self):
        rng = np.random.default_rng(0)
        selector = HyperplaneSelector(num_experts=2, dim=DIM)
        for _ in range(300):
            regime = int(rng.integers(2))
            x = regime_point(rng, regime)
            selector.update(x, errors_for(regime))
        correct = 0
        for _ in range(100):
            regime = int(rng.integers(2))
            x = regime_point(rng, regime)
            if selector.select(x) == regime:
                correct += 1
        assert correct >= 85

    def test_initial_partition_even(self):
        selector = HyperplaneSelector(num_experts=4, dim=DIM)
        x = np.zeros(DIM)
        picks = [selector.select(x) for _ in range(8)]
        assert sorted(set(picks)) == [0, 1, 2, 3]

    def test_margin_suppresses_noise_updates(self):
        selector = HyperplaneSelector(num_experts=2, dim=DIM,
                                      margin=0.2)
        rng = np.random.default_rng(1)
        x = regime_point(rng, 0)
        selector.update(x, [1.0, 5.0])
        before = selector.hyperplanes.copy()
        # Near-tie: 4.9 vs 5.0 is inside the 20% margin.
        selector.update(x, [5.0, 4.9])
        assert np.allclose(selector.hyperplanes, before)

    def test_stats_track_mispredictions(self):
        selector = HyperplaneSelector(num_experts=2, dim=DIM)
        rng = np.random.default_rng(2)
        for _ in range(50):
            regime = int(rng.integers(2))
            selector.update(regime_point(rng, regime),
                            errors_for(regime))
        assert selector.stats.updates == 50
        assert 0.0 <= selector.stats.misprediction_rate <= 1.0

    def test_selection_counts(self):
        selector = HyperplaneSelector(num_experts=3, dim=DIM)
        for _ in range(6):
            selector.select(np.zeros(DIM))
        counts = selector.stats.selection_counts(3)
        assert sum(counts) == 6

    def test_reset_restores_even_partition(self):
        rng = np.random.default_rng(3)
        selector = HyperplaneSelector(num_experts=2, dim=DIM)
        for _ in range(100):
            selector.update(regime_point(rng, 1), errors_for(1))
        selector.reset()
        assert np.allclose(selector.hyperplanes, 0.0)

    def test_state_roundtrip(self):
        rng = np.random.default_rng(4)
        selector = HyperplaneSelector(num_experts=2, dim=DIM)
        for _ in range(200):
            regime = int(rng.integers(2))
            selector.update(regime_point(rng, regime),
                            errors_for(regime))
        state = selector.export_state()

        clone = HyperplaneSelector(num_experts=2, dim=DIM)
        clone.load_state(state)
        for _ in range(20):
            regime = int(rng.integers(2))
            x = regime_point(rng, regime)
            assert clone.select(x) == selector.select(x)

    def test_reset_returns_to_loaded_state(self):
        rng = np.random.default_rng(5)
        selector = HyperplaneSelector(num_experts=2, dim=DIM)
        for _ in range(200):
            regime = int(rng.integers(2))
            selector.update(regime_point(rng, regime),
                            errors_for(regime))
        state = selector.export_state()
        clone = HyperplaneSelector(num_experts=2, dim=DIM)
        clone.load_state(state)
        planes = clone.hyperplanes.copy()
        # Corrupt with adversarial updates, then reset.
        for _ in range(50):
            clone.update(regime_point(rng, 0), errors_for(1))
        clone.reset()
        assert np.allclose(clone.hyperplanes, planes)

    def test_load_state_shape_check(self):
        selector = HyperplaneSelector(num_experts=3, dim=DIM)
        other = HyperplaneSelector(num_experts=2, dim=DIM)
        with pytest.raises(ValueError):
            selector.load_state(other.export_state())

    def test_update_error_count_check(self):
        selector = HyperplaneSelector(num_experts=2, dim=DIM)
        with pytest.raises(ValueError):
            selector.update(np.zeros(DIM), [1.0, 2.0, 3.0])

    @pytest.mark.parametrize("kwargs", [
        dict(num_experts=0, dim=DIM),
        dict(num_experts=2, dim=0),
        dict(num_experts=2, dim=DIM, learning_rate=0.0),
        dict(num_experts=2, dim=DIM, margin=-0.1),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HyperplaneSelector(**kwargs)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_selection_always_in_range(self, num_experts):
        selector = HyperplaneSelector(num_experts=num_experts, dim=DIM)
        rng = np.random.default_rng(0)
        for _ in range(30):
            choice = selector.select(rng.normal(size=DIM))
            assert 0 <= choice < num_experts


class RecordingSink:
    """In-memory SelectorJournalSink."""

    def __init__(self):
        self.ops = []

    def record_update(self, features, errors):
        self.ops.append(("update", np.array(features), list(errors)))

    def record_select(self, features):
        self.ops.append(("select", np.array(features)))


class TestJournalHooks:
    def test_operations_are_mirrored_in_order(self):
        selector = HyperplaneSelector(num_experts=2, dim=DIM)
        sink = RecordingSink()
        selector.attach_journal(sink)
        rng = np.random.default_rng(0)
        x = regime_point(rng, 0)
        selector.select(x)
        selector.update(x, errors_for(0))
        assert [op[0] for op in sink.ops] == ["select", "update"]
        assert np.array_equal(sink.ops[1][1], x)
        assert sink.ops[1][2] == errors_for(0)

    def test_journaled_features_are_sanitized(self):
        # The journal records what the selector *consumed* — non-finite
        # entries already zeroed — so replay skips re-validation.
        selector = HyperplaneSelector(num_experts=2, dim=DIM)
        sink = RecordingSink()
        selector.attach_journal(sink)
        dirty = np.zeros(DIM)
        dirty[3] = float("nan")
        selector.update(dirty, [1.0, 2.0])
        (op,) = sink.ops
        assert np.isfinite(op[1]).all()

    def test_rejected_update_is_not_journaled(self):
        # Non-finite errors make update() a no-op; a no-op must leave
        # no journal trace or replay would diverge.
        selector = HyperplaneSelector(num_experts=2, dim=DIM)
        sink = RecordingSink()
        selector.attach_journal(sink)
        selector.update(np.zeros(DIM), [float("nan"), 1.0])
        assert sink.ops == []

    def test_detach_stops_mirroring(self):
        selector = HyperplaneSelector(num_experts=2, dim=DIM)
        sink = RecordingSink()
        selector.attach_journal(sink)
        selector.detach_journal()
        selector.select(np.zeros(DIM))
        assert sink.ops == []

    def test_frozen_selector_journals_updates_too(self):
        selector = FrozenEvenSelector(num_experts=2, dim=DIM)
        sink = RecordingSink()
        selector.attach_journal(sink)
        selector.update(np.zeros(DIM), [1.0, 2.0])
        assert [op[0] for op in sink.ops] == ["update"]

    @given(st.lists(
        st.tuples(
            st.booleans(),
            st.integers(min_value=0, max_value=2 ** 32 - 1),
        ),
        max_size=25,
    ))
    @settings(max_examples=25, deadline=None)
    def test_replaying_the_journal_rebuilds_identical_state(self, plan):
        """The crash-recovery contract at its core: original state ==
        fresh selector + journal replay, bitwise, for any op mix."""
        original = HyperplaneSelector(num_experts=3, dim=DIM)
        sink = RecordingSink()
        original.attach_journal(sink)
        for is_update, seed in plan:
            rng = np.random.default_rng(seed)
            features = rng.uniform(-5.0, 5.0, DIM)
            if is_update:
                original.update(features, list(rng.uniform(0.0, 9.0, 3)))
            else:
                original.select(features)

        replayed = HyperplaneSelector(num_experts=3, dim=DIM)
        for op in sink.ops:
            if op[0] == "update":
                replayed.update(op[1], op[2])
            else:
                replayed.select(op[1])

        original_state = original.export_state()
        for key, value in replayed.export_state().items():
            assert np.array_equal(original_state[key], value), key


class TestTieBreakerPersistence:
    def test_tie_breaker_round_trips(self):
        selector = HyperplaneSelector(num_experts=4, dim=DIM)
        # Three tied selections advance the round-robin phase.
        for _ in range(3):
            selector.select(np.zeros(DIM))
        clone = HyperplaneSelector(num_experts=4, dim=DIM)
        clone.load_state(selector.export_state())
        # Identical phase: the tied pick sequences stay in lockstep.
        for _ in range(6):
            assert clone.select(np.zeros(DIM)) == selector.select(
                np.zeros(DIM)
            )

    def test_legacy_state_defaults_to_fresh_phase(self):
        selector = HyperplaneSelector(num_experts=2, dim=DIM)
        state = selector.export_state()
        del state["tie_breaker"]
        clone = HyperplaneSelector(num_experts=2, dim=DIM)
        clone.load_state(state)
        assert clone.select(np.zeros(DIM)) == 0


class TestBestIndex:
    def test_untrained_ties_resolve_low(self):
        assert HyperplaneSelector(num_experts=3, dim=DIM).best_index() == 0

    def test_follows_accumulated_feedback(self):
        rng = np.random.default_rng(6)
        selector = HyperplaneSelector(num_experts=2, dim=DIM)
        # Expert 1 is consistently the accurate one.
        for _ in range(80):
            selector.update(rng.normal(size=DIM), [5.0, 1.0])
        assert selector.best_index() == 1

    def test_survives_state_round_trip(self):
        rng = np.random.default_rng(7)
        selector = HyperplaneSelector(num_experts=3, dim=DIM)
        for _ in range(120):
            regime = int(rng.integers(2))
            selector.update(regime_point(rng, regime),
                            errors_for(regime, num_experts=3))
        clone = HyperplaneSelector(num_experts=3, dim=DIM)
        clone.load_state(selector.export_state())
        assert clone.best_index() == selector.best_index()


class TestFrozenEvenSelector:
    def test_never_moves_hyperplanes(self):
        selector = FrozenEvenSelector(num_experts=2, dim=DIM)
        rng = np.random.default_rng(0)
        for _ in range(100):
            selector.update(regime_point(rng, 1), errors_for(1))
        assert np.allclose(selector.hyperplanes, 0.0)

    def test_still_counts_mispredictions(self):
        selector = FrozenEvenSelector(num_experts=2, dim=DIM)
        rng = np.random.default_rng(0)
        for _ in range(50):
            selector.update(regime_point(rng, 1), errors_for(1))
        assert selector.stats.updates == 50


class TestAccuracyEMASelector:
    def test_tracks_recently_accurate_expert(self):
        selector = AccuracyEMASelector(num_experts=2)
        for _ in range(20):
            selector.update(np.zeros(DIM), [5.0, 1.0])
        assert selector.select(np.zeros(DIM)) == 1

    def test_switches_on_regime_change(self):
        selector = AccuracyEMASelector(num_experts=2, decay=0.5)
        for _ in range(10):
            selector.update(np.zeros(DIM), [1.0, 5.0])
        assert selector.select(np.zeros(DIM)) == 0
        for _ in range(10):
            selector.update(np.zeros(DIM), [5.0, 1.0])
        assert selector.select(np.zeros(DIM)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AccuracyEMASelector(num_experts=2, decay=1.5)
        selector = AccuracyEMASelector(num_experts=2)
        with pytest.raises(ValueError):
            selector.update(np.zeros(DIM), [1.0])


class TestRandomSelector:
    def test_uniformish(self):
        selector = RandomSelector(num_experts=4, seed=1)
        picks = [selector.select(np.zeros(DIM)) for _ in range(400)]
        counts = [picks.count(k) for k in range(4)]
        assert min(counts) > 50

    def test_update_never_reports_misprediction(self):
        selector = RandomSelector(num_experts=2)
        assert selector.update(np.zeros(DIM), [1.0, 2.0]) is False

    def test_reset_reseeds(self):
        selector = RandomSelector(num_experts=4, seed=9)
        first = [selector.select(np.zeros(DIM)) for _ in range(10)]
        selector.reset()
        again = [selector.select(np.zeros(DIM)) for _ in range(10)]
        assert first == again
