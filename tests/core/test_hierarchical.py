"""Hierarchical mixture-of-experts gate."""

import numpy as np
import pytest

from repro.core.hierarchical import (
    HierarchicalSelector,
    build_hierarchical_selector,
    platform_groups,
)
from tests.core.test_selector import DIM, errors_for, regime_point


class TestStructure:
    def test_partition_validation(self):
        with pytest.raises(ValueError):
            HierarchicalSelector(groups=[], dim=DIM)
        with pytest.raises(ValueError):
            HierarchicalSelector(groups=[[0], []], dim=DIM)
        with pytest.raises(ValueError):
            HierarchicalSelector(groups=[[0, 1], [1]], dim=DIM)
        with pytest.raises(ValueError):
            HierarchicalSelector(groups=[[0, 2]], dim=DIM)

    def test_num_experts(self):
        selector = HierarchicalSelector(groups=[[0, 1], [2, 3]], dim=DIM)
        assert selector.num_experts == 4

    def test_error_count_check(self):
        selector = HierarchicalSelector(groups=[[0, 1], [2]], dim=DIM)
        with pytest.raises(ValueError):
            selector.update(np.zeros(DIM), [1.0, 2.0])


class TestLearning:
    def test_selection_in_range(self):
        selector = HierarchicalSelector(groups=[[0, 1], [2, 3]], dim=DIM)
        rng = np.random.default_rng(0)
        for _ in range(30):
            choice = selector.select(rng.normal(size=DIM))
            assert 0 <= choice < 4

    def test_learns_group_routing(self):
        """Regime 0 favours group 0's experts; regime 1 group 1's."""
        selector = HierarchicalSelector(groups=[[0, 1], [2, 3]], dim=DIM)
        rng = np.random.default_rng(1)
        for _ in range(400):
            regime = int(rng.integers(2))
            x = regime_point(rng, regime)
            best = 0 if regime == 0 else 2
            errors = [5.0] * 4
            errors[best] = 1.0
            selector.update(x, errors)
        correct = 0
        for _ in range(100):
            regime = int(rng.integers(2))
            x = regime_point(rng, regime)
            choice = selector.select(x)
            if choice in ((0, 1) if regime == 0 else (2, 3)):
                correct += 1
        assert correct >= 80

    def test_inner_gate_separates_within_group(self):
        selector = HierarchicalSelector(groups=[[0, 1]], dim=DIM)
        rng = np.random.default_rng(2)
        for _ in range(300):
            regime = int(rng.integers(2))
            x = regime_point(rng, regime)
            selector.update(x, errors_for(regime))
        correct = sum(
            1 for _ in range(100)
            if selector.select(
                regime_point(rng, r := int(rng.integers(2)))
            ) == r
        )
        assert correct >= 80

    def test_reset(self):
        selector = HierarchicalSelector(groups=[[0, 1], [2]], dim=DIM)
        rng = np.random.default_rng(3)
        for _ in range(50):
            selector.update(regime_point(rng, 1), [5.0, 5.0, 1.0])
        selector.reset()
        assert selector.stats.updates == 0


class TestBundleHelpers:
    def test_platform_groups(self, tiny_bundle):
        groups = platform_groups(tiny_bundle)
        flat = sorted(i for group in groups for i in group)
        assert flat == list(range(len(tiny_bundle.experts)))

    def test_build_and_use_with_mixture(self, tiny_bundle):
        from repro.core.features import NUM_FEATURES
        from repro.core.policies import MixturePolicy
        from tests.core.test_policies import make_ctx

        selector = build_hierarchical_selector(
            tiny_bundle, dim=NUM_FEATURES,
        )
        policy = MixturePolicy(tiny_bundle.experts, selector=selector)
        for t in range(10):
            n = policy.select(make_ctx(time=float(t)))
            assert 1 <= n <= 32
