"""Least-squares regression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.regression import (
    LinearModel,
    accuracy_within,
    fit_least_squares,
    leave_one_group_out,
    mean_absolute_error,
)


def linear_data(weights, intercept, n=50, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, len(weights)))
    y = X @ np.asarray(weights) + intercept
    if noise:
        y = y + rng.normal(scale=noise, size=n)
    return X, y


class TestLinearModel:
    def test_predict_one(self):
        model = LinearModel(weights=np.array([2.0, -1.0]), intercept=0.5)
        assert model.predict_one(np.array([1.0, 1.0])) == pytest.approx(1.5)

    def test_predict_matrix(self):
        model = LinearModel(weights=np.array([1.0]), intercept=0.0)
        out = model.predict(np.array([[1.0], [2.0]]))
        assert out.tolist() == [1.0, 2.0]

    def test_predict_one_shape_check(self):
        model = LinearModel(weights=np.array([1.0, 2.0]), intercept=0.0)
        with pytest.raises(ValueError):
            model.predict_one(np.zeros(3))

    def test_feature_names_length_check(self):
        with pytest.raises(ValueError):
            LinearModel(weights=np.array([1.0]), intercept=0.0,
                        feature_names=("a", "b"))

    def test_dim(self):
        assert LinearModel(np.zeros(4), 0.0).dim == 4


class TestFit:
    def test_exact_recovery(self):
        X, y = linear_data([3.0, -2.0, 0.5], intercept=1.0)
        model = fit_least_squares(X, y)
        assert model.weights == pytest.approx([3.0, -2.0, 0.5], abs=1e-6)
        assert model.intercept == pytest.approx(1.0, abs=1e-6)

    def test_standardized_recovery(self):
        X, y = linear_data([3.0, -2.0], intercept=1.0)
        model = fit_least_squares(X, y, standardize=True, ridge=1e-9)
        assert model.weights == pytest.approx([3.0, -2.0], abs=1e-5)
        assert model.intercept == pytest.approx(1.0, abs=1e-5)

    def test_ridge_shrinks(self):
        X, y = linear_data([5.0], intercept=0.0, n=20)
        loose = fit_least_squares(X, y, ridge=0.0)
        tight = fit_least_squares(X, y, ridge=100.0, standardize=True)
        assert abs(tight.weights[0]) < abs(loose.weights[0])

    def test_standardize_handles_constant_feature(self):
        X = np.ones((10, 2))
        X[:, 1] = np.arange(10)
        y = 2.0 * X[:, 1]
        model = fit_least_squares(X, y, standardize=True)
        assert model.predict_one(np.array([1.0, 5.0])) == pytest.approx(
            10.0, rel=1e-3,
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            fit_least_squares(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            fit_least_squares(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            fit_least_squares(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            fit_least_squares(np.zeros((5, 2)), np.zeros(5), ridge=-1.0)

    @given(
        weights=st.lists(st.floats(min_value=-5, max_value=5),
                         min_size=1, max_size=4),
        intercept=st.floats(min_value=-5, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_recovery(self, weights, intercept):
        X, y = linear_data(weights, intercept, n=40)
        model = fit_least_squares(X, y)
        predictions = model.predict(X)
        assert mean_absolute_error(predictions, y) < 1e-6


class TestLeaveOneGroupOut:
    def test_scores_per_group(self):
        X, y = linear_data([2.0], intercept=0.0, n=30)
        groups = ["a"] * 10 + ["b"] * 10 + ["c"] * 10
        scores = leave_one_group_out(
            X, y, groups, scorer=accuracy_within(0.5),
        )
        assert set(scores) == {"a", "b", "c"}
        assert all(0.0 <= v <= 1.0 for v in scores.values())

    def test_generalizes_on_clean_data(self):
        X, y = linear_data([1.5, -0.5], intercept=2.0, n=60)
        groups = (["a"] * 20) + (["b"] * 20) + (["c"] * 20)
        scores = leave_one_group_out(
            X, y, groups, scorer=accuracy_within(0.25),
        )
        assert min(scores.values()) > 0.9

    def test_needs_two_groups(self):
        X, y = linear_data([1.0], 0.0, n=10)
        with pytest.raises(ValueError):
            leave_one_group_out(X, y, ["a"] * 10,
                                scorer=accuracy_within(0.1))

    def test_group_length_check(self):
        X, y = linear_data([1.0], 0.0, n=10)
        with pytest.raises(ValueError):
            leave_one_group_out(X, y, ["a"] * 9,
                                scorer=accuracy_within(0.1))


class TestScorers:
    def test_accuracy_within(self):
        scorer = accuracy_within(0.1)
        predicted = np.array([1.0, 2.0, 10.0])
        actual = np.array([1.05, 2.0, 5.0])
        assert scorer(predicted, actual) == pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            accuracy_within(0.0)

    def test_mae(self):
        assert mean_absolute_error(
            np.array([1.0, 3.0]), np.array([2.0, 1.0])
        ) == pytest.approx(1.5)
