"""Bit-identity of the batch decision path vs the scalar reference.

The serving fleet evaluates micro-batches through ``select_batch`` /
``plan_batch``; every assertion here is exact (``==`` on floats, no
tolerances): the batch path hoists only elementwise work and keeps all
reductions per-row, so a single differing ulp is a bug, not noise.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.determinism import StateDigest
from repro.compiler.features import CodeFeatures
from repro.core.features import (
    NUM_FEATURES,
    sanitize_features,
    sanitize_features_batch,
)
from repro.core.hierarchical import HierarchicalSelector
from repro.core.policies import MixturePolicy
from repro.core.policies.base import PolicyContext
from repro.core.selector import SCALAR_BATCH_MAX, HyperplaneSelector
from repro.sched.stats import EnvironmentSample

BATCH = 32  # > SCALAR_BATCH_MAX so the vector path actually runs


def feature_rows(rng, count=BATCH, poison_every=0):
    rows = rng.normal(size=(count, NUM_FEATURES)) * 10.0
    if poison_every:
        for i in range(0, count, poison_every):
            rows[i, int(rng.integers(NUM_FEATURES))] = math.nan
    return rows


def make_ctx(time=0.0, workload=8.0, available=32, max_threads=32,
             code=None):
    env = EnvironmentSample(
        time=time, workload_threads=workload, processors=float(available),
        runq_sz=workload, ldavg_1=workload, ldavg_5=workload,
        cached_memory=8.0, pages_free_rate=1.0,
    )
    return PolicyContext(
        time=time,
        loop_name="loop",
        code=code or CodeFeatures(0.1, 0.3, 0.05),
        env=env,
        available_processors=available,
        max_threads=max_threads,
    )


def ctx_stream(count=BATCH):
    """A varied context stream with degenerate and NaN-norm entries."""
    ctxs = []
    for t in range(count):
        workload = 4.0 + 3.0 * (t % 7)
        code = CodeFeatures(0.1 + 0.01 * (t % 5), 0.3, 0.05)
        if t % 11 == 5:
            # NaN code feature: degenerate features, finite env norm.
            code = CodeFeatures(math.nan, 0.3, 0.05)
        if t % 13 == 7:
            # NaN env field: degenerate features AND NaN observation.
            workload = math.nan
        ctxs.append(make_ctx(
            time=float(t), workload=workload,
            available=16 if t % 3 else 32, code=code,
        ))
    return ctxs


class TestSanitizeBatch:
    def test_matches_scalar_rows(self):
        rng = np.random.default_rng(0)
        rows = feature_rows(rng, poison_every=5)
        clean, degenerate = sanitize_features_batch(rows)
        for i in range(len(rows)):
            ref, ref_degenerate = sanitize_features(rows[i])
            assert bool(degenerate[i]) == ref_degenerate
            assert np.array_equal(clean[i], ref)

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            sanitize_features_batch(np.zeros(NUM_FEATURES))


class TestExpertBatch:
    def test_predictions_bit_identical(self, tiny_bundle):
        rng = np.random.default_rng(1)
        rows = feature_rows(rng, poison_every=6)
        limits = rng.integers(2, 48, size=len(rows))
        for expert in tiny_bundle.experts:
            threads = expert.predict_threads_batch(rows, limits)
            norms = expert.predict_env_norm_batch(rows)
            distances = expert.domain_distance_batch(rows)
            for i, row in enumerate(rows):
                assert threads[i] == expert.predict_threads(
                    row, int(limits[i])
                )
                assert norms[i] == expert.predict_env_norm(row)
                # equal_nan: a poisoned row is NaN through both paths
                # (domain_distance never sanitizes — the mixture only
                # feeds it sanitized features).
                assert np.array_equal(
                    distances[i], expert.domain_distance(row),
                    equal_nan=True,
                )

    def test_without_envelope(self, tiny_bundle):
        expert = tiny_bundle.experts[0].without_envelope()
        rng = np.random.default_rng(2)
        rows = feature_rows(rng)
        assert np.array_equal(
            expert.domain_distance_batch(rows), np.zeros(len(rows))
        )
        norms = expert.predict_env_norm_batch(rows)
        for i, row in enumerate(rows):
            assert norms[i] == expert.predict_env_norm(row)

    def test_scalar_max_threads_broadcasts(self, tiny_bundle):
        expert = tiny_bundle.experts[0]
        rng = np.random.default_rng(3)
        rows = feature_rows(rng)
        threads = expert.predict_threads_batch(rows, 16)
        for i, row in enumerate(rows):
            assert threads[i] == expert.predict_threads(row, 16)


def trained_selector(factory, rng, steps=60):
    selector = factory()
    for _ in range(steps):
        errors = [float(v) for v in rng.uniform(0.5, 5.0,
                                                selector.num_experts)]
        selector.update(rng.normal(size=NUM_FEATURES) * 10.0, errors)
    return selector


class RecordingSink:
    def __init__(self):
        self.records = []

    def record_update(self, features, errors):
        self.records.append(
            ("update", [float(v) for v in features],
             [float(e) for e in errors])
        )

    def record_select(self, features):
        self.records.append(("select", [float(v) for v in features]))


class TestHyperplaneSelectBatch:
    def check_twins(self, factory, rows):
        rng_a, rng_b = (np.random.default_rng(4) for _ in range(2))
        batched = trained_selector(factory, rng_a)
        scalar = trained_selector(factory, rng_b)
        sink_batched, sink_scalar = RecordingSink(), RecordingSink()
        batched.attach_journal(sink_batched)
        scalar.attach_journal(sink_scalar)
        choices = batched.select_batch(rows)
        reference = [scalar.select(row) for row in rows]
        assert list(choices) == reference
        assert batched.stats.selections == scalar.stats.selections
        assert sink_batched.records == sink_scalar.records
        state_a, state_b = batched.export_state(), scalar.export_state()
        for key in state_a:
            assert np.array_equal(state_a[key], state_b[key]), key

    def test_trained_selector(self):
        rows = feature_rows(np.random.default_rng(5), poison_every=7)
        self.check_twins(
            lambda: HyperplaneSelector(num_experts=3, dim=NUM_FEATURES),
            rows,
        )

    def test_tie_breaker_advances_identically(self):
        # A fresh selector scores everything 0: every row is a tie, so
        # the round-robin phase must advance row by row exactly as the
        # scalar loop advances it.
        batched = HyperplaneSelector(num_experts=4, dim=NUM_FEATURES)
        scalar = HyperplaneSelector(num_experts=4, dim=NUM_FEATURES)
        rows = np.zeros((BATCH, NUM_FEATURES))
        choices = batched.select_batch(rows)
        reference = [scalar.select(row) for row in rows]
        assert list(choices) == reference
        assert batched._tie_breaker == scalar._tie_breaker

    def test_small_batch_uses_scalar_loop(self):
        selector = HyperplaneSelector(num_experts=2, dim=NUM_FEATURES)
        rows = np.zeros((SCALAR_BATCH_MAX, NUM_FEATURES))
        choices = selector.select_batch(rows)
        assert len(choices) == SCALAR_BATCH_MAX
        assert len(selector.stats.selections) == SCALAR_BATCH_MAX


class TestHierarchicalSelectBatch:
    def test_trained_gate(self):
        def factory():
            return HierarchicalSelector(
                groups=[[0, 1], [2, 3], [4]], dim=NUM_FEATURES
            )
        rng_a, rng_b = (np.random.default_rng(6) for _ in range(2))
        batched = trained_selector(factory, rng_a)
        scalar = trained_selector(factory, rng_b)
        rows = feature_rows(np.random.default_rng(7), poison_every=9)
        choices = batched.select_batch(rows)
        reference = [scalar.select(row) for row in rows]
        assert list(choices) == reference
        assert batched.stats.selections == scalar.stats.selections
        state_a, state_b = batched.export_state(), scalar.export_state()
        assert state_a["groups"] == state_b["groups"]
        for level_a, level_b in zip(
            [state_a["top"], *state_a["inner"]],
            [state_b["top"], *state_b["inner"]],
        ):
            for key in level_a:
                assert np.array_equal(level_a[key], level_b[key]), key

    def test_fresh_gate_round_robin(self):
        batched = HierarchicalSelector(groups=[[0, 1], [2]],
                                       dim=NUM_FEATURES)
        scalar = HierarchicalSelector(groups=[[0, 1], [2]],
                                      dim=NUM_FEATURES)
        rows = np.zeros((BATCH, NUM_FEATURES))
        assert list(batched.select_batch(rows)) == [
            scalar.select(row) for row in rows
        ]


def assert_same_decisions(policy_a, policy_b):
    assert len(policy_a.decisions) == len(policy_b.decisions)
    for left, right in zip(policy_a.decisions, policy_b.decisions):
        assert left == right  # dataclass ==: exact floats, exact ints


class TestMixtureSelectBatch:
    def test_bit_identical_to_scalar_loop(self, tiny_bundle):
        batched = MixturePolicy(tiny_bundle.experts)
        scalar = MixturePolicy(tiny_bundle.experts)
        ctxs = ctx_stream()
        threads = batched.select_batch(ctxs)
        reference = [scalar.select(ctx) for ctx in ctxs]
        assert threads == reference
        assert batched.fallback_count == scalar.fallback_count
        assert_same_decisions(batched, scalar)
        state_a = batched.export_online_state()
        state_b = scalar.export_online_state()
        for key in state_a["selector"]:
            assert np.array_equal(
                state_a["selector"][key], state_b["selector"][key]
            ), key
        assert state_a["pending_features"] == state_b["pending_features"]

    def test_carries_pending_across_batches(self, tiny_bundle):
        batched = MixturePolicy(tiny_bundle.experts)
        scalar = MixturePolicy(tiny_bundle.experts)
        ctxs = ctx_stream(3 * BATCH)
        threads = []
        for start in range(0, len(ctxs), BATCH):
            threads.extend(batched.select_batch(ctxs[start:start + BATCH]))
        reference = [scalar.select(ctx) for ctx in ctxs]
        assert threads == reference
        assert_same_decisions(batched, scalar)

    def test_scalar_pending_scored_by_planned_path(self, tiny_bundle):
        # A pending created by a scalar select (no cached domain
        # distances) must be scored identically by the batch path.
        batched = MixturePolicy(tiny_bundle.experts)
        scalar = MixturePolicy(tiny_bundle.experts)
        ctxs = ctx_stream()
        batched.select(ctxs[0])
        scalar.select(ctxs[0])
        assert batched.select_batch(ctxs[1:]) == [
            scalar.select(ctx) for ctx in ctxs[1:]
        ]
        assert_same_decisions(batched, scalar)

    def test_online_experts_fall_back_to_scalar(self, tiny_bundle):
        class OnlineExpert:
            name = "online"

            def __init__(self, inner):
                self.inner = inner
                self.observations = []

            def record_observation(self, features, norm):
                self.observations.append(norm)

            def __getattr__(self, attribute):
                return getattr(self.inner, attribute)

        experts = [OnlineExpert(e) for e in tiny_bundle.experts]
        policy = MixturePolicy(experts)
        assert policy.plan_batch(
            np.zeros((BATCH, NUM_FEATURES)), 32
        ) is None
        threads = policy.select_batch(ctx_stream(12))
        assert len(threads) == 12
        assert experts[0].observations  # scalar path fed the expert

    def test_digest_cross_check(self, tiny_bundle):
        # The REPRO_SANITIZE-style check: folding both decision streams
        # into a rolling digest must produce the same hex.
        digests = []
        for use_batch in (False, True):
            policy = MixturePolicy(tiny_bundle.experts)
            ctxs = ctx_stream(2 * BATCH)
            if use_batch:
                threads = policy.select_batch(ctxs)
            else:
                threads = [policy.select(ctx) for ctx in ctxs]
            digest = StateDigest()
            for index, decision in enumerate(policy.decisions):
                digest.fold("decision", {
                    "index": index,
                    "expert": decision.expert_index,
                    "threads": decision.threads,
                    "predicted_norms": list(decision.predicted_norms),
                    "observed": decision.observed_next_norm,
                })
            digest.fold("threads", list(threads))
            digest.fold("fallbacks", policy.fallback_count)
            digests.append(digest.hexdigest())
        assert digests[0] == digests[1]
