"""Experts: the (w, m) model pair."""

import numpy as np
import pytest

from repro.core.expert import Expert, train_expert
from repro.core.features import NUM_FEATURES, FeatureSample
from repro.core.regression import LinearModel


def make_samples(n=60, seed=0):
    """Synthetic samples with learnable structure: the best thread
    count follows the processors feature, the next environment norm
    follows the workload feature."""
    rng = np.random.default_rng(seed)
    samples = []
    for _ in range(n):
        features = np.zeros(NUM_FEATURES)
        features[0:3] = rng.uniform(0.0, 0.3, size=3)  # code
        features[3] = rng.uniform(0, 64)  # workload threads
        features[4] = rng.integers(4, 33)  # processors
        features[5] = features[3] + rng.uniform(0, 4)  # runq
        features[6] = features[3] * 0.9
        features[7] = features[3] * 0.8
        features[8] = rng.uniform(4, 20)
        features[9] = rng.uniform(0.3, 2.0)
        best = int(max(1, round(features[4] * 0.75)))
        norm = 0.4 * features[3] + 5.0
        samples.append(FeatureSample(
            features=features, best_threads=best, speedup=2.0,
            next_env_norm=norm, program="synthetic", platform="test",
        ))
    return samples


@pytest.fixture(scope="module")
def expert():
    return train_expert("E-test", make_samples(), provenance="synthetic")


class TestTrainExpert:
    def test_learns_thread_relationship(self, expert):
        features = make_samples(n=10, seed=99)
        errors = []
        for sample in features:
            predicted = expert.predict_threads(sample.features, 32)
            errors.append(abs(predicted - sample.best_threads))
        assert np.mean(errors) < 3.0

    def test_learns_env_relationship(self, expert):
        for sample in make_samples(n=10, seed=123):
            predicted = expert.predict_env_norm(sample.features)
            assert predicted == pytest.approx(
                sample.next_env_norm, rel=0.25,
            )

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="no training samples"):
            train_expert("E", [])

    def test_provenance_kept(self, expert):
        assert expert.provenance == "synthetic"

    def test_envelope_recorded(self, expert):
        assert expert.feature_low is not None
        assert np.all(expert.feature_low <= expert.feature_high)


class TestPredictionClamping:
    def test_thread_clamped_to_range(self, expert):
        features = make_samples(n=1)[0].features
        assert 1 <= expert.predict_threads(features, 32) <= 32
        assert expert.predict_threads(features, 2) <= 2

    def test_env_norm_non_negative(self, expert):
        crazy = np.full(NUM_FEATURES, -1e6)
        assert expert.predict_env_norm(crazy) >= 0.0


class TestEnvelope:
    def test_clipping_bounds_extrapolation(self, expert):
        inside = make_samples(n=1)[0].features
        outside = inside.copy()
        outside[3] = 10_000.0  # absurd workload count
        clipped = expert.predict_threads(outside, 32)
        edge = inside.copy()
        edge[3] = expert.feature_high[3]
        assert clipped == expert.predict_threads(edge, 32)

    def test_without_envelope_extrapolates(self, expert):
        raw = expert.without_envelope()
        assert raw.feature_low is None
        outside = make_samples(n=1)[0].features.copy()
        outside[3] = 1000.0
        # Unclipped prediction differs from the clipped one.
        assert (raw.predict_env_norm(outside)
                != expert.predict_env_norm(outside))

    def test_with_envelope_margin(self, expert):
        widened = expert.with_envelope_margin(0.5)
        width = expert.feature_high - expert.feature_low
        assert widened.feature_low == pytest.approx(
            expert.feature_low - 0.5 * width
        )
        assert widened.feature_high == pytest.approx(
            expert.feature_high + 0.5 * width
        )

    def test_with_envelope_margin_validation(self, expert):
        with pytest.raises(ValueError):
            expert.with_envelope_margin(-0.1)

    def test_margin_on_unbounded_expert_is_noop(self, expert):
        raw = expert.without_envelope()
        assert raw.with_envelope_margin(0.5) is raw


class TestDomainDistance:
    def test_zero_inside(self, expert):
        inside = make_samples(n=1)[0].features
        assert expert.domain_distance(inside) == 0.0

    def test_grows_with_displacement(self, expert):
        inside = make_samples(n=1)[0].features
        near = inside.copy()
        near[4] = expert.feature_high[4] + 1.0
        far = inside.copy()
        far[4] = expert.feature_high[4] + 100.0
        assert 0 < expert.domain_distance(near) < expert.domain_distance(far)

    def test_unbounded_expert_has_zero_distance(self, expert):
        raw = expert.without_envelope()
        anything = np.full(NUM_FEATURES, 1e9)
        assert raw.domain_distance(anything) == 0.0


class TestEnvError:
    def test_env_error(self, expert):
        sample = make_samples(n=1)[0]
        predicted = expert.predict_env_norm(sample.features)
        assert expert.env_error(sample.features, predicted) == 0.0
        assert expert.env_error(
            sample.features, predicted + 2.0
        ) == pytest.approx(2.0)


class TestValidation:
    def test_wrong_dimension_rejected(self):
        bad = LinearModel(weights=np.zeros(3), intercept=0.0)
        good = LinearModel(weights=np.zeros(NUM_FEATURES), intercept=0.0)
        with pytest.raises(ValueError, match="thread model"):
            Expert(name="x", thread_model=bad, env_model=good)
        with pytest.raises(ValueError, match="environment model"):
            Expert(name="x", thread_model=good, env_model=bad)

    def test_bad_envelope_shape(self):
        good = LinearModel(weights=np.zeros(NUM_FEATURES), intercept=0.0)
        with pytest.raises(ValueError, match="envelope"):
            Expert(name="x", thread_model=good, env_model=good,
                   feature_low=np.zeros(3), feature_high=np.zeros(3))
