"""Nonlinear (kernel-machine) experts."""

import numpy as np
import pytest

from repro.core.nonlinear import (
    NonlinearExpert,
    RBFFeatureMap,
    build_nonlinear_experts,
    fit_nonlinear,
    train_nonlinear_expert,
)
from tests.core.test_expert import make_samples


class TestRBFFeatureMap:
    def data(self):
        rng = np.random.default_rng(0)
        return rng.normal(size=(50, 4))

    def test_shape(self):
        fmap = RBFFeatureMap.fit(self.data(), num_features=32)
        lifted = fmap.transform(self.data())
        assert lifted.shape == (50, 32)

    def test_deterministic(self):
        X = self.data()
        a = RBFFeatureMap.fit(X, seed=3).transform(X)
        b = RBFFeatureMap.fit(X, seed=3).transform(X)
        assert np.allclose(a, b)

    def test_seed_changes_features(self):
        X = self.data()
        a = RBFFeatureMap.fit(X, seed=3).transform(X)
        b = RBFFeatureMap.fit(X, seed=4).transform(X)
        assert not np.allclose(a, b)

    def test_bounded(self):
        X = self.data()
        fmap = RBFFeatureMap.fit(X, num_features=64)
        lifted = fmap.transform(X * 100)
        bound = np.sqrt(2.0 / 64)
        assert np.all(np.abs(lifted) <= bound + 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            RBFFeatureMap.fit(np.zeros((1, 3)))
        with pytest.raises(ValueError):
            RBFFeatureMap.fit(np.zeros((5, 3)), num_features=0)
        with pytest.raises(ValueError):
            RBFFeatureMap.fit(np.zeros((5, 3)), gamma=0.0)


class TestFitNonlinear:
    def test_learns_nonlinear_function(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, size=(300, 2))
        y = np.sin(X[:, 0]) + X[:, 1] ** 2
        model = fit_nonlinear(X, y, num_features=300, gamma=1.0,
                              ridge=1e-3)
        predictions = model.predict(X)
        residual = np.mean((predictions - y) ** 2)
        assert residual < 0.05

    def test_beats_linear_on_curved_target(self):
        from repro.core.regression import fit_least_squares

        rng = np.random.default_rng(2)
        X = rng.uniform(-2, 2, size=(300, 2))
        y = X[:, 0] ** 2
        nonlinear = fit_nonlinear(X, y, num_features=200, ridge=1e-3)
        linear = fit_least_squares(X, y)
        nl_err = np.mean((nonlinear.predict(X) - y) ** 2)
        lin_err = np.mean((linear.predict(X) - y) ** 2)
        assert nl_err < lin_err / 5


class TestNonlinearExpert:
    @pytest.fixture(scope="class")
    def expert(self):
        return train_nonlinear_expert(
            "N-test", make_samples(), provenance="synthetic",
        )

    def test_predictions_in_range(self, expert):
        for sample in make_samples(n=10, seed=9):
            n = expert.predict_threads(sample.features, 32)
            assert 1 <= n <= 32
            assert expert.predict_env_norm(sample.features) >= 0.0

    def test_learns_env_relationship(self, expert):
        errors = [
            abs(expert.predict_env_norm(s.features) - s.next_env_norm)
            for s in make_samples(n=20, seed=11)
        ]
        assert np.mean(errors) < 5.0

    def test_domain_distance(self, expert):
        inside = make_samples(n=1)[0].features
        assert expert.domain_distance(inside) == 0.0
        outside = inside.copy()
        outside[4] = 1e6
        assert expert.domain_distance(outside) > 0.0

    def test_duck_type_compatible_with_mixture(self, expert):
        from repro.core.policies import MixturePolicy
        from tests.core.test_policies import make_ctx

        policy = MixturePolicy((expert, expert))
        n = policy.select(make_ctx())
        assert 1 <= n <= 32

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            train_nonlinear_expert("N", [])


class TestBuildNonlinearExperts:
    def test_same_slices_as_linear(self, tiny_config, tiny_bundle):
        experts = build_nonlinear_experts(tiny_config)
        assert len(experts) == len(tiny_bundle.experts)
        assert {e.provenance for e in experts} == {
            e.provenance for e in tiny_bundle.experts
        }

    def test_experts_predict(self, tiny_config):
        from tests.core.test_policies import make_ctx

        experts = build_nonlinear_experts(tiny_config)
        ctx = make_ctx()
        for expert in experts:
            assert 1 <= expert.predict_threads(
                ctx.feature_vector(), 32,
            ) <= 32
