"""Kill-resilience: grids survive crashing workers, corrupt caches,
and interruption, with bit-identical results.

Workers are force-crashed mid-run via ``REPRO_CHAOS_WORKER_CRASH_RATE``
(the worker hard-exits with ``os._exit`` before deserialising its
request — indistinguishable from a segfault or OOM kill from the
pool's perspective).  The acceptance bar: a >= 50-request grid
completes with correct request-ordered summaries equal to a clean
serial run.
"""

from __future__ import annotations

import pytest

from repro.exec import (
    Checkpoint,
    Executor,
    PolicySpec,
    RetryPolicy,
    RunCache,
    RunRequest,
)

SCALE = 0.02

#: High enough that a 52-request grid sees many crashes (P[none] ~ 1e-8),
#: low enough that no request plausibly exhausts its retry budget.
CRASH_RATE = "0.3"

RETRY = RetryPolicy(max_retries=40, base_delay=0.005, max_delay=0.05)


@pytest.fixture(autouse=True)
def _per_run_semantics(monkeypatch):
    """Crash injection fires in pool workers; in-process batching (an
    ambient ``REPRO_BATCH``, e.g. the CI batching leg) would absorb
    runs before they reach a worker and starve the chaos assertions."""
    monkeypatch.delenv("REPRO_BATCH", raising=False)


def grid_requests():
    """A 52-request grid: 2 targets x 2 policies x 13 seeds."""
    return [
        RunRequest(
            target=target, policy=PolicySpec.fixed(threads), seed=seed,
            iterations_scale=SCALE,
        )
        for target in ("cg", "ep")
        for threads in (8, 16)
        for seed in range(13)
    ]


@pytest.fixture(scope="module")
def baseline():
    """Clean serial results for the grid (no chaos, no cache)."""
    return Executor(jobs=1, cache=None, checkpoint=None).run(
        grid_requests()
    )


class TestKillResilience:
    def test_grid_survives_crashing_workers(self, baseline, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_WORKER_CRASH_RATE", CRASH_RATE)
        executor = Executor(
            jobs=4, cache=None, checkpoint=None, retry=RETRY,
            max_pool_rebuilds=10_000,
        )
        requests = grid_requests()
        summaries = executor.run(requests)

        # Request-ordered, bit-identical to the clean serial run.
        assert summaries == baseline
        assert [s.target for s in summaries] == [
            r.target for r in requests
        ]

        report = executor.last_report
        assert report.pool_rebuilds >= 1
        assert report.retried
        assert not report.failures
        assert report.executed == len(requests)
        # Every recorded crash was followed by a successful attempt.
        for request_report in report.requests:
            assert request_report.attempts[-1].ok

    def test_corrupt_cache_entry_is_quarantined_and_recomputed(
        self, baseline, tmp_path, monkeypatch
    ):
        cache = RunCache(root=tmp_path / "runs")
        requests = grid_requests()
        # Pre-populate two entries, then corrupt one of them the way a
        # mid-write crash would: truncated garbage on disk.
        for index in (0, 1):
            fingerprint = requests[index].fingerprint()
            cache.put(fingerprint, baseline[index])
        corrupt_path = cache.path(requests[0].fingerprint())
        corrupt_path.write_bytes(b"\x80truncated-by-a-crash")

        monkeypatch.setenv("REPRO_CHAOS_WORKER_CRASH_RATE", CRASH_RATE)
        executor = Executor(
            jobs=4, cache=cache, checkpoint=None, retry=RETRY,
            max_pool_rebuilds=10_000,
        )
        with pytest.warns(UserWarning, match="quarantined"):
            summaries = executor.run(requests)

        assert summaries == baseline
        report = executor.last_report
        assert report.quarantined == 1
        # The corrupt entry was recomputed, the intact one replayed.
        assert not report.requests[0].cached
        assert report.requests[1].cached
        # The poisoned bytes were preserved for post-mortem, and the
        # recomputed summary took the entry's place.
        assert list(cache.quarantine_dir().iterdir())
        assert cache.get(requests[0].fingerprint()) == baseline[0]

    def test_interrupted_chaos_grid_resumes(
        self, baseline, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS_WORKER_CRASH_RATE", CRASH_RATE)
        path = tmp_path / "grid.pkl"
        requests = grid_requests()
        first = Executor(
            jobs=4, cache=None, checkpoint=Checkpoint(path, interval=5),
            retry=RETRY, max_pool_rebuilds=10_000,
        )
        first.run(requests)

        # A fresh executor (fresh process in real life) resumes the
        # whole grid from the checkpoint without executing anything.
        monkeypatch.delenv("REPRO_CHAOS_WORKER_CRASH_RATE")
        resumer = Executor(
            jobs=4, cache=None, checkpoint=Checkpoint(path),
        )
        resumed = resumer.run(requests)
        assert resumed == baseline
        report = resumer.last_report
        assert report.executed == 0
        assert all(r.resumed for r in report.requests)
