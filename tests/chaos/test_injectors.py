"""Chaos injectors: fault math, composition, and determinism.

The determinism contract mirrors the repo-wide stepping contract
(tests/runtime/test_stepping.py): identical selection sequences between
serial and parallel execution (bit-identical summaries), and identical
selection *triples* with times equal to floating-point accumulation
error between event-driven and fixed-tick stepping.
"""

from __future__ import annotations

import math

import pytest

from repro.chaos import (
    AvailabilityFlap,
    BurstStormInjector,
    ChaosScenario,
    CollapseInjector,
    FlapInjector,
    SENSOR_FAULT_MODES,
    SensorFaultPolicy,
    SensorFaultSpec,
    sensor_fault_factory,
    storm_workload,
)
from repro.compiler.features import CodeFeatures
from repro.core.policies.fixed import FixedPolicy
from repro.core.policies.base import PolicyContext
from repro.exec import Executor, PolicySpec, RunRequest
from repro.experiments.scenarios import SMALL_LOW
from repro.machine.availability import FailureWindow, StaticAvailability
from repro.sched.stats import ENV_FEATURE_NAMES, EnvironmentSample

SCALE = 0.05


def env_sample(**overrides) -> EnvironmentSample:
    base = dict(
        time=1.0, workload_threads=4.0, processors=32.0, runq_sz=2.0,
        ldavg_1=3.0, ldavg_5=2.5, cached_memory=0.5,
        pages_free_rate=0.25,
    )
    base.update(overrides)
    return EnvironmentSample(**base)


def context(env: EnvironmentSample) -> PolicyContext:
    return PolicyContext(
        time=env.time,
        loop_name="loop",
        code=CodeFeatures(0.1, 0.2, 0.05),
        env=env,
        available_processors=16,
        max_threads=32,
    )


class Recorder(FixedPolicy):
    """Fixed policy that keeps the contexts it was consulted with."""

    def __init__(self):
        super().__init__(8)
        self.seen = []

    def select(self, ctx):
        self.seen.append(ctx)
        return super().select(ctx)


class TestAvailabilityFlap:
    def flap(self, **overrides):
        base = dict(
            base=StaticAvailability(32), period=10.0,
            surviving_fraction=0.25, start=5.0, duty=0.4,
        )
        base.update(overrides)
        return AvailabilityFlap(**base)

    def test_healthy_before_start(self):
        flap = self.flap()
        assert flap.available(0.0) == 32
        assert flap.next_change(0.0) == 5.0

    def test_degraded_then_recovered_within_period(self):
        flap = self.flap()
        # Degraded phase [5, 9), healthy [9, 15), degraded [15, 19) ...
        assert flap.available(5.0) == 8
        assert flap.available(8.99) == 8
        assert flap.available(9.0) == 32
        assert flap.available(14.99) == 32
        assert flap.available(15.0) == 8

    def test_next_change_tracks_flap_edges(self):
        flap = self.flap()
        assert flap.next_change(5.0) == 9.0
        assert flap.next_change(8.99) == 9.0
        assert flap.next_change(9.0) == 15.0
        assert flap.next_change(15.0) == 19.0

    def test_horizon_strictly_future(self):
        flap = self.flap()
        for t in (0.0, 5.0, 8.999, 9.0, 15.0, 123.45):
            assert flap.next_change(t) > t

    def test_never_below_one_processor(self):
        flap = self.flap(
            base=StaticAvailability(2), surviving_fraction=0.1,
        )
        assert flap.available(5.0) == 1

    def test_horizon_includes_base_schedule_changes(self):
        trace_base = FailureWindow(
            base=StaticAvailability(32), start=7.0, end=100.0,
        )
        flap = self.flap(base=trace_base)
        # Base edge at 7.0 falls inside the flap's [5, 9) degraded
        # phase; the combined horizon must not coast past it.
        assert flap.next_change(6.0) == 7.0

    @pytest.mark.parametrize("kwargs", [
        dict(period=0.0),
        dict(surviving_fraction=0.0),
        dict(surviving_fraction=1.5),
        dict(start=-1.0),
        dict(duty=0.0),
        dict(duty=1.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            self.flap(**kwargs)


class TestInjectors:
    def test_collapse_wraps_in_failure_window(self):
        injector = CollapseInjector(start=10.0, end=20.0)
        schedule = injector.apply(StaticAvailability(32))
        assert isinstance(schedule, FailureWindow)
        assert schedule.available(15.0) == 4  # 32 * 0.125
        assert schedule.available(25.0) == 32

    def test_collapse_validates_eagerly(self):
        with pytest.raises(ValueError):
            CollapseInjector(start=5.0, end=5.0)
        with pytest.raises(ValueError):
            CollapseInjector(start=0.0, end=1.0, surviving_fraction=0.0)

    def test_flap_injector_apply(self):
        injector = FlapInjector(period=6.0, surviving_fraction=0.5)
        schedule = injector.apply(StaticAvailability(32))
        assert isinstance(schedule, AvailabilityFlap)
        assert schedule.available(0.0) == 16
        assert schedule.available(3.0) == 32


class TestChaosScenario:
    def test_name_and_delegation(self):
        chaos = ChaosScenario(
            base=SMALL_LOW,
            injectors=(CollapseInjector(start=5.0, end=25.0),),
        )
        assert chaos.name == f"{SMALL_LOW.name}+chaos"
        assert chaos.workload_size == SMALL_LOW.workload_size
        assert chaos.hw_change == SMALL_LOW.hw_change

    def test_injectors_compose_left_to_right(self):
        chaos = ChaosScenario(
            base=SMALL_LOW,
            injectors=(
                CollapseInjector(start=0.0, end=1e9,
                                 surviving_fraction=0.5),
                FlapInjector(period=10.0, surviving_fraction=0.5,
                             duty=0.5),
            ),
        )
        schedule = chaos.availability(seed=0)
        base = SMALL_LOW.availability(seed=0)
        # During a flap's degraded phase both injectors bite.
        assert schedule.available(2.0) == max(
            1, (base.available(2.0) // 2) // 2
        )

    def test_rejects_injectors_without_apply(self):
        with pytest.raises(TypeError, match="apply"):
            ChaosScenario(base=SMALL_LOW, injectors=(object(),))

    def test_repr_is_deterministic_and_fingerprintable(self):
        def chaos():
            return ChaosScenario(
                base=SMALL_LOW,
                injectors=(CollapseInjector(start=5.0, end=25.0),),
            )

        assert repr(chaos()) == repr(chaos())
        request = RunRequest(
            target="cg", policy=PolicySpec.fixed(8), scenario=chaos(),
            iterations_scale=SCALE,
        )
        assert request.fingerprint() is not None
        plain = RunRequest(
            target="cg", policy=PolicySpec.fixed(8), scenario=SMALL_LOW,
            iterations_scale=SCALE,
        )
        assert request.fingerprint() != plain.fingerprint()


class TestStormWorkload:
    def test_wave_layout(self):
        workload = storm_workload(
            ("is", "ft"), PolicySpec.fixed(4),
            bursts=2, interval=100.0, spread=4.0,
        )
        assert workload.program_names == ("is", "ft", "is", "ft")
        assert workload.start_times == (0.0, 2.0, 100.0, 102.0)
        assert workload.restart is False

    def test_validation(self):
        with pytest.raises(ValueError):
            storm_workload((), PolicySpec.fixed(4))
        with pytest.raises(ValueError):
            storm_workload(("is",), PolicySpec.fixed(4), bursts=0)
        with pytest.raises(ValueError):
            storm_workload(("is",), PolicySpec.fixed(4), interval=0.0)

    def test_injector_renames(self):
        from repro.exec import WorkloadSpec

        steady = WorkloadSpec(
            program_names=("is",), policy=PolicySpec.fixed(4),
            name="steady",
        )
        stormy = BurstStormInjector(bursts=2).apply_workload(steady)
        assert stormy.name == "steady+storm"
        assert stormy.restart is False

    def test_storm_parameters_change_fingerprint(self):
        def request(bursts):
            return RunRequest(
                target="cg", policy=PolicySpec.fixed(8),
                workload=storm_workload(
                    ("is",), PolicySpec.fixed(4), bursts=bursts,
                ),
                iterations_scale=SCALE,
            )

        assert request(2).fingerprint() != request(3).fingerprint()


class TestSensorFaults:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="mode"):
            SensorFaultSpec(mode="gremlins")
        with pytest.raises(ValueError):
            SensorFaultSpec(mode="nan", rate=1.5)
        with pytest.raises(ValueError):
            SensorFaultSpec(mode="nan", fields=("not_a_field",))
        with pytest.raises(ValueError):
            SensorFaultSpec(mode="nan", fields=())
        assert set(SENSOR_FAULT_MODES) == {
            "nan", "stale", "clip", "noise",
        }

    def consult(self, policy, samples):
        for sample in samples:
            policy.select(context(sample))

    def test_nan_mode_corrupts_listed_fields(self):
        inner = Recorder()
        policy = SensorFaultPolicy(
            inner,
            SensorFaultSpec(mode="nan", rate=1.0, fields=("ldavg_1",)),
        )
        policy.select(context(env_sample()))
        seen = inner.seen[0].env
        assert math.isnan(seen.ldavg_1)
        assert seen.ldavg_5 == 2.5  # untouched field

    def test_stale_mode_replays_previous_clean_sample(self):
        inner = Recorder()
        policy = SensorFaultPolicy(
            inner, SensorFaultSpec(mode="stale", rate=1.0),
        )
        first = env_sample(ldavg_1=3.0)
        second = env_sample(time=2.0, ldavg_1=9.0)
        self.consult(policy, [first, second])
        # First consultation has no history: passes through unchanged.
        assert inner.seen[0].env.ldavg_1 == 3.0
        # Second reads the stuck sensor: the previous *clean* value.
        assert inner.seen[1].env.ldavg_1 == 3.0
        assert inner.seen[1].env.time == 2.0

    def test_clip_mode_saturates(self):
        inner = Recorder()
        policy = SensorFaultPolicy(
            inner,
            SensorFaultSpec(
                mode="clip", rate=1.0, fields=("ldavg_1",),
                magnitude=1.0,
            ),
        )
        policy.select(context(env_sample(ldavg_1=3.0)))
        assert inner.seen[0].env.ldavg_1 == 1.0

    def test_noise_mode_stays_non_negative(self):
        inner = Recorder()
        policy = SensorFaultPolicy(
            inner, SensorFaultSpec(mode="noise", rate=1.0, magnitude=5.0),
        )
        for index in range(20):
            policy.select(context(env_sample(time=float(index))))
        for ctx in inner.seen:
            for field in ENV_FEATURE_NAMES:
                assert getattr(ctx.env, field) >= 0.0

    def test_fault_stream_is_deterministic(self):
        def stream():
            inner = Recorder()
            policy = SensorFaultPolicy(
                inner, SensorFaultSpec(mode="nan", rate=0.5, seed=3),
            )
            for index in range(30):
                policy.select(context(env_sample(time=float(index))))
            return [ctx.env.is_finite() for ctx in inner.seen]

        first = stream()
        assert first == stream()
        assert True in first and False in first

    def test_rate_zero_never_faults(self):
        inner = Recorder()
        policy = SensorFaultPolicy(
            inner, SensorFaultSpec(mode="nan", rate=0.0),
        )
        self.consult(policy, [env_sample(time=float(i)) for i in range(5)])
        assert all(ctx.env.is_finite() for ctx in inner.seen)

    def test_reset_restarts_the_fault_stream(self):
        inner = Recorder()
        policy = SensorFaultPolicy(
            inner, SensorFaultSpec(mode="nan", rate=0.5, seed=3),
        )
        self.consult(policy, [env_sample(time=float(i)) for i in range(9)])
        before = [ctx.env.is_finite() for ctx in inner.seen]
        policy.reset()
        inner.seen.clear()
        self.consult(policy, [env_sample(time=float(i)) for i in range(9)])
        assert [ctx.env.is_finite() for ctx in inner.seen] == before

    def test_factory_is_fingerprintable_per_spec(self):
        def spec_of(seed):
            return PolicySpec.of(
                sensor_fault_factory(
                    lambda: FixedPolicy(8),
                    SensorFaultSpec(mode="nan", rate=0.5, seed=seed),
                ),
                label="fixed~nan",
            )

        assert spec_of(0).token is not None
        assert spec_of(0).token != spec_of(1).token


CHAOS_SCENARIO = ChaosScenario(
    base=SMALL_LOW,
    injectors=(
        CollapseInjector(start=5.0, end=25.0, surviving_fraction=0.25),
        FlapInjector(period=7.0, surviving_fraction=0.5, start=30.0,
                     duty=0.4),
    ),
)


def chaos_requests(stepping="event"):
    storm = storm_workload(
        ("is", "ft"), PolicySpec.fixed(4),
        bursts=2, interval=40.0, spread=4.0,
    )
    return [
        RunRequest(
            target=target, policy=PolicySpec.fixed(threads),
            scenario=CHAOS_SCENARIO, workload=storm,
            iterations_scale=SCALE, stepping=stepping,
        )
        for target in ("cg", "ep")
        for threads in (8, 16)
    ]


class TestChaosDeterminism:
    def test_serial_and_parallel_are_bit_identical(self):
        requests = chaos_requests()
        serial = Executor(jobs=1, cache=None, checkpoint=None).run(
            requests
        )
        parallel = Executor(jobs=4, cache=None, checkpoint=None).run(
            requests
        )
        assert serial == parallel
        assert all(s.selections for s in serial)

    def test_event_stepping_matches_fixed_under_faults(self):
        executor = Executor(jobs=1, cache=None, checkpoint=None)
        event = executor.run(chaos_requests("event"))
        fixed = executor.run(chaos_requests("fixed"))
        for e, f in zip(event, fixed):
            assert [
                (s.job_id, s.loop_name, s.threads) for s in e.selections
            ] == [
                (s.job_id, s.loop_name, s.threads) for s in f.selections
            ]
            assert e.target_time == pytest.approx(
                f.target_time, rel=1e-6
            )
            assert e.workload_runs == f.workload_runs
