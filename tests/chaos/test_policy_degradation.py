"""Policy hardening under sensor faults.

The guarantee (docs/robustness.md): no matter what garbage the
environment sensors report, every policy emits a positive, finite
thread count; the mixture falls back to the documented safe default
(one thread per available processor) on degenerate features, counts
the fallback, and never lets a NaN poison its online learning state.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.chaos import SensorFaultSpec, sensor_fault_factory
from repro.compiler.features import CodeFeatures
from repro.core.features import NUM_FEATURES, sanitize_features
from repro.core.hierarchical import HierarchicalSelector
from repro.core.policies.base import PolicyContext
from repro.core.policies.mixture import MixturePolicy
from repro.core.selector import HyperplaneSelector
from repro.exec import Executor, PolicySpec, RunRequest
from repro.experiments.scenarios import SMALL_LOW
from repro.sched.stats import EnvironmentSample

SCALE = 0.05


def env_sample(**overrides) -> EnvironmentSample:
    base = dict(
        time=1.0, workload_threads=4.0, processors=32.0, runq_sz=2.0,
        ldavg_1=3.0, ldavg_5=2.5, cached_memory=0.5,
        pages_free_rate=0.25,
    )
    base.update(overrides)
    return EnvironmentSample(**base)


def context(env: EnvironmentSample, time: float = 1.0) -> PolicyContext:
    return PolicyContext(
        time=time,
        loop_name="loop",
        code=CodeFeatures(0.1, 0.2, 0.05),
        env=env,
        available_processors=16,
        max_threads=32,
    )


class TestSanitizeFeatures:
    def test_clean_vector_passes_through(self):
        vector = np.arange(10, dtype=float)
        clean, degenerate = sanitize_features(vector)
        assert not degenerate
        assert (clean == vector).all()

    def test_non_finite_entries_zeroed(self):
        vector = np.array([1.0, float("nan"), float("inf"), -math.inf])
        clean, degenerate = sanitize_features(vector)
        assert degenerate
        assert list(clean) == [1.0, 0.0, 0.0, 0.0]


class TestMixtureFallback:
    def mixture(self, tiny_bundle) -> MixturePolicy:
        return MixturePolicy(
            tiny_bundle.experts,
            selector=HyperplaneSelector(
                num_experts=len(tiny_bundle.experts), dim=NUM_FEATURES,
            ),
        )

    def test_nan_features_hit_safe_default(self, tiny_bundle):
        policy = self.mixture(tiny_bundle)
        ctx = context(env_sample(ldavg_1=float("nan")))
        threads = policy.select(ctx)
        # Safe default: one thread per available processor.
        assert threads == ctx.clamp(ctx.available_processors) == 16
        assert policy.fallback_count == 1
        # Nothing was recorded to learn from.
        assert policy.decisions == []

    def test_recovers_after_faulty_sample(self, tiny_bundle):
        policy = self.mixture(tiny_bundle)
        policy.select(context(env_sample(ldavg_1=float("inf"))))
        threads = policy.select(context(env_sample(), time=2.0))
        assert 1 <= threads <= 32
        assert policy.fallback_count == 1
        assert len(policy.decisions) == 1

    def test_nan_observation_never_poisons_the_selector(self, tiny_bundle):
        faulty = self.mixture(tiny_bundle)
        clean = self.mixture(tiny_bundle)
        samples = [env_sample(time=float(t)) for t in range(6)]
        # The faulty policy sees one all-NaN sample mid-stream.
        nan_sample = env_sample(
            time=2.5, ldavg_1=float("nan"), runq_sz=float("nan"),
        )
        for policy, stream in (
            (clean, samples),
            (faulty, samples[:3] + [nan_sample] + samples[3:]),
        ):
            for index, sample in enumerate(stream):
                policy.select(context(sample, time=float(index)))
        # After the fault the policy keeps making finite decisions ...
        assert all(
            d.threads >= 1 and all(
                math.isfinite(n) for n in d.predicted_norms
            )
            for d in faulty.decisions
        )
        # ... and its selector state is still finite (no Welford
        # poisoning through the normalizer).
        last = faulty.select(context(env_sample(time=99.0), time=99.0))
        assert 1 <= last <= 32

    def test_reset_clears_fallback_count(self, tiny_bundle):
        policy = self.mixture(tiny_bundle)
        policy.select(context(env_sample(ldavg_1=float("nan"))))
        assert policy.fallback_count == 1
        policy.reset()
        assert policy.fallback_count == 0


class TestSelectorHardening:
    def test_update_rejects_non_finite_errors(self):
        selector = HyperplaneSelector(num_experts=3, dim=NUM_FEATURES)
        features = np.ones(NUM_FEATURES)
        assert not selector.update(features, [0.1, float("nan"), 0.2])
        assert not selector.update(features, [0.1, math.inf, 0.2])
        # A rejected update is a complete no-op: nothing observed,
        # nothing counted, no weights moved.
        assert selector.stats.updates == 0
        assert np.isfinite(selector._V).all()
        assert (selector._V == 0.0).all()

    def test_update_sanitizes_features(self):
        selector = HyperplaneSelector(num_experts=2, dim=4)
        bad = np.array([1.0, float("nan"), 2.0, 3.0])
        assert selector.update(bad, [0.5, 0.1]) in (True, False)
        # Later selections on clean features stay well-defined.
        choice = selector.select(np.ones(4))
        assert choice in (0, 1)

    def test_hierarchical_update_rejects_non_finite(self):
        selector = HierarchicalSelector(
            groups=((0, 1), (2, 3)), dim=NUM_FEATURES,
        )
        features = np.ones(NUM_FEATURES)
        assert not selector.update(
            features, [0.1, float("nan"), 0.2, 0.3]
        )


class TestExpertHardening:
    def test_nan_features_predict_finite_threads(self, tiny_bundle):
        features = np.full(NUM_FEATURES, float("nan"))
        for expert in tiny_bundle.experts:
            threads = expert.predict_threads(features, 32)
            assert isinstance(threads, int)
            assert 1 <= threads <= 32
            assert math.isfinite(expert.predict_env_norm(features))


class TestEndToEndDegradation:
    @pytest.mark.parametrize("mode", ["nan", "stale"])
    def test_faulty_sensors_never_break_a_run(self, tiny_bundle, mode):
        bundle = tiny_bundle

        def mixture():
            return MixturePolicy(
                bundle.experts,
                selector=HyperplaneSelector(
                    num_experts=len(bundle.experts), dim=NUM_FEATURES,
                ),
            )

        spec = PolicySpec.of(
            sensor_fault_factory(
                mixture, SensorFaultSpec(mode=mode, rate=0.5, seed=7),
            ),
            label=f"mixture~{mode}",
        )
        request = RunRequest(
            target="cg", policy=spec, scenario=SMALL_LOW,
            iterations_scale=SCALE,
        )
        (summary,) = Executor(jobs=1, cache=None, checkpoint=None).run(
            [request]
        )
        threads = [s.threads for s in summary.selections]
        assert threads
        assert all(isinstance(t, int) and 1 <= t for t in threads)
        if mode == "nan":
            # The degradation is visible in the run summary, not
            # buried: NaN injection must have tripped the fallback.
            assert summary.policy_fallbacks > 0
        # The engine finished the run and produced sane numbers.
        assert summary.target_time > 0
        assert math.isfinite(summary.target_time)

    def test_faulty_run_is_deterministic(self, tiny_bundle):
        bundle = tiny_bundle

        def mixture():
            return MixturePolicy(
                bundle.experts,
                selector=HyperplaneSelector(
                    num_experts=len(bundle.experts), dim=NUM_FEATURES,
                ),
            )

        spec = PolicySpec.of(
            sensor_fault_factory(
                mixture, SensorFaultSpec(mode="nan", rate=0.5, seed=7),
            ),
            label="mixture~nan",
        )
        request = RunRequest(
            target="cg", policy=spec, scenario=SMALL_LOW,
            iterations_scale=SCALE,
        )
        executor = Executor(jobs=1, cache=None, checkpoint=None)
        assert executor.run([request]) == executor.run([request])
