"""Churn schedules: the fleet-reshape chaos events."""

import pytest

from repro.chaos import ChurnEvent, churn_resize_map, parse_churn_schedule


class TestChurnEvent:
    def test_validates_index(self):
        with pytest.raises(ValueError, match="negative"):
            ChurnEvent(index=-1, shards=2)

    def test_validates_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ChurnEvent(index=10, shards=0)

    def test_frozen(self):
        event = ChurnEvent(index=10, shards=2)
        with pytest.raises(AttributeError):
            event.shards = 3


class TestParseChurnSchedule:
    def test_parses_and_sorts(self):
        events = parse_churn_schedule("1300:3, 600:4")
        assert events == [
            ChurnEvent(index=600, shards=4),
            ChurnEvent(index=1300, shards=3),
        ]

    def test_empty_string_is_empty_schedule(self):
        assert parse_churn_schedule("") == []
        assert parse_churn_schedule(" , ") == []

    def test_rejects_malformed_entry(self):
        with pytest.raises(ValueError, match="IDX:SHARDS"):
            parse_churn_schedule("600")
        with pytest.raises(ValueError, match="IDX:SHARDS"):
            parse_churn_schedule("600:x")

    def test_rejects_duplicate_index(self):
        with pytest.raises(ValueError, match="request 600"):
            parse_churn_schedule("600:4,600:3")

    def test_event_validation_propagates(self):
        with pytest.raises(ValueError, match="at least one shard"):
            parse_churn_schedule("600:0")


class TestChurnResizeMap:
    def test_flattens_to_resize_at(self):
        events = parse_churn_schedule("600:4,1300:3")
        assert churn_resize_map(events) == {600: 4, 1300: 3}
