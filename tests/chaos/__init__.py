"""Chaos-injection harness tests."""
