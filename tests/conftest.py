"""Shared fixtures.

``tiny_bundle`` trains a miniature expert set once per session (disk
cached across sessions), so policy/experiment tests do not pay the full
training pipeline's cost.
"""

from __future__ import annotations

import pytest

from repro.core.training import TrainingConfig, default_experts

#: A miniature training configuration for tests: two targets, one
#: single-program workload, shallow sweeps.  Trains in seconds.
TINY_CONFIG = TrainingConfig(
    target_names=("cg", "ep"),
    workload_names=("is",),
    workload_bundles=((), ("is", "ft")),
    workload_fractions=(0.5,),
    availability_levels=(0.5, 1.0),
    iterations_scale=0.05,
    max_samples_per_run=6,
)


@pytest.fixture(scope="session")
def tiny_config() -> TrainingConfig:
    return TINY_CONFIG


@pytest.fixture(scope="session")
def tiny_bundle(tiny_config):
    """Expert bundle trained on the miniature configuration."""
    return default_experts(tiny_config)


@pytest.fixture(scope="session")
def tiny_mono(tiny_config):
    """Monolithic (granularity-1) bundle on the same data."""
    return default_experts(tiny_config, granularity=1)
