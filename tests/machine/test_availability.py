"""Availability schedules."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.availability import (
    FailureWindow,
    HIGH_FREQUENCY_PERIOD,
    LOW_FREQUENCY_PERIOD,
    PeriodicAvailability,
    StaticAvailability,
    TraceAvailability,
    next_availability_change,
)


class TestStatic:
    def test_constant(self):
        schedule = StaticAvailability(8)
        assert schedule.available(0.0) == 8
        assert schedule.available(1e6) == 8

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            StaticAvailability(0)


class TestPeriodic:
    def test_paper_periods(self):
        assert LOW_FREQUENCY_PERIOD == 20.0
        assert HIGH_FREQUENCY_PERIOD == 10.0

    def test_first_period_full_machine(self):
        schedule = PeriodicAvailability(max_processors=32, seed=1)
        assert schedule.available(0.0) == 32
        assert schedule.available(19.9) == 32

    def test_deterministic(self):
        a = PeriodicAvailability(max_processors=32, seed=7)
        b = PeriodicAvailability(max_processors=32, seed=7)
        times = [0.0, 25.0, 47.0, 123.0, 999.0]
        assert [a.available(t) for t in times] == [
            b.available(t) for t in times
        ]

    def test_order_independent(self):
        schedule = PeriodicAvailability(max_processors=32, seed=3)
        late = schedule.available(500.0)
        schedule.available(20.0)
        assert schedule.available(500.0) == late

    def test_constant_within_period(self):
        schedule = PeriodicAvailability(max_processors=32, seed=3,
                                        period=20.0)
        assert schedule.available(20.0) == schedule.available(39.9)

    def test_seed_changes_draws(self):
        times = [20.0 * k for k in range(1, 30)]
        a = [PeriodicAvailability(32, seed=1).available(t) for t in times]
        b = [PeriodicAvailability(32, seed=2).available(t) for t in times]
        assert a != b

    @given(st.floats(min_value=0.0, max_value=1e5),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, time, seed):
        schedule = PeriodicAvailability(max_processors=32, seed=seed)
        value = schedule.available(time)
        assert schedule.min_processors <= value <= 32

    def test_min_fraction(self):
        schedule = PeriodicAvailability(max_processors=32,
                                        min_fraction=0.25)
        assert schedule.min_processors == 8

    def test_negative_time_rejected(self):
        schedule = PeriodicAvailability(max_processors=4)
        with pytest.raises(ValueError):
            schedule.available(-1.0)

    @pytest.mark.parametrize("kwargs", [
        dict(max_processors=0),
        dict(max_processors=4, period=0.0),
        dict(max_processors=4, min_fraction=0.0),
        dict(max_processors=4, min_fraction=1.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PeriodicAvailability(**kwargs)


class TestTrace:
    def test_step_lookup(self):
        schedule = TraceAvailability.from_pairs(
            [(0.0, 4), (10.0, 8), (20.0, 2)]
        )
        assert schedule.available(0.0) == 4
        assert schedule.available(9.99) == 4
        assert schedule.available(10.0) == 8
        assert schedule.available(25.0) == 2

    def test_before_first_point(self):
        schedule = TraceAvailability.from_pairs([(5.0, 4)])
        assert schedule.available(0.0) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TraceAvailability(points=())

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            TraceAvailability.from_pairs([(10.0, 4), (0.0, 8)])

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            TraceAvailability.from_pairs([(0.0, 0)])


class TestFailureWindow:
    def test_halves_processors_in_window(self):
        schedule = FailureWindow(
            base=StaticAvailability(32), start=10.0, end=20.0,
        )
        assert schedule.available(5.0) == 32
        assert schedule.available(10.0) == 16
        assert schedule.available(19.9) == 16
        assert schedule.available(20.0) == 32

    def test_custom_fraction(self):
        schedule = FailureWindow(
            base=StaticAvailability(32), start=0.0, end=1.0,
            surviving_fraction=0.25,
        )
        assert schedule.available(0.5) == 8

    def test_never_below_one(self):
        schedule = FailureWindow(
            base=StaticAvailability(1), start=0.0, end=1.0,
        )
        assert schedule.available(0.5) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureWindow(base=StaticAvailability(4), start=5.0, end=5.0)
        with pytest.raises(ValueError):
            FailureWindow(base=StaticAvailability(4), start=0.0,
                          end=1.0, surviving_fraction=0.0)


class TestNextChange:
    """The event-horizon protocol the event-driven engine fast-forwards
    on: `next_change(t)` is the first instant availability may differ."""

    def test_static_never_changes(self):
        assert StaticAvailability(8).next_change(0.0) == math.inf
        assert StaticAvailability(8).next_change(1e6) == math.inf

    def test_periodic_next_boundary(self):
        schedule = PeriodicAvailability(max_processors=32, seed=1)
        assert schedule.next_change(0.0) == 20.0
        assert schedule.next_change(19.99) == 20.0
        assert schedule.next_change(20.0) == 40.0
        assert schedule.next_change(45.0) == 60.0

    def test_periodic_holds_between_boundaries(self):
        schedule = PeriodicAvailability(max_processors=32, seed=5)
        time = 123.4
        horizon = schedule.next_change(time)
        count = schedule.available(time)
        assert schedule.available(horizon - 1e-9) == count

    def test_trace_next_point(self):
        schedule = TraceAvailability.from_pairs(
            [(0.0, 32), (10.0, 16), (25.0, 32)]
        )
        assert schedule.next_change(0.0) == 10.0
        assert schedule.next_change(10.0) == 25.0
        assert schedule.next_change(24.9) == 25.0
        assert schedule.next_change(25.0) == math.inf

    def test_failure_window_edges(self):
        schedule = FailureWindow(
            base=StaticAvailability(32), start=10.0, end=20.0,
        )
        assert schedule.next_change(0.0) == 10.0
        assert schedule.next_change(10.0) == 20.0
        assert schedule.next_change(20.0) == math.inf

    def test_failure_window_combines_base_boundaries(self):
        schedule = FailureWindow(
            base=PeriodicAvailability(max_processors=32, seed=1),
            start=30.0, end=50.0,
        )
        # Period boundary (20) before the failure start (30).
        assert schedule.next_change(5.0) == 20.0
        # Failure start before the next period boundary (40).
        assert schedule.next_change(25.0) == 30.0

    def test_fallback_for_schedules_without_protocol(self):
        class Legacy:
            def available(self, time):
                return 4

        assert next_availability_change(Legacy(), 7.0) == 0.0
        assert next_availability_change(StaticAvailability(4), 7.0) == (
            math.inf
        )


class TestEdgeCases:
    """Boundary behaviour the fault injectors lean on: window edges are
    half-open ``[start, end)``, horizons are *strictly* after ``t``, and
    queries past the last breakpoint are stable."""

    def test_zero_width_window_rejected(self):
        with pytest.raises(ValueError, match="positive length"):
            FailureWindow(base=StaticAvailability(8), start=3.0, end=3.0)
        with pytest.raises(ValueError, match="positive length"):
            FailureWindow(base=StaticAvailability(8), start=3.0, end=2.0)

    def test_change_exactly_on_tick_boundary(self):
        # A trace change landing exactly on a dt=0.1 tick: the new count
        # applies *at* the breakpoint (closed left edge), and the horizon
        # queried from the tick just before is exactly the breakpoint.
        schedule = TraceAvailability.from_pairs([(0.0, 8), (1.5, 2)])
        assert schedule.available(1.5 - 0.1) == 8
        assert schedule.available(1.5) == 2
        assert schedule.next_change(1.4) == 1.5
        # Queried exactly at the breakpoint the change is already in
        # effect, so the horizon must not re-report it.
        assert schedule.next_change(1.5) == math.inf

    def test_failure_window_tick_boundary(self):
        schedule = FailureWindow(
            base=StaticAvailability(32), start=1.0, end=2.0,
        )
        assert schedule.available(1.0) == 16
        assert schedule.available(2.0) == 32
        assert schedule.next_change(1.0) == 2.0
        assert schedule.next_change(2.0) == math.inf

    def test_trace_next_change_at_and_after_last_breakpoint(self):
        schedule = TraceAvailability.from_pairs(
            [(0.0, 4), (10.0, 8), (30.0, 2)]
        )
        assert schedule.next_change(29.999) == 30.0
        assert schedule.next_change(30.0) == math.inf
        assert schedule.next_change(1e9) == math.inf
        # Availability stays at the final count forever.
        assert schedule.available(30.0) == 2
        assert schedule.available(1e9) == 2

    def test_horizon_is_strictly_in_the_future(self):
        # next_change(t) == t would spin the event-driven engine.
        schedule = TraceAvailability.from_pairs(
            [(0.0, 4), (5.0, 8), (9.0, 2)]
        )
        for t in (0.0, 4.999, 5.0, 8.9, 9.0, 100.0):
            assert schedule.next_change(t) > t
