"""Topology definitions and invariants."""

import pytest

from repro.machine.topology import (
    HPC_SYSTEM,
    TRAINING_PLATFORMS,
    TWELVE_CORE,
    Topology,
    XEON_L7555,
)


class TestTopology:
    def test_core_count(self):
        t = Topology(name="t", sockets=2, cores_per_socket=4)
        assert t.cores == 8

    def test_hw_contexts_with_smt(self):
        t = Topology(name="t", sockets=2, cores_per_socket=4, smt=2)
        assert t.hw_contexts == 16

    def test_socket_of(self):
        t = Topology(name="t", sockets=2, cores_per_socket=4)
        assert t.socket_of(0) == 0
        assert t.socket_of(3) == 0
        assert t.socket_of(4) == 1
        assert t.socket_of(7) == 1

    def test_socket_of_out_of_range(self):
        t = Topology(name="t", sockets=1, cores_per_socket=2)
        with pytest.raises(ValueError, match="out of range"):
            t.socket_of(2)
        with pytest.raises(ValueError):
            t.socket_of(-1)

    @pytest.mark.parametrize("kwargs", [
        dict(sockets=0, cores_per_socket=4),
        dict(sockets=2, cores_per_socket=0),
        dict(sockets=2, cores_per_socket=4, smt=0),
    ])
    def test_degenerate_rejected(self, kwargs):
        with pytest.raises(ValueError, match="degenerate"):
            Topology(name="bad", **kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            XEON_L7555.sockets = 1


class TestPaperPlatforms:
    def test_xeon_matches_table_2(self):
        """Table 2: 32-core Xeon L7555, 4 sockets x 8 cores, 64 GB,
        24 MB LLC, 1.87 GHz."""
        assert XEON_L7555.cores == 32
        assert XEON_L7555.sockets == 4
        assert XEON_L7555.cores_per_socket == 8
        assert XEON_L7555.ram_gb == 64.0
        assert XEON_L7555.llc_mb == 24.0
        assert XEON_L7555.freq_ghz == 1.87

    def test_twelve_core(self):
        assert TWELVE_CORE.cores == 12

    def test_hpc_system_matches_figure_1(self):
        """Figure 1: 2912 cores, 5824 hardware contexts, 24 GB RAM."""
        assert HPC_SYSTEM.cores == 2912
        assert HPC_SYSTEM.hw_contexts == 5824
        assert HPC_SYSTEM.ram_gb == 24.0

    def test_training_platforms(self):
        assert TRAINING_PLATFORMS == (TWELVE_CORE, XEON_L7555)
