"""Power model and energy accounting."""

import pytest

from repro.core.policies import DefaultPolicy, FixedPolicy
from repro.machine.machine import SimMachine
from repro.machine.power import (
    PowerModel,
    energy_to_solution,
    mean_availability,
)
from repro.machine.topology import XEON_L7555
from repro.runtime.engine import CoExecutionEngine, JobSpec
from tests.runtime.test_engine import tiny_program


def run(policy, workload=True):
    jobs = [JobSpec(program=tiny_program("t", iterations=12, work=2.0,
                                         loads=4),
                    policy=policy, job_id="target", is_target=True)]
    if workload:
        jobs.append(JobSpec(
            program=tiny_program("w", iterations=8, work=2.0, loads=4),
            policy=DefaultPolicy(), job_id="w", restart=True,
        ))
    machine = SimMachine(topology=XEON_L7555)
    return CoExecutionEngine(machine, jobs).run()


@pytest.fixture(scope="module")
def model():
    return PowerModel(topology=XEON_L7555)


class TestPowerModel:
    def test_energy_components(self, model):
        # 10 active core-seconds on a 32-core machine for 5 s.
        energy = model.energy_joules(
            active_core_seconds=10.0, duration=5.0, mean_available=32,
        )
        expected = (8.0 - 2.5) * 10.0 + 2.5 * 32 * 5.0
        assert energy == pytest.approx(expected)

    def test_idle_machine_still_draws(self, model):
        energy = model.energy_joules(0.0, 10.0, 32)
        assert energy == pytest.approx(2.5 * 320)

    def test_offlined_cores_save_energy(self, model):
        full = model.energy_joules(10.0, 5.0, 32)
        half = model.energy_joules(10.0, 5.0, 16)
        assert half < full

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerModel(topology=XEON_L7555, active_watts=0.0)
        with pytest.raises(ValueError):
            PowerModel(topology=XEON_L7555, idle_watts=10.0,
                       active_watts=5.0)
        model = PowerModel(topology=XEON_L7555)
        with pytest.raises(ValueError):
            model.energy_joules(-1.0, 1.0, 32)
        with pytest.raises(ValueError):
            model.energy_joules(1000.0, 1.0, 1)


class TestRunEnergy:
    def test_run_energy_positive(self, model):
        result = run(FixedPolicy(8))
        energy = model.run_energy(result, mean_availability(result))
        assert energy > 0

    def test_fewer_threads_use_less_energy_under_load(self, model):
        """Over-threading burns power for the same work."""
        greedy = run(FixedPolicy(32))
        frugal = run(FixedPolicy(8))
        target_work = tiny_program(
            "t", iterations=12, work=2.0, loads=4,
        ).total_work
        greedy_ets = energy_to_solution(
            greedy, model, "target", target_work,
        )
        frugal_ets = energy_to_solution(
            frugal, model, "target", target_work,
        )
        assert frugal_ets < greedy_ets

    def test_energy_to_solution_validation(self, model):
        result = run(FixedPolicy(4), workload=False)
        with pytest.raises(ValueError):
            energy_to_solution(result, model, "target", 0.0)

    def test_mean_availability(self):
        result = run(FixedPolicy(4), workload=False)
        assert mean_availability(result) == pytest.approx(32.0)
