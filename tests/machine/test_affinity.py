"""Affinity policies and locality factors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.affinity import (
    CompactAffinity,
    NoAffinity,
    ScatterAffinity,
)
from repro.machine.machine import SimMachine
from repro.machine.topology import XEON_L7555


POLICIES = [NoAffinity(), CompactAffinity(), ScatterAffinity()]


class TestLocalityRange:
    @pytest.mark.parametrize("policy", POLICIES,
                             ids=lambda p: p.name)
    @pytest.mark.parametrize("threads", [1, 2, 8, 16, 32])
    def test_in_unit_interval(self, policy, threads):
        value = policy.locality(threads, XEON_L7555)
        assert 0.0 < value <= 1.0

    @given(st.integers(min_value=0, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_no_affinity_bounds(self, threads):
        value = NoAffinity().locality(threads, XEON_L7555)
        assert 0.0 < value <= 1.0


class TestCompactBeatsDefault:
    @pytest.mark.parametrize("threads", [8, 16, 24, 32])
    def test_compact_at_least_as_local(self, threads):
        compact = CompactAffinity().locality(threads, XEON_L7555)
        scattered = NoAffinity().locality(threads, XEON_L7555)
        assert compact >= scattered

    def test_compact_single_socket_is_best(self):
        # 8 threads fit one socket exactly.
        compact = CompactAffinity().locality(8, XEON_L7555)
        assert compact > NoAffinity().locality(8, XEON_L7555)

    def test_compact_monotone_decreasing(self):
        compact = CompactAffinity()
        values = [compact.locality(n, XEON_L7555)
                  for n in (1, 8, 16, 24, 32)]
        assert values == sorted(values, reverse=True)


class TestScatter:
    def test_few_threads_get_bandwidth_bonus(self):
        scatter = ScatterAffinity().locality(2, XEON_L7555)
        plain = NoAffinity().locality(2, XEON_L7555)
        assert scatter >= plain

    def test_many_threads_no_bonus(self):
        scatter = ScatterAffinity().locality(32, XEON_L7555)
        plain = NoAffinity().locality(32, XEON_L7555)
        assert scatter == pytest.approx(plain)


class TestSimMachine:
    def test_default_availability_is_full(self):
        machine = SimMachine(topology=XEON_L7555)
        assert machine.available(0.0) == 32

    def test_available_clamped_to_topology(self):
        from repro.machine.availability import StaticAvailability

        machine = SimMachine(
            topology=XEON_L7555,
            availability=StaticAvailability(1000),
        )
        assert machine.available(0.0) == 32

    def test_with_affinity(self):
        machine = SimMachine(topology=XEON_L7555)
        pinned = machine.with_affinity(CompactAffinity())
        assert pinned.affinity.name == "compact"
        assert machine.affinity.name == "none"
        assert pinned.topology is machine.topology

    def test_locality_delegates(self):
        machine = SimMachine(topology=XEON_L7555,
                             affinity=CompactAffinity())
        expected = CompactAffinity().locality(16, XEON_L7555)
        assert machine.locality(16) == pytest.approx(expected)
