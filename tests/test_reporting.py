"""Text reporting helpers."""

import pytest

from repro.reporting import (
    bar_chart,
    render_table,
    sparkline,
    timeline_chart,
)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            ["name", "speedup"],
            [["cg", 1.5], ["blackscholes", 0.98]],
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.50" in lines[1]
        assert "0.98" in lines[2]
        # columns align: all lines same width
        assert len({len(line) for line in lines}) == 1

    def test_float_format(self):
        text = render_table(["a", "b"], [["x", 1.23456]],
                            float_format="{:.4f}")
        assert "1.2346" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            render_table([], [])
        with pytest.raises(ValueError):
            render_table(["a"], [["x", 1]])


class TestBarChart:
    def test_bars_scale(self):
        text = bar_chart({"big": 2.0, "small": 1.0}, width=40)
        big, small = text.splitlines()
        assert big.count("#") > small.count("#")

    def test_baseline_marker(self):
        text = bar_chart({"a": 2.0, "b": 0.5}, width=40, baseline=1.0)
        assert "|" in text.splitlines()[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=5)
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})


class TestSparkline:
    def test_length_capped(self):
        line = sparkline(list(range(1000)), width=50)
        assert len(line) <= 50

    def test_monotone_series_ramps(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8, 9], width=10)
        assert line[0] != line[-1]

    def test_constant_series(self):
        line = sparkline([5.0] * 20, width=10)
        assert len(set(line)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline([])
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestTimelineChart:
    def test_contains_range(self):
        text = timeline_chart(
            [(0.0, 4.0), (10.0, 8.0), (20.0, 2.0)], label="threads",
        )
        assert "threads" in text
        assert "min=2.0" in text
        assert "max=8.0" in text
        assert "[0s..20s]" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            timeline_chart([])
