"""The ``repro serve-soak`` subcommand, end to end through the CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture
def soak_args(tmp_path):
    """A small but complete soak: chaos window, bursts, persistence."""
    return [
        "serve-soak", "--tiny", "--requests", "200",
        "--sensor", "nan", "--fault-window", "0.25", "0.55",
        "--state-dir", str(tmp_path),
    ]


def test_text_report(tiny_bundle, soak_args, capsys):
    assert main(soak_args) == 0
    out = capsys.readouterr().out
    assert "requests: 200 (answered 200, shed 0" in out
    assert "decisions by tier:" in out
    assert "ladder:" in out
    assert "latency: p50" in out
    assert "journal:" in out


def test_json_report(tiny_bundle, soak_args, capsys):
    assert main(soak_args + ["--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 200
    assert payload["answered"] + payload["shed"] == 200
    assert payload["trips"] >= 1
    assert payload["journal"]["journal_records"] == 200


def test_kill_and_verify_recovery(tiny_bundle, soak_args, capsys):
    assert main(
        soak_args + ["--kill-at", "90", "--verify-recovery"]
    ) == 0
    out = capsys.readouterr().out
    assert "recovery: killed before request 90" in out
    assert "bit-identical to the uninterrupted twin" in out


def test_listed_alongside_experiments(capsys):
    assert main(["list"]) == 0
    assert "serve-soak" in capsys.readouterr().out


def test_rejects_bad_arguments(tiny_bundle):
    with pytest.raises(SystemExit):
        main(["serve-soak", "--requests", "0"])
    with pytest.raises(SystemExit):
        main(["serve-soak", "--verify-recovery"])
    with pytest.raises(SystemExit):
        main(["serve-soak", "--requests", "100", "--kill-at", "500"])
