"""The ``repro serve-fleet`` subcommand, end to end through the CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exec import shm

needs_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="POSIX shared memory unavailable"
)


@pytest.fixture
def fleet_args(tmp_path):
    """A small but complete fleet run, inline for determinism."""
    return [
        "serve-fleet", "--tiny", "--requests", "200", "--shards", "2",
        "--batch-max", "16", "--inline",
        "--state-root", str(tmp_path),
    ]


def test_text_report(tiny_bundle, fleet_args, capsys):
    assert main(fleet_args) == 0
    out = capsys.readouterr().out
    assert "fleet: 2 shards, 200 requests (answered 200, shed 0" in out
    assert "throughput:" in out
    assert "p99 <=" in out
    assert "shard 0:" in out
    assert "shard 1:" in out


def test_json_report(tiny_bundle, fleet_args, capsys):
    assert main(fleet_args + ["--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["shards"] == 2
    assert payload["total"] == 200
    assert payload["answered"] == 200
    assert payload["failovers"] == 0
    assert len(payload["per_shard"]) == 2
    assert sum(r["total"] for r in payload["per_shard"]) == 200


@needs_shm
def test_kill_and_verify_recovery(tiny_bundle, tmp_path, capsys):
    assert main([
        "serve-fleet", "--tiny", "--requests", "200", "--shards", "2",
        "--batch-max", "16", "--state-root", str(tmp_path),
        "--kill-at", "90", "--verify-recovery",
    ]) == 0
    out = capsys.readouterr().out
    assert "failover: shard killed before request 90" in out
    assert "bit-identical to the inline twin" in out


def test_listed_alongside_experiments(capsys):
    assert main(["list"]) == 0
    assert "serve-fleet" in capsys.readouterr().out


def test_rejects_bad_arguments(tiny_bundle):
    with pytest.raises(SystemExit):
        main(["serve-fleet", "--requests", "0"])
    with pytest.raises(SystemExit):
        main(["serve-fleet", "--verify-recovery"])
    with pytest.raises(SystemExit):
        main(["serve-fleet", "--requests", "100", "--kill-at", "500"])
    with pytest.raises(SystemExit):
        main(["serve-fleet", "--requests", "100", "--kill-at", "50",
              "--inline"])
    with pytest.raises(SystemExit):
        main(["serve-fleet", "--batch-max", "100",
              "--queue-capacity", "64"])
