"""The sharded serving fleet: routing, transport, failover, isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos.sensors import SensorFaultSpec
from repro.core.persistence import dump_checked_json
from repro.exec import shm
from repro.serve.fleet import (
    RECOVERED_TIER,
    FleetConfig,
    PolicyFleet,
    ShardRouter,
    ShardWorker,
    decode_decisions,
    decode_requests,
    encode_decisions,
    encode_requests,
    stream_dirname,
)
from repro.serve.journal import ship_state
from repro.serve.server import ServeConfig, ServeDecision
from repro.serve.soak import (
    SoakInvariantError,
    SoakSpec,
    build_policy,
    make_request,
    run_fleet_soak,
    verify_fleet_recovery,
)

needs_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="POSIX shared memory unavailable"
)

SPEC = SoakSpec(requests=240, seed=3)


def stream_requests(spec=SPEC):
    return [make_request(spec, i) for i in range(spec.requests)]


def stream_pairs(requests):
    """The wire/worker form: ``(stream, request)`` routing pairs."""
    return [(r.ctx.loop_name, r) for r in requests]


class TestShardRouter:
    def test_routes_are_stable_and_in_range(self):
        router = ShardRouter(4)
        streams = [f"loop_{i}" for i in range(100)]
        first = [router.route(s) for s in streams]
        again = [ShardRouter(4).route(s) for s in streams]
        assert first == again  # sha256, not salted builtin hash
        assert all(0 <= shard < 4 for shard in first)

    def test_replicas_spread_streams(self):
        router = ShardRouter(4, replicas=64)
        owners = {router.route(f"stream-{i}") for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_single_shard_owns_everything(self):
        router = ShardRouter(1)
        assert {router.route(f"s{i}") for i in range(20)} == {0}

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, replicas=0)


class TestFleetConfig:
    def test_batch_max_bounded_by_capacity(self):
        with pytest.raises(ValueError, match="queue_capacity"):
            FleetConfig(batch_max=100,
                        serve=ServeConfig(queue_capacity=64))

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(shards=0)
        with pytest.raises(ValueError):
            FleetConfig(ring_slots=0)
        with pytest.raises(ValueError):
            FleetConfig(slot_bytes=8)
        with pytest.raises(ValueError):
            FleetConfig(batch_linger_s=-1.0)


class TestWireCodec:
    def test_requests_round_trip_bit_exactly(self):
        batch = stream_pairs(stream_requests()[:40])
        meta, arrays = encode_requests(batch, start_position=7)
        position, decoded = decode_requests(meta, arrays)
        assert position == 7
        assert len(decoded) == len(batch)
        for (stream, original), (copied_stream, copy) in zip(batch,
                                                             decoded):
            assert copied_stream == stream
            assert copy.index == original.index
            assert copy.ctx.loop_name == original.ctx.loop_name
            assert copy.ctx.available_processors == \
                original.ctx.available_processors
            assert copy.ctx.max_threads == original.ctx.max_threads
            # the feature vector must survive to the last ulp — this
            # is what makes shard decisions equal to inline decisions
            assert copy.ctx.feature_vector().tobytes() == \
                original.ctx.feature_vector().tobytes()

    def test_decisions_round_trip_exactly(self):
        decisions = [
            ServeDecision(index=1, threads=8, tier="mixture",
                          latency_s=1.25e-4),
            ServeDecision(index=2, threads=None, tier="shed",
                          latency_s=0.0, shed=True),
            ServeDecision(index=3, threads=4, tier="expert",
                          latency_s=3.5e-4, deadline_missed=True,
                          failure="degenerate-features"),
            ServeDecision(index=4, threads=None, tier=RECOVERED_TIER,
                          latency_s=0.0),
        ]
        meta, arrays = encode_decisions(decisions, recovered=1)
        deduped, decoded = decode_decisions(meta, arrays)
        assert deduped == 1
        assert decoded == decisions

    def test_kind_mismatch_rejected(self):
        meta, arrays = encode_requests(stream_pairs(stream_requests()[:2]))
        with pytest.raises(ValueError, match="decision"):
            decode_decisions(meta, arrays)
        meta, arrays = encode_decisions([])
        with pytest.raises(ValueError, match="request"):
            decode_requests(meta, arrays)


class TestInlineFleet:
    def test_serves_everything_deterministically(self, tiny_bundle,
                                                 tmp_path):
        config = FleetConfig(shards=2, batch_max=16)

        def run(root):
            report, decisions, states = run_fleet_soak(
                SPEC, tiny_bundle, config=config, state_root=root,
            )
            return report, decisions, states

        report_a, decisions_a, states_a = run(tmp_path / "a")
        report_b, decisions_b, states_b = run(tmp_path / "b")
        assert report_a.total == SPEC.requests
        assert report_a.answered == SPEC.requests
        key = lambda d: d.index
        assert [
            (d.index, d.threads, d.tier)
            for d in sorted(decisions_a, key=key)
        ] == [
            (d.index, d.threads, d.tier)
            for d in sorted(decisions_b, key=key)
        ]
        assert set(states_a) == set(states_b)
        for stream in states_a:
            assert np.array_equal(states_a[stream]["selector"]["V"],
                                  states_b[stream]["selector"]["V"])

    def test_streams_are_pinned_to_shards(self, tiny_bundle, tmp_path):
        config = FleetConfig(shards=2, batch_max=16)
        report, decisions, _ = run_fleet_soak(
            SPEC, tiny_bundle, config=config, state_root=tmp_path,
        )
        # every shard report covers exactly the requests of its streams
        router = ShardRouter(2)
        expected = [0, 0]
        for request in stream_requests():
            expected[router.route(request.ctx.loop_name)] += 1
        assert [r.total for r in report.per_shard] == expected

    def test_batch_max_flushes(self, tiny_bundle, tmp_path):
        config = FleetConfig(shards=1, batch_max=8,
                             batch_linger_s=3600.0)
        report, _, _ = run_fleet_soak(
            SPEC, tiny_bundle, config=config, state_root=tmp_path,
        )
        # with an effectively infinite linger, every full flush is
        # exactly batch_max and only the final drain flush is short
        assert report.batch_sizes["max"] == 8.0
        assert report.total == SPEC.requests

    def test_linger_flushes_partial_batches(self, tiny_bundle,
                                            tmp_path):
        ticks = iter(float(i) for i in range(10_000))
        fleet = PolicyFleet(
            lambda: build_policy(tiny_bundle),
            FleetConfig(shards=1, batch_max=32, batch_linger_s=0.5),
            state_root=tmp_path, clock=lambda: next(ticks),
        )
        requests = stream_requests()
        fleet.submit(requests[0])
        # each submit advances the fake clock well past the linger
        # deadline, so the next submit's poll flushes the single
        # pending request instead of waiting for batch_max
        fleet.submit(requests[1])
        assert len(fleet.decisions) >= 1
        fleet.close()

    def test_closed_fleet_rejects_submits(self, tiny_bundle, tmp_path):
        fleet = PolicyFleet(
            lambda: build_policy(tiny_bundle),
            FleetConfig(shards=1), state_root=tmp_path,
        )
        fleet.close()
        with pytest.raises(RuntimeError):
            fleet.submit(stream_requests()[0])
        with pytest.raises(RuntimeError):
            fleet.close()


class TestShardWorkerDedupe:
    def test_redelivered_prefix_is_marked_recovered(self, tiny_bundle,
                                                    tmp_path):
        pairs = stream_pairs(stream_requests()[:24])
        worker = ShardWorker(lambda: build_policy(tiny_bundle),
                             ServeConfig(), tmp_path / "state")
        first, deduped = worker.serve_batch(0, pairs[:16])
        assert deduped == 0
        assert len(first) == 16
        worker.close()

        # a replacement recovering from the same journals recognises
        # the already-served per-stream prefixes of a re-delivery
        replacement = ShardWorker(lambda: build_policy(tiny_bundle),
                                  ServeConfig(), tmp_path / "state")
        decisions, deduped = replacement.serve_batch(0, pairs[8:24])
        assert deduped == 8
        assert [d.tier for d in decisions[:8]] == [RECOVERED_TIER] * 8
        assert all(d.threads is None for d in decisions[:8])
        assert all(d.tier != RECOVERED_TIER for d in decisions[8:])
        assert replacement.recovered == 8
        replacement.close()


class TestShipState:
    def test_ships_a_stream_dir_losslessly(self, tiny_bundle, tmp_path):
        # Migration's unit of shipment is one stream's directory: the
        # journal + snapshots travel, the destination gets a fresh
        # sidecar, and a worker over the copy resumes exactly where the
        # original stopped.
        source = tmp_path / "source"
        worker = ShardWorker(lambda: build_policy(tiny_bundle),
                             ServeConfig(snapshot_interval=4), source)
        pairs = stream_pairs(stream_requests()[:48])
        worker.serve_batch(0, pairs)
        worker.close()

        # snapshots key on the stream's own request indices — ship a
        # stream that actually crossed a snapshot boundary
        stream = next(
            s for s in dict(pairs)
            if any((source / stream_dirname(s)).glob("snapshot-*.json"))
        )
        copy = tmp_path / "copy"
        destination = copy / stream_dirname(stream)
        shipped = ship_state(source / stream_dirname(stream),
                             destination)
        names = {p.name for p in shipped}
        assert "journal.jsonl" in names
        assert any(n.startswith("snapshot-") for n in names)
        dump_checked_json({"stream": stream},
                          destination / "stream.json")

        twin = ShardWorker(lambda: build_policy(tiny_bundle),
                           ServeConfig(), copy)
        assert twin.resume_map() == {stream: max(
            r.index for s, r in pairs if s == stream) + 1}
        redelivery = [(s, r) for s, r in pairs if s == stream]
        decisions, deduped = twin.serve_batch(0, redelivery)
        assert deduped == len(redelivery)
        twin.close()

    def test_empty_source_ships_nothing(self, tmp_path):
        assert ship_state(tmp_path / "missing", tmp_path / "dest") == []
        assert (tmp_path / "dest").is_dir()


@needs_shm
class TestProcessFleet:
    def test_decisions_match_inline_twin(self, tiny_bundle, tmp_path):
        config = FleetConfig(shards=2, batch_max=16, ring_slots=2)
        _, inline_decisions, inline_states = run_fleet_soak(
            SPEC, tiny_bundle, config=config,
            state_root=tmp_path / "inline",
        )
        report, process_decisions, process_states = run_fleet_soak(
            SPEC, tiny_bundle, config=config,
            state_root=tmp_path / "proc", processes=True,
        )
        assert report.total == SPEC.requests
        key = lambda d: d.index
        assert [
            (d.index, d.threads, d.tier, d.shed)
            for d in sorted(inline_decisions, key=key)
        ] == [
            (d.index, d.threads, d.tier, d.shed)
            for d in sorted(process_decisions, key=key)
        ]
        assert set(inline_states) == set(process_states)
        for stream in inline_states:
            for field in ("V", "b", "norm_mean", "norm_m2"):
                assert np.array_equal(
                    np.asarray(inline_states[stream]["selector"][field]),
                    np.asarray(process_states[stream]["selector"][field]),
                ), (stream, field)

    def test_requires_state_root(self, tiny_bundle):
        with pytest.raises(ValueError, match="state_root"):
            PolicyFleet(lambda: build_policy(tiny_bundle),
                        FleetConfig(shards=1), processes=True)

    def test_no_segments_leak(self, tiny_bundle, tmp_path):
        import os

        before = {
            n for n in os.listdir("/dev/shm") if n.startswith("repro-")
        }
        run_fleet_soak(
            SPEC, tiny_bundle,
            config=FleetConfig(shards=2, batch_max=16),
            state_root=tmp_path, processes=True,
        )
        after = {
            n for n in os.listdir("/dev/shm") if n.startswith("repro-")
        }
        assert after <= before


@needs_shm
class TestFailover:
    def test_shard_kill_recovers_losslessly(self, tiny_bundle,
                                            tmp_path):
        outcome = verify_fleet_recovery(
            SPEC, tiny_bundle, kill_at=120, state_root=tmp_path,
            config=FleetConfig(shards=2, batch_max=16, ring_slots=2),
        )
        assert outcome["identical"] is True
        assert outcome["failovers"] >= 1
        assert outcome["compared_decisions"] + outcome["recovered"] \
            == SPEC.requests

    def test_kill_without_failover_is_an_invariant_error(
            self, tiny_bundle, tmp_path, monkeypatch):
        # sanity on the harness itself: if the kill hook were a no-op
        # the soak must fail loudly, not report a hollow pass
        monkeypatch.setattr(PolicyFleet, "kill_shard",
                            lambda self, index: 0)
        with pytest.raises(SoakInvariantError, match="no failover"):
            run_fleet_soak(
                SPEC, tiny_bundle,
                config=FleetConfig(shards=2, batch_max=16),
                state_root=tmp_path, processes=True, kill_at=120,
            )

    def test_kill_requires_process_mode(self, tiny_bundle, tmp_path):
        with pytest.raises(ValueError, match="process mode"):
            run_fleet_soak(
                SPEC, tiny_bundle, config=FleetConfig(shards=1),
                state_root=tmp_path, kill_at=10,
            )


class TestBreakerIsolation:
    def test_one_shards_trips_do_not_leak_into_siblings(
            self, tiny_bundle, tmp_path):
        # Poison exactly the streams owned by one shard: a sensor NaN
        # window corrupts every request, but we only *submit* corrupted
        # requests for the victim shard's streams.
        config = FleetConfig(shards=2, batch_max=16)
        router = ShardRouter(config.shards)
        clean = SoakSpec(requests=240, seed=3)
        dirty = SoakSpec(requests=240, seed=3,
                         sensor=SensorFaultSpec(mode="nan", rate=1.0,
                                                seed=3),
                         fault_window=(0.0, 1.0))
        victim = router.route(make_request(clean, 0).ctx.loop_name)

        fleet = PolicyFleet(
            lambda: build_policy(tiny_bundle), config,
            state_root=tmp_path,
        )
        for index in range(clean.requests):
            stream = make_request(clean, index).ctx.loop_name
            spec = dirty if router.route(stream) == victim else clean
            fleet.submit(make_request(spec, index))
        report = fleet.close()

        victim_report = report.per_shard[victim]
        sibling = report.per_shard[1 - victim]
        # the poisoned shard degrades...
        assert victim_report.trips >= 1
        assert victim_report.failures.get("degenerate-features", 0) > 0
        # ...and its siblings never notice: no trips, no failures, and
        # their journals carry exactly their own requests
        assert sibling.trips == 0
        assert sibling.failures == {}
        assert sibling.tier_decisions == {"mixture": sibling.total}
        assert sibling.journal["journal_records"] == sibling.total
        assert victim_report.journal["journal_records"] == \
            victim_report.total
