"""Crash-safe online learning: kill anywhere, lose nothing.

Two layers of evidence:

* property-style, at the persistence layer — random selector operation
  sequences, a simulated crash after *every* prefix, and the recovered
  selector must be bit-identical (exported state and held-out
  decisions) to one that never crashed;
* end-to-end, at the serving layer — the soak harness's kill/restart
  run compared against an uninterrupted twin, at several kill points
  including mid-burst, with chaos active.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import SensorFaultSpec
from repro.core.features import NUM_FEATURES
from repro.serve import (
    PolicyServer,
    ServeConfig,
    SoakSpec,
    build_policy,
    request_batches,
    run_soak,
    verify_recovery,
)
from repro.serve.journal import ServeStateStore
from repro.serve.soak import _state_mismatches


def random_ops(rng: np.random.Generator, count: int, num_experts: int):
    """A mixed stream of selector operations, reproducibly random."""
    ops = []
    for _ in range(count):
        features = rng.uniform(-2.0, 2.0, NUM_FEATURES)
        if rng.uniform() < 0.35:
            ops.append(("select", features))
        else:
            errors = rng.uniform(0.0, 1.0, num_experts)
            ops.append(("update", features, errors))
    return ops


def apply_op(policy, op) -> None:
    if op[0] == "select":
        policy.selector.select(op[1])
        policy.restore_pending(op[1])
    else:
        policy.selector.update(op[1], op[2])


def held_out_decisions(policy, rng: np.random.Generator, count: int = 16):
    """Decisions on a fresh feature stream (mutates the selector —
    call only after state comparison)."""
    return [
        policy.selector.select(rng.uniform(-2.0, 2.0, NUM_FEATURES))
        for _ in range(count)
    ]


class TestCrashAtEveryPrefix:
    """Random op sequences, a crash after every prefix, bit-identity."""

    OPS = 24

    def test_recovered_selector_is_bit_identical(self, tiny_bundle,
                                                 tmp_path):
        rng = np.random.default_rng(20260806)
        ops = random_ops(rng, self.OPS, len(tiny_bundle.experts))

        # Reference: the full sequence with no crash.
        reference = build_policy(tiny_bundle)
        for op in ops:
            apply_op(reference, op)
        reference_state = reference.export_online_state()["selector"]

        for prefix in range(self.OPS + 1):
            state_dir = tmp_path / f"prefix-{prefix}"
            # Run the prefix with journaling, then "crash" (abandon the
            # store without detaching or closing).
            victim = build_policy(tiny_bundle)
            store = ServeStateStore(state_dir, victim, snapshot_interval=7)
            store.recover()
            store.attach()
            for req, op in enumerate(ops[:prefix]):
                apply_op(victim, op)
                store.commit(req)
                store.maybe_snapshot(req)

            # Restart: recover, then replay the remainder of the world.
            revived = build_policy(tiny_bundle)
            resumed = ServeStateStore(state_dir, revived,
                                      snapshot_interval=7)
            next_req, _ = resumed.recover()
            assert next_req == prefix
            for op in ops[prefix:]:
                apply_op(revived, op)

            mismatches = _state_mismatches(
                reference_state,
                revived.export_online_state()["selector"],
            )
            assert not mismatches, (
                f"crash after {prefix}/{self.OPS} ops diverged "
                f"on {mismatches}"
            )

    def test_recovered_selector_decides_identically(self, tiny_bundle,
                                                    tmp_path):
        rng = np.random.default_rng(99)
        ops = random_ops(rng, 12, len(tiny_bundle.experts))
        reference = build_policy(tiny_bundle)
        for op in ops:
            apply_op(reference, op)

        victim = build_policy(tiny_bundle)
        store = ServeStateStore(tmp_path, victim, snapshot_interval=5)
        store.recover()
        store.attach()
        for req, op in enumerate(ops[:7]):
            apply_op(victim, op)
            store.commit(req)
            store.maybe_snapshot(req)
        # Crash, revive, finish.
        revived = build_policy(tiny_bundle)
        resumed = ServeStateStore(tmp_path, revived, snapshot_interval=5)
        resumed.recover()
        for op in ops[7:]:
            apply_op(revived, op)

        # Identical decisions on a held-out stream neither has seen
        # (including tie-breaker phase, which select() advances).
        held_out = np.random.default_rng(7)
        expected = held_out_decisions(reference,
                                      np.random.default_rng(7))
        assert held_out_decisions(revived, held_out) == expected


class TestServingKillRestart:
    """End-to-end kill/restart against the uninterrupted twin."""

    SPEC = SoakSpec(
        requests=240,
        sensor=SensorFaultSpec(mode="nan", rate=1.0),
        fault_window=(0.25, 0.55),
        burst_period=40,
        burst_size=10,
    )

    # 37: before the chaos window; 100: mid-window (degraded tier);
    # 203: mid-burst (bursts open at 200), after recovery.
    @pytest.mark.parametrize("kill_at", [37, 100, 203])
    def test_lossless_recovery(self, tiny_bundle, tmp_path, kill_at):
        outcome = verify_recovery(
            self.SPEC, tiny_bundle, kill_at=kill_at,
            state_dir=tmp_path,
            config=ServeConfig(snapshot_interval=32),
        )
        assert outcome["identical"]
        assert outcome["kill_at"] == kill_at
        assert outcome["resumed_from"] >= kill_at
        assert outcome["compared_decisions"] > 0

    def test_kill_actually_interrupts(self, tiny_bundle, tmp_path):
        report, _ = run_soak(
            self.SPEC, tiny_bundle, state_dir=tmp_path,
            config=ServeConfig(snapshot_interval=32), kill_at=100,
        )
        assert report.total < self.SPEC.requests
        # The journal carries the resume point: a restarted server
        # picks up where the victim died.
        revived = PolicyServer(
            build_policy(tiny_bundle),
            ServeConfig(snapshot_interval=32),
            state_dir=tmp_path,
        )
        assert revived.next_index == report.total
        revived.close()

    def test_mid_burst_resume_sheds_consistently(self, tiny_bundle,
                                                 tmp_path):
        # A crash *inside* a burst batch (commits are per request, so
        # this is a real crash window): the revived server must shed by
        # logical burst position, matching the uninterrupted twin.
        spec = SoakSpec(requests=60, burst_period=20, burst_size=10)
        config = ServeConfig(queue_capacity=4, snapshot_interval=16)

        twin = PolicyServer(build_policy(tiny_bundle), config,
                            state_dir=tmp_path / "twin")
        twin_decisions = []
        for position, batch in request_batches(spec, 0):
            twin_decisions.extend(
                twin.offer(batch, start_position=position)
            )
        twin.close()

        victim = PolicyServer(build_policy(tiny_bundle), config,
                              state_dir=tmp_path / "crash")
        for position, batch in request_batches(spec, 0):
            if batch[0].index == 20:
                # Three requests into the burst, the process dies.
                victim.offer(batch[:3], start_position=position)
                break
            victim.offer(batch, start_position=position)

        revived = PolicyServer(build_policy(tiny_bundle), config,
                               state_dir=tmp_path / "crash")
        assert revived.next_index == 23
        resumed = []
        for position, batch in request_batches(spec, revived.next_index):
            resumed.extend(revived.offer(batch, start_position=position))
        revived.close()

        by_index = {d.index: d for d in twin_decisions}
        for decision in resumed:
            twin_decision = by_index[decision.index]
            assert (decision.threads, decision.tier, decision.shed) == (
                twin_decision.threads, twin_decision.tier,
                twin_decision.shed,
            )
        # The resumed burst tail really was shed (capacity 4 < burst
        # size 10), by position — not re-admitted from scratch.
        assert any(d.shed for d in resumed if 20 <= d.index < 30)

    def test_verify_recovery_validates_kill_point(self, tiny_bundle,
                                                  tmp_path):
        with pytest.raises(ValueError):
            verify_recovery(self.SPEC, tiny_bundle, kill_at=0,
                            state_dir=tmp_path)
