"""Journal and snapshot durability: torn tails, corruption, recovery.

Every failure injected here is a crash artifact the serving runtime
promises to absorb: a torn final journal line, a flipped byte mid-file,
a corrupted snapshot.  The contract is always the same — quarantine the
evidence, fall back to the last good state, keep serving.
"""

from __future__ import annotations

import json

import pytest

from repro.core.persistence import payload_checksum
from repro.serve import SelectorJournal, SnapshotStore
from repro.serve.journal import SNAPSHOTS_KEPT, ServeStateStore


class TestSelectorJournal:
    def test_append_replay_round_trip(self, tmp_path):
        journal = SelectorJournal(tmp_path / "journal.jsonl")
        journal.append(0, [["select", [1.0, 2.0]]], {"breaker": {"tier": 0}})
        journal.append(1, [["update", [1.0], [0.5, 0.25]], ["clear"]])
        journal.close()
        records = list(journal.replay())
        assert records == [
            (0, [["select", [1.0, 2.0]]], {"breaker": {"tier": 0}}),
            (1, [["update", [1.0], [0.5, 0.25]], ["clear"]], {}),
        ]

    def test_replay_filters_by_request_index(self, tmp_path):
        journal = SelectorJournal(tmp_path / "journal.jsonl")
        for req in range(5):
            journal.append(req, [])
        journal.close()
        assert [req for req, _, _ in journal.replay(after_req=2)] == [3, 4]

    def test_torn_tail_quarantined_and_truncated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SelectorJournal(path)
        journal.append(0, [["clear"]])
        journal.append(1, [["clear"]])
        journal.close()
        # The classic crash artifact: a final line cut mid-write.
        with open(path, "a") as fh:
            fh.write('{"req": 2, "ops": [')
        records = list(journal.replay())
        assert [req for req, _, _ in records] == [0, 1]
        assert journal.tails_quarantined == 1
        (tail,) = (path.parent / "quarantine").iterdir()
        assert tail.name.startswith("journal.jsonl.tail-")
        assert tail.read_text() == '{"req": 2, "ops": ['
        # The journal itself is healed: appends continue cleanly.
        journal.append(2, [["clear"]])
        journal.close()
        assert [req for req, _, _ in journal.replay()] == [0, 1, 2]

    def test_checksum_mismatch_stops_replay(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SelectorJournal(path)
        for req in range(3):
            journal.append(req, [["clear"]])
        journal.close()
        lines = path.read_text().splitlines()
        # Flip the second record's payload without fixing its crc.
        record = json.loads(lines[1])
        record["ops"] = [["update", [9.0], [9.0]]]
        lines[1] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        records = list(journal.replay())
        # Replay trusts nothing after the first bad record.
        assert [req for req, _, _ in records] == [0]
        assert journal.tails_quarantined == 1

    def test_record_crc_covers_whole_payload(self, tmp_path):
        journal = SelectorJournal(tmp_path / "journal.jsonl")
        journal.append(7, [["select", [0.5]]], {"breaker": {"tier": 1}})
        journal.close()
        (line,) = (tmp_path / "journal.jsonl").read_text().splitlines()
        record = json.loads(line)
        assert record["crc"] == payload_checksum({
            "req": 7, "ops": [["select", [0.5]]],
            "extra": {"breaker": {"tier": 1}},
        })

    def test_truncate_empties_the_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SelectorJournal(path)
        journal.append(0, [["clear"]])
        journal.truncate()
        assert path.read_text() == ""
        assert list(journal.replay()) == []


class TestSnapshotStore:
    def test_retention_keeps_newest(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for req in (10, 20, 30, 40):
            store.save(req, {"value": req})
        names = sorted(p.name for p in tmp_path.glob("snapshot-*.json"))
        assert len(names) == SNAPSHOTS_KEPT
        assert store.load_latest() == (40, {"value": 40})

    def test_corrupt_snapshot_falls_back_to_predecessor(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(10, {"value": 10})
        newest = store.save(20, {"value": 20})
        newest.write_text("not json at all")
        assert store.load_latest() == (10, {"value": 10})
        assert store.snapshots_quarantined == 1
        (quarantined,) = (tmp_path / "quarantine").iterdir()
        assert quarantined.name == newest.name

    def test_all_snapshots_corrupt_returns_none(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for req in (10, 20):
            store.save(req, {"value": req}).write_text("garbage")
        assert store.load_latest() is None
        assert store.snapshots_quarantined == 2


class _RecordingPolicy:
    """Minimal stand-in implementing the store's policy surface."""

    def __init__(self):
        self.selector = self
        self.journal = None
        self.loaded = None
        self.applied = []

    # selector surface
    def attach_journal(self, sink):
        self.sink = sink

    def detach_journal(self):
        self.sink = None

    def update(self, features, errors):
        self.applied.append(("update", list(features), list(errors)))

    def select(self, features):
        self.applied.append(("select", list(features)))
        return 0

    # policy surface
    def restore_pending(self, features):
        self.applied.append(("restore", list(features)))

    def clear_pending(self):
        self.applied.append(("clear",))

    def load_online_state(self, state):
        self.loaded = state

    def export_online_state(self):
        return {"applied": len(self.applied)}


class TestServeStateStore:
    def test_fresh_directory_recovers_to_start(self, tmp_path):
        store = ServeStateStore(tmp_path, _RecordingPolicy())
        assert store.recover() == (0, {})

    def test_recovery_replays_ops_through_the_policy(self, tmp_path):
        journal = SelectorJournal(tmp_path / "journal.jsonl")
        journal.append(0, [["select", [1.0, 2.0]]], {"breaker": {"tier": 0}})
        journal.append(1, [["update", [3.0], [0.5]], ["clear"]],
                       {"breaker": {"tier": 1}})
        journal.close()
        policy = _RecordingPolicy()
        store = ServeStateStore(tmp_path, policy)
        next_req, extra = store.recover()
        assert next_req == 2
        assert extra == {"breaker": {"tier": 1}}
        assert policy.applied == [
            ("select", [1.0, 2.0]), ("restore", [1.0, 2.0]),
            ("update", [3.0], [0.5]), ("clear",),
        ]
        assert store.replayed_records == 2

    def test_snapshot_bounds_replay(self, tmp_path):
        policy = _RecordingPolicy()
        store = ServeStateStore(tmp_path, policy, snapshot_interval=2)
        store.attach()
        for req in range(5):
            store.commit(req, {"breaker": {"tier": 0}})
            store.maybe_snapshot(req, {"breaker": {"tier": 0}})
        store.close()
        # Snapshots landed at reqs 1 and 3; the journal holds only 4.
        restarted = _RecordingPolicy()
        resumed = ServeStateStore(tmp_path, restarted, snapshot_interval=2)
        next_req, _ = resumed.recover()
        assert next_req == 5
        assert restarted.loaded is not None
        assert resumed.replayed_records == 1

    def test_snapshot_interval_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ServeStateStore(tmp_path, _RecordingPolicy(),
                            snapshot_interval=0)


class TestSync:
    def test_sync_fsyncs_the_open_journal(self, tmp_path):
        from repro.serve.journal import SelectorJournal

        journal = SelectorJournal(tmp_path / "journal.jsonl")
        journal.append(0, [["update", 1]])
        journal.sync()
        # the record is durable before close: a reader sees it now
        twin = SelectorJournal(tmp_path / "journal.jsonl")
        assert [(req, ops) for req, ops, _ in twin.replay()] == [
            (0, [["update", 1]])
        ]
        journal.close()
