"""Live elastic resharding: planning, migration, crash windows, twins."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.persistence import dump_checked_json
from repro.exec import shm
from repro.serve.fleet import (
    RECOVERED_TIER,
    FleetConfig,
    PolicyFleet,
    ShardRouter,
    stream_dirname,
)
from repro.serve.resize import (
    RESIZE_STEPS,
    FleetTopology,
    plan_resize,
    shard_dirname,
    sweep_state_root,
)
from repro.serve.soak import (
    SoakSpec,
    build_policy,
    make_request,
    run_fleet_soak,
    verify_resize,
)

needs_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="POSIX shared memory unavailable"
)

SPEC = SoakSpec(requests=240, seed=3)

STREAMS = sorted({
    make_request(SPEC, i).ctx.loop_name for i in range(SPEC.requests)
})


def drive(fleet, spec=SPEC, start=0, stop=None):
    for index in range(start, stop if stop is not None else spec.requests):
        fleet.submit(make_request(spec, index))


class TestPlanResize:
    def test_growth_migrates_only_claimed_streams(self):
        plan = plan_resize([0, 1], [0, 1, 2, 3], STREAMS)
        assert plan.added == (2, 3)
        assert plan.removed == ()
        assert plan.unchanged == (0, 1)
        old_router, new_router = ShardRouter([0, 1]), ShardRouter(
            [0, 1, 2, 3])
        for stream in STREAMS:
            src, dst = old_router.route(stream), new_router.route(stream)
            if src != dst:
                # consistent hashing: every move lands on a new member
                assert dst in (2, 3)
                assert plan.migrations[stream] == (src, dst)
            else:
                assert stream not in plan.migrations

    def test_shrink_migrates_only_the_leavers_streams(self):
        plan = plan_resize([0, 1, 2, 3], [0, 1, 2], STREAMS)
        assert plan.removed == (3,)
        for stream, (src, dst) in plan.migrations.items():
            assert src == 3
            assert dst in (0, 1, 2)

    def test_noop_resize_migrates_nothing(self):
        plan = plan_resize([0, 1], [1, 0], STREAMS)
        assert plan.migrations == {}
        assert plan.added == plan.removed == ()

    def test_empty_membership_rejected(self):
        with pytest.raises(ValueError):
            plan_resize([0], [], STREAMS)


class TestFleetTopology:
    def test_round_trips_through_disk(self, tmp_path):
        topology = FleetTopology(
            epoch=3, members=[0, 2, 5],
            generations={0: 1, 5: 2},
            pending={"loop_a": str(tmp_path / "somewhere")},
        )
        topology.save(tmp_path)
        loaded = FleetTopology.load_or_create(tmp_path, [0])
        assert loaded.epoch == 3
        assert loaded.members == [0, 2, 5]
        assert loaded.generations == {0: 1, 5: 2}
        assert loaded.pending == {"loop_a": str(tmp_path / "somewhere")}

    def test_torn_document_quarantined_and_defaulted(self, tmp_path):
        path = tmp_path / FleetTopology.FILENAME
        path.write_text("{not json")
        loaded = FleetTopology.load_or_create(tmp_path, [0, 1])
        assert loaded.epoch == 0
        assert loaded.members == [0, 1]
        assert not path.exists()
        assert list((tmp_path / "quarantine").iterdir())


class TestSweep:
    def test_quarantines_stage_and_misrouted_dirs(self, tmp_path):
        topology = FleetTopology(members=[0, 1])
        router = ShardRouter([0, 1])
        owned = next(s for s in STREAMS if router.route(s) == 0)
        stray = next(s for s in STREAMS if router.route(s) == 1)
        home = tmp_path / shard_dirname(0, 0)
        for stream in (owned, stray):
            directory = home / stream_dirname(stream)
            directory.mkdir(parents=True)
            dump_checked_json({"stream": stream},
                              directory / "stream.json")
        staging = home / (stream_dirname(owned) + ".stage")
        staging.mkdir()

        quarantined = sweep_state_root(tmp_path, topology)
        names = {p.name for p in quarantined}
        assert any("stage" in n for n in names)
        assert any(stream_dirname(stray) in n for n in names)
        # the correctly-routed stream is untouched
        assert (home / stream_dirname(owned)).is_dir()
        assert not staging.exists()


class TestInlineResize:
    def test_resized_run_matches_static_twin(self, tiny_bundle, tmp_path):
        config = FleetConfig(shards=2, batch_max=16)
        _, twin_decisions, twin_states = run_fleet_soak(
            SPEC, tiny_bundle, config=config,
            state_root=tmp_path / "twin",
        )
        report, decisions, states = run_fleet_soak(
            SPEC, tiny_bundle, config=config,
            state_root=tmp_path / "resized",
            resize_at={80: 4, 160: 3},
        )
        assert report.resizes == 2
        assert report.epochs == 2
        assert report.shards == 3
        assert report.streams_migrated >= 1
        key = lambda d: d.index
        assert [
            (d.index, d.threads, d.tier, d.shed)
            for d in sorted(twin_decisions, key=key)
        ] == [
            (d.index, d.threads, d.tier, d.shed)
            for d in sorted(decisions, key=key)
        ]
        assert set(states) == set(twin_states)
        for stream in states:
            assert np.array_equal(states[stream]["selector"]["V"],
                                  twin_states[stream]["selector"]["V"])

    def test_member_replacement(self, tiny_bundle, tmp_path):
        fleet = PolicyFleet(
            lambda: build_policy(tiny_bundle),
            FleetConfig(shards=2, batch_max=16), state_root=tmp_path,
        )
        drive(fleet, stop=120)
        plan = fleet.resize(members=[0, 2])
        assert plan.added == (2,)
        assert plan.removed == (1,)
        assert fleet.members == [0, 2]
        drive(fleet, start=120)
        report = fleet.close()
        assert report.answered == SPEC.requests
        assert report.shard_ids == [0, 2] or set(
            report.shard_ids) == {0, 1, 2}

    def test_resize_requires_state_root(self, tiny_bundle):
        fleet = PolicyFleet(lambda: build_policy(tiny_bundle),
                            FleetConfig(shards=2))
        with pytest.raises(RuntimeError, match="state_root"):
            fleet.resize(4)
        fleet.close()

    def test_topology_survives_restart(self, tiny_bundle, tmp_path):
        fleet = PolicyFleet(
            lambda: build_policy(tiny_bundle),
            FleetConfig(shards=2, batch_max=16), state_root=tmp_path,
        )
        drive(fleet, stop=60)
        fleet.resize(3)
        drive(fleet, start=60)
        fleet.close()

        # a new fleet over the same root adopts the committed shape,
        # not the configured one
        reborn = PolicyFleet(
            lambda: build_policy(tiny_bundle),
            FleetConfig(shards=2, batch_max=16), state_root=tmp_path,
        )
        assert reborn.members == [0, 1, 2]
        assert reborn.epoch == 1
        reborn.close()


class InjectedCrash(RuntimeError):
    pass


@pytest.mark.parametrize("step", RESIZE_STEPS)
class TestCrashDuringResize:
    """SIGKILL-equivalent stops at every migration window.

    The fleet dies (``abort``: no flush, no close — disk stays exactly
    as the crash left it) while resizing 3→2; a rebuilt fleet over the
    same root must recover a consistent shape, quarantine any staging
    leftovers, and serve the re-driven stream with zero lost and zero
    duplicated journaled decisions — the journal dedupes everything
    already served, and the end state matches an uninterrupted twin.
    """

    HALF = 120

    def test_crash_is_lossless(self, step, tiny_bundle, tmp_path):
        config = FleetConfig(shards=3, batch_max=16)

        def hook(name):
            if name == step:
                raise InjectedCrash(name)

        fleet = PolicyFleet(
            lambda: build_policy(tiny_bundle), config,
            state_root=tmp_path / "crashed",
        )
        drive(fleet, stop=self.HALF)
        with pytest.raises(InjectedCrash):
            fleet.resize(2, crash_hook=hook)
        served_before = {d.index for d in fleet.decisions
                         if d.tier != RECOVERED_TIER}
        fleet.abort()

        reborn = PolicyFleet(
            lambda: build_policy(tiny_bundle), config,
            state_root=tmp_path / "crashed",
        )
        # a crash before the topology commit rolls the resize back; at
        # or after it, the resize fully happened
        if step in ("commit", "retire"):
            assert reborn.members == [0, 1]
            assert reborn.epoch == 1
        else:
            assert reborn.members == [0, 1, 2]
            assert reborn.epoch == 0
        if step == "place":
            # the crash left fully-staged directories behind; recovery
            # must quarantine them, never open them
            quarantine = (tmp_path / "crashed" / "quarantine")
            assert any("stage" in p.name
                       for p in quarantine.iterdir())
        drive(reborn)  # re-drive the whole stream from request 0
        report = reborn.close()

        recovered = [d for d in reborn.decisions
                     if d.tier == RECOVERED_TIER]
        fresh = {d.index for d in reborn.decisions
                 if d.tier != RECOVERED_TIER}
        # zero duplicates: nothing served before the crash is served
        # again; zero losses: together the two runs answer everything
        assert fresh.isdisjoint(served_before)
        assert fresh | served_before == set(range(SPEC.requests))
        assert len(recovered) == len(served_before)
        assert report.answered == SPEC.requests - len(served_before)
        assert report.recovered == len(served_before)

        _, _, twin_states = run_fleet_soak(
            SPEC, tiny_bundle, config=config,
            state_root=tmp_path / "twin",
        )
        assert set(reborn.stream_states) == set(twin_states)
        for stream in twin_states:
            for field in ("V", "b", "norm_mean", "norm_m2"):
                assert np.array_equal(
                    np.asarray(
                        reborn.stream_states[stream]["selector"][field]),
                    np.asarray(twin_states[stream]["selector"][field]),
                ), (stream, field)


@needs_shm
class TestProcessResize:
    def test_grow_and_shrink_mid_soak(self, tiny_bundle, tmp_path):
        config = FleetConfig(shards=2, batch_max=16, ring_slots=2)
        report, _, _ = run_fleet_soak(
            SPEC, tiny_bundle, config=config, state_root=tmp_path,
            processes=True, resize_at={80: 4, 160: 3}, supervise=True,
        )
        assert report.resizes == 2
        assert report.shards == 3
        assert report.answered == SPEC.requests

    def test_verify_resize_with_shard_kill(self, tiny_bundle, tmp_path):
        # the acceptance twin check: 2→4→3 plus one SIGKILL mid-soak,
        # bit-identical to an uninterrupted never-resized inline twin
        outcome = verify_resize(
            SPEC, tiny_bundle, {80: 4, 160: 3}, tmp_path,
            kill_at=120,
            config=FleetConfig(shards=2, batch_max=16, ring_slots=2),
        )
        assert outcome["identical"] is True
        assert outcome["resizes"] == 2
        assert outcome["final_shards"] == 3
        assert outcome["failovers"] >= 1
        assert outcome["compared_decisions"] + outcome["recovered"] \
            == SPEC.requests
