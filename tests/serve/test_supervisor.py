"""The supervising fleet controller: heartbeats, budgets, degradation."""

from __future__ import annotations

import os
import signal

import pytest

from repro.exec import shm
from repro.exec.fault import RetryPolicy
from repro.serve.fleet import (
    FleetConfig,
    PolicyFleet,
    ShardLostError,
    _ProcessShard,
)
from repro.serve.soak import SoakSpec, build_policy, make_request
from repro.serve.supervisor import FleetSupervisor, SupervisorConfig

needs_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="POSIX shared memory unavailable"
)

SPEC = SoakSpec(requests=240, seed=3)


def drive(fleet, start=0, stop=None):
    for index in range(start, stop if stop is not None else SPEC.requests):
        fleet.submit(make_request(SPEC, index))


class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="heartbeat"):
            SupervisorConfig(heartbeat_interval_s=0.0)
        with pytest.raises(ValueError, match="exceed"):
            SupervisorConfig(heartbeat_interval_s=2.0,
                             liveness_timeout_s=1.0)
        with pytest.raises(ValueError, match="max_restarts"):
            SupervisorConfig(max_restarts=-1)

    def test_doorbell_timeout_validated(self):
        with pytest.raises(ValueError):
            FleetConfig(doorbell_timeout_s=0.0)


@needs_shm
class TestLiveness:
    def test_doorbell_timeout_raises_instead_of_hanging(
            self, tiny_bundle, tmp_path):
        # Satellite 1: a wedged shard must surface as ShardLostError on
        # the bounded control-pipe receive, never as a parent hang.
        fleet = PolicyFleet(
            lambda: build_policy(tiny_bundle),
            FleetConfig(shards=1, batch_max=16, ring_slots=2),
            state_root=tmp_path, processes=True,
        )
        try:
            shard = fleet._shards[0]
            os.kill(shard.process.pid, signal.SIGSTOP)
            with pytest.raises(ShardLostError, match="unresponsive"):
                shard._recv(timeout_s=0.3)
            assert fleet.events.get("heartbeat_timeouts") == 1
        finally:
            os.kill(fleet._shards[0].process.pid, signal.SIGCONT)
            fleet.abort()

    def test_heartbeat_timeout_triggers_failover(self, tiny_bundle,
                                                 tmp_path):
        # A shard that wedges while idle (no decisions in flight) is
        # detected by the heartbeat deadline, failed over, and serving
        # continues losslessly on the replacement.
        fleet = PolicyFleet(
            lambda: build_policy(tiny_bundle),
            FleetConfig(shards=2, batch_max=16, ring_slots=2),
            state_root=tmp_path, processes=True,
        )
        supervisor = FleetSupervisor(
            fleet,
            SupervisorConfig(heartbeat_interval_s=0.05,
                             liveness_timeout_s=0.3),
            sleep=lambda seconds: None,
        )
        drive(fleet, stop=120)
        fleet.drain()
        victim = fleet._shards[0]
        os.kill(victim.process.pid, signal.SIGSTOP)
        victim.last_activity -= 10.0  # silence predates the deadline
        supervisor.tick()
        assert fleet._failovers >= 1
        assert supervisor.restarts.get(0, 0) == 1
        drive(fleet, start=120)
        report = fleet.close()
        assert report.answered + report.recovered == SPEC.requests
        assert report.restarts == 1


@needs_shm
class TestRestartBudget:
    def test_exhausted_budget_evacuates_then_reinstates(
            self, tiny_bundle, tmp_path):
        fleet = PolicyFleet(
            lambda: build_policy(tiny_bundle),
            FleetConfig(shards=2, batch_max=16, ring_slots=2),
            state_root=tmp_path, processes=True,
        )
        supervisor = FleetSupervisor(
            fleet,
            SupervisorConfig(max_restarts=0),
            sleep=lambda seconds: None,
        )
        drive(fleet, stop=120)
        fleet.drain()

        victim = fleet.members[0]
        fleet.kill_shard(victim)
        fleet.poll()  # first dispatch after the kill detects the loss
        drive(fleet, start=120, stop=180)
        # budget 0 → the loss evacuated the member instead of
        # restarting it; the ring re-homed its streams to the survivor
        assert supervisor.evacuated == [victim]
        assert victim not in fleet.members
        assert len(fleet.members) == 1

        plan = supervisor.reinstate(victim)
        assert victim in fleet.members
        assert supervisor.evacuated == []
        assert victim in plan.added
        drive(fleet, start=180)
        report = fleet.close()
        assert report.answered + report.recovered == SPEC.requests
        assert report.evacuations == 1
        assert report.reinstatements == 1

    def test_reinstate_requires_evacuation(self, tiny_bundle, tmp_path):
        fleet = PolicyFleet(
            lambda: build_policy(tiny_bundle),
            FleetConfig(shards=1, batch_max=16),
            state_root=tmp_path,
        )
        supervisor = FleetSupervisor(fleet, sleep=lambda s: None)
        with pytest.raises(ValueError, match="not evacuated"):
            supervisor.reinstate(0)
        fleet.close()

    def test_last_member_is_never_evacuated(self, tiny_bundle,
                                            tmp_path):
        fleet = PolicyFleet(
            lambda: build_policy(tiny_bundle),
            FleetConfig(shards=1, batch_max=16),
            state_root=tmp_path,
        )
        supervisor = FleetSupervisor(
            fleet, SupervisorConfig(max_restarts=0),
            sleep=lambda s: None,
        )
        # even with an exhausted budget, a one-member fleet restarts —
        # evacuating the whole ring would drop every stream
        assert supervisor.verdict(0) == "restart"
        fleet.close()


@needs_shm
class TestSpawnRetry:
    def test_transient_spawn_failures_are_retried(self, tiny_bundle,
                                                  tmp_path, monkeypatch):
        # Satellite 2: shard spawn rides the executor's RetryPolicy
        # with deterministic jitter instead of failing the fleet.
        import repro.serve.fleet as fleet_module

        failures = {"remaining": 2}
        real = _ProcessShard

        def flaky(*args, **kwargs):
            if failures["remaining"] > 0:
                failures["remaining"] -= 1
                raise OSError("transient spawn failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(fleet_module, "_ProcessShard", flaky)
        slept = []
        fleet = PolicyFleet(
            lambda: build_policy(tiny_bundle),
            FleetConfig(shards=1, batch_max=16, ring_slots=2),
            state_root=tmp_path, processes=True,
            spawn_retry=RetryPolicy(max_retries=3, base_delay=0.01,
                                    max_delay=0.05),
            sleep=slept.append,
        )
        drive(fleet, stop=40)
        report = fleet.close()
        assert report.answered == 40
        assert report.spawn_retries == 2
        assert len(slept) == 2
        # deterministic jitter: the same key yields the same delays
        policy = RetryPolicy(max_retries=3, base_delay=0.01,
                             max_delay=0.05)
        assert slept == [policy.delay(attempt, "shard-0-g0")
                         for attempt in (1, 2)]

    def test_permanent_spawn_failure_surfaces(self, tiny_bundle,
                                              tmp_path, monkeypatch):
        import repro.serve.fleet as fleet_module

        def always_fails(*args, **kwargs):
            raise OSError("permanent spawn failure")

        monkeypatch.setattr(fleet_module, "_ProcessShard", always_fails)
        with pytest.raises(OSError, match="permanent"):
            PolicyFleet(
                lambda: build_policy(tiny_bundle),
                FleetConfig(shards=1, ring_slots=2),
                state_root=tmp_path, processes=True,
                spawn_retry=RetryPolicy(max_retries=2, base_delay=0.01,
                                        max_delay=0.05),
                sleep=lambda seconds: None,
            )
