"""The serving loop: admission, deadlines, and the degradation ladder.

The stub-policy tests pin down the loop mechanics deterministically
(shedding by batch position, deadline accounting through an injected
clock, breaker-driven tier walks); the mixture tests then drive the
real three-tier ladder through a chaos window and assert the paper's
deployment story — degrade fast, answer always, recover when the world
does.
"""

from __future__ import annotations

import pytest

from repro.compiler.features import CodeFeatures
from repro.core.policies.base import PolicyContext
from repro.runtime.tracing import ServeTracer
from repro.sched.stats import EnvironmentSample
from repro.serve import (
    BreakerConfig,
    PolicyServer,
    ServeConfig,
    ServeRequest,
    SoakSpec,
    run_soak,
)
from repro.chaos import SensorFaultSpec


def env_sample(**overrides) -> EnvironmentSample:
    base = dict(
        time=1.0, workload_threads=4.0, processors=16.0, runq_sz=2.0,
        ldavg_1=3.0, ldavg_5=2.5, cached_memory=0.5,
        pages_free_rate=0.25,
    )
    base.update(overrides)
    return EnvironmentSample(**base)


def request(index: int, available: int = 16) -> ServeRequest:
    ctx = PolicyContext(
        time=float(index),
        loop_name="loop",
        code=CodeFeatures(0.1, 0.2, 0.05),
        env=env_sample(processors=float(available)),
        available_processors=available,
        max_threads=32,
    )
    return ServeRequest(index=index, ctx=ctx)


class StubPolicy:
    """Two-tier ladder fodder: answers 4 threads, or fails on demand."""

    name = "stub"

    def __init__(self):
        self.failing = False

    def select(self, ctx: PolicyContext) -> int:
        if self.failing:
            raise RuntimeError("sensor meltdown")
        return 4


class FakeClock:
    """Advances a fixed amount per reading."""

    def __init__(self, step: float):
        self.step = step
        self.now = 0.0

    def __call__(self) -> float:
        self.now += self.step
        return self.now


BREAKER = BreakerConfig(
    trip_threshold=3, cooldown_requests=4, probe_successes=2
)


class TestAdmission:
    def test_overflow_is_shed_explicitly(self):
        server = PolicyServer(
            StubPolicy(), ServeConfig(queue_capacity=3, breaker=BREAKER)
        )
        batch = [request(i) for i in range(5)]
        decisions = server.offer(batch)
        assert [d.shed for d in decisions] == [
            False, False, False, True, True
        ]
        assert [d.threads for d in decisions[:3]] == [4, 4, 4]
        assert all(d.threads is None for d in decisions[3:])
        assert all(d.tier == "shed" for d in decisions[3:])
        report = server.report()
        assert (report.total, report.answered, report.shed) == (5, 3, 2)
        assert report.unanswered == 0

    def test_start_position_offsets_admission(self):
        # A batch resumed mid-burst sheds by its *logical* position,
        # not its position in the replayed batch.
        server = PolicyServer(
            StubPolicy(), ServeConfig(queue_capacity=3, breaker=BREAKER)
        )
        decisions = server.offer(
            [request(i) for i in range(3, 6)], start_position=2
        )
        assert [d.shed for d in decisions] == [False, True, True]


class TestDeadlines:
    def test_slow_tier_fails_over_and_is_ledgered(self):
        # Every clock reading advances 1s against a 0.5s budget: the
        # stub tier blows the deadline, the default tier (exempt, it
        # must answer) serves, and the miss is counted.
        clock = FakeClock(step=1.0)
        server = PolicyServer(
            StubPolicy(),
            ServeConfig(deadline_s=0.5, breaker=BREAKER),
            clock=clock,
        )
        decision = server.serve_one(request(0))
        assert decision.tier == "default"
        assert decision.failure == "deadline"
        assert decision.deadline_missed
        report = server.report()
        assert report.deadline_misses == 1
        assert report.failures == {"deadline": 1}
        assert report.latency["count"] == 1

    def test_fast_decisions_meet_the_deadline(self):
        clock = FakeClock(step=1e-6)
        server = PolicyServer(
            StubPolicy(),
            ServeConfig(deadline_s=0.5, breaker=BREAKER),
            clock=clock,
        )
        decision = server.serve_one(request(0))
        assert decision.tier == "stub"
        assert not decision.deadline_missed
        assert decision.failure is None


class TestDegradationLadder:
    def serve_n(self, server, n, start=0):
        return [server.serve_one(request(start + i)) for i in range(n)]

    def test_trips_to_default_and_recovers(self):
        policy = StubPolicy()
        tracer = ServeTracer()
        server = PolicyServer(
            policy, ServeConfig(breaker=BREAKER), tracer=tracer
        )
        # Healthy: the policy answers.
        assert self.serve_n(server, 2)[0].tier == "stub"
        # Meltdown: after trip_threshold consecutive failures the
        # breaker steps to the default tier; every request is still
        # answered (by the default) meanwhile.
        policy.failing = True
        melted = self.serve_n(server, 4, start=2)
        assert all(d.tier == "default" for d in melted)
        assert all(d.threads == 16 for d in melted)
        assert server.breaker.tier == 1
        assert [t.reason for t in tracer.transitions] == ["trip"]
        assert tracer.transitions[0].request_index == 4
        # Recovery: faults clear, the cooldown passes, probes succeed,
        # and the ladder steps back up.
        policy.failing = False
        self.serve_n(server, BREAKER.cooldown_requests
                     + BREAKER.probe_successes, start=6)
        assert server.breaker.tier == 0
        assert [t.reason for t in tracer.transitions] == ["trip", "probe"]
        assert server.serve_one(request(99)).tier == "stub"
        report = server.report()
        assert (report.trips, report.recoveries) == (1, 1)
        assert report.final_tier == "stub"

    def test_failed_probe_returns_to_lower_tier(self):
        policy = StubPolicy()
        server = PolicyServer(policy, ServeConfig(breaker=BREAKER))
        policy.failing = True
        self.serve_n(server, BREAKER.trip_threshold)
        self.serve_n(server, BREAKER.cooldown_requests, start=3)
        # Still failing when the probe half-opens: back to the default.
        probed = server.serve_one(request(50))
        assert probed.tier == "default"
        assert server.breaker.tier == 1
        assert server.report().probe_failures == 1

    def test_exception_failures_are_categorised(self):
        policy = StubPolicy()
        server = PolicyServer(policy, ServeConfig(breaker=BREAKER))
        policy.failing = True
        decision = server.serve_one(request(0))
        assert decision.failure == "exception"
        assert decision.tier == "default"
        assert server.report().failures["exception"] >= 1


class TestMixtureLadderUnderChaos:
    """The real ladder (mixture → expert → default) under sensor nans."""

    @pytest.fixture(scope="class")
    def soak(self, tiny_bundle):
        spec = SoakSpec(
            requests=400,
            sensor=SensorFaultSpec(mode="nan", rate=1.0),
            fault_window=(0.2, 0.5),
        )
        report, decisions = run_soak(spec, tiny_bundle, collect=True)
        return spec, report, decisions

    def test_steps_down_within_trip_threshold(self, soak):
        spec, report, _ = soak
        fault_start = int(spec.fault_window[0] * spec.requests)
        first = report.transitions[0]
        assert first.reason == "trip"
        assert first.request_index < fault_start + BreakerConfig().trip_threshold
        # With every request in the window degenerate, the ladder walks
        # all the way down: mixture -> expert -> default.
        trip_targets = [
            t.to_tier for t in report.transitions if t.reason == "trip"
        ]
        assert trip_targets[:2] == ["expert", "default"]
        assert report.failures["degenerate-features"] > 0

    def test_every_request_answered_in_range(self, soak):
        spec, report, decisions = soak
        assert report.total == spec.requests
        assert report.answered + report.shed == report.total
        assert report.unanswered == 0
        for decision in decisions:
            if not decision.shed:
                assert decision.threads is not None
                assert 1 <= decision.threads <= spec.processors

    def test_recovers_after_faults_clear(self, soak):
        _, report, _ = soak
        assert report.recoveries >= 2  # default -> expert -> mixture
        assert report.final_tier == "mixture"
        # The mixture is back in charge by the end of the stream.
        assert report.tier_decisions["mixture"] > 0
