"""Circuit-breaker ladder mechanics, in isolation.

The breaker is pure request-counted state: the same outcome sequence
must always produce the same transition sequence, and its state must
round-trip through :meth:`export_state` losslessly (it rides in every
journal record).
"""

from __future__ import annotations

import pytest

from repro.serve import BreakerConfig, CircuitBreaker

CONFIG = BreakerConfig(
    trip_threshold=3, cooldown_requests=4, probe_successes=2
)


def make_breaker(tiers: int = 3) -> CircuitBreaker:
    return CircuitBreaker(tiers, CONFIG)


class TestConfigValidation:
    @pytest.mark.parametrize("field", [
        "trip_threshold", "cooldown_requests", "probe_successes",
    ])
    def test_thresholds_must_be_positive(self, field):
        with pytest.raises(ValueError):
            BreakerConfig(**{field: 0})

    def test_needs_a_tier(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0)


class TestTrip:
    def test_consecutive_failures_trip(self):
        breaker = make_breaker()
        assert breaker.record_result(False) is None
        assert breaker.record_result(False) is None
        assert breaker.record_result(False) == "trip"
        assert breaker.tier == 1
        assert breaker.trips == 1

    def test_success_resets_the_failure_streak(self):
        breaker = make_breaker()
        breaker.record_result(False)
        breaker.record_result(False)
        breaker.record_result(True)
        # The streak restarts: two more failures are not enough.
        breaker.record_result(False)
        assert breaker.record_result(False) is None
        assert breaker.tier == 0

    def test_bottom_tier_never_trips_further(self):
        breaker = make_breaker(tiers=2)
        for _ in range(CONFIG.trip_threshold):
            breaker.record_result(False)
        assert breaker.tier == 1
        for _ in range(10):
            breaker.record_result(False)
        assert breaker.tier == 1
        assert breaker.trips == 1


class TestProbeRecovery:
    def tripped(self) -> CircuitBreaker:
        breaker = make_breaker()
        for _ in range(CONFIG.trip_threshold):
            breaker.record_result(False)
        assert breaker.tier == 1
        return breaker

    def test_no_probe_during_cooldown(self):
        breaker = self.tripped()
        for _ in range(CONFIG.cooldown_requests):
            assert not breaker.wants_probe()
            breaker.record_result(True)
        assert breaker.wants_probe()

    def test_probe_streak_steps_back_up(self):
        breaker = self.tripped()
        for _ in range(CONFIG.cooldown_requests):
            breaker.record_result(True)
        assert breaker.record_probe(True) is None
        assert breaker.record_probe(True) == "probe"
        assert breaker.tier == 0
        assert breaker.recoveries == 1

    def test_failed_probe_restarts_cooldown(self):
        breaker = self.tripped()
        for _ in range(CONFIG.cooldown_requests):
            breaker.record_result(True)
        assert breaker.record_probe(False) == "probe-failed"
        assert breaker.probe_failures == 1
        assert breaker.tier == 1
        assert not breaker.wants_probe()

    def test_healthy_top_tier_never_probes(self):
        breaker = make_breaker()
        for _ in range(20):
            assert not breaker.wants_probe()
            breaker.record_result(True)


class TestStatePersistence:
    def test_round_trip_mid_sequence(self):
        breaker = make_breaker()
        outcomes = [False, False, False, True, False, True, True]
        for ok in outcomes:
            breaker.record_result(ok)
        clone = make_breaker()
        clone.load_state(breaker.export_state())
        # From identical state, identical futures.
        future = [False, False, True, False, False, False]
        for ok in future:
            assert breaker.record_result(ok) == clone.record_result(ok)
        assert clone.export_state() == breaker.export_state()

    def test_out_of_range_tier_rejected(self):
        breaker = make_breaker(tiers=2)
        with pytest.raises(ValueError):
            breaker.load_state({"tier": 5})
