"""Live-system trace generation (Figure 1)."""

import pytest

from repro.machine.topology import HPC_SYSTEM
from repro.workload.trace import (
    FIFTY_HOURS,
    LiveTrace,
    generate_live_trace,
)


@pytest.fixture(scope="module")
def trace():
    return generate_live_trace(seed=11)


class TestGeneration:
    def test_duration(self, trace):
        assert trace.times[-1] == pytest.approx(FIFTY_HOURS, rel=0.01)

    def test_bounded_by_capacity(self, trace):
        capacity = HPC_SYSTEM.hw_contexts
        assert all(0 <= n <= capacity for n in trace.threads)

    def test_deterministic(self):
        a = generate_live_trace(seed=3)
        b = generate_live_trace(seed=3)
        assert a.threads == b.threads

    def test_seed_matters(self):
        a = generate_live_trace(seed=3)
        b = generate_live_trace(seed=4)
        assert a.threads != b.threads

    def test_is_dynamic(self, trace):
        """Figure 1 shows "highly dynamic system activity"."""
        values = set(trace.threads)
        assert len(values) > 50
        assert max(values) > 4 * min(values) + 1

    def test_diurnal_structure(self, trace):
        """Day halves should be busier than night halves on average."""
        import numpy as np
        threads = np.array(trace.threads, dtype=float)
        assert threads.std() > 0.05 * HPC_SYSTEM.hw_contexts


class TestWindow:
    def test_window_bounds(self, trace):
        window = trace.window(1000.0, 5000.0)
        assert all(1000.0 <= t < 5000.0 for t in window.times)

    def test_empty_window_rejected(self, trace):
        with pytest.raises(ValueError, match="empty"):
            trace.window(-100.0, -50.0)


class TestScaleDown:
    def test_proportional(self, trace):
        scaled = trace.scale_down(max_processors=32)
        ratio = 32 / HPC_SYSTEM.hw_contexts
        for (time, small), big in zip(scaled, trace.threads):
            if big == 0:
                assert small == 0
            else:
                assert small >= 1
                assert small <= max(1, round(big * ratio)) + 128

    def test_cap(self, trace):
        scaled = trace.scale_down(max_processors=8)
        assert max(n for _, n in scaled) <= 32  # 4x cap

    def test_validation(self, trace):
        with pytest.raises(ValueError):
            trace.scale_down(0)


class TestFailureAvailability:
    def test_failure_window_halves(self, trace):
        schedule = trace.availability_from_failure(
            max_processors=32,
            failure_start=trace.times[0] + 1000.0,
            failure_end=trace.times[0] + 3000.0,
        )
        assert schedule.available(500.0) == 32
        assert schedule.available(2000.0) == 16


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            LiveTrace(times=(0.0, 1.0), threads=(1,))

    def test_empty(self):
        with pytest.raises(ValueError):
            LiveTrace(times=(), threads=())
