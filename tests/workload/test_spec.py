"""Table 3 workload sets."""

import pytest

from repro.workload.spec import (
    LARGE_WORKLOADS,
    SMALL_WORKLOADS,
    WorkloadSet,
    workload_sets,
)


class TestTable3:
    def test_small_sets(self):
        assert SMALL_WORKLOADS[0].program_names == ("is", "cg")
        assert SMALL_WORKLOADS[1].program_names == ("ammp", "fft")

    def test_large_sets(self):
        assert LARGE_WORKLOADS[0].program_names == (
            "bt", "sp", "equake", "is", "cg", "art",
        )
        assert LARGE_WORKLOADS[1].program_names == (
            "bscholes", "lu", "bt", "sp", "fmine", "art", "mg",
        )

    def test_all_programs_resolve(self):
        for sets in (SMALL_WORKLOADS, LARGE_WORKLOADS):
            for workload in sets:
                programs = workload.programs()
                assert len(programs) == len(workload.program_names)

    def test_canonical_names(self):
        assert LARGE_WORKLOADS[1].canonical_names[0] == "blackscholes"
        assert SMALL_WORKLOADS[1].canonical_names[1] == "ft"

    def test_lookup(self):
        assert workload_sets("small") is SMALL_WORKLOADS
        assert workload_sets("large") is LARGE_WORKLOADS
        with pytest.raises(KeyError):
            workload_sets("huge")

    def test_validation(self):
        with pytest.raises(ValueError, match="size"):
            WorkloadSet("x", "medium", ("is",))
        with pytest.raises(ValueError, match="empty"):
            WorkloadSet("x", "small", ())
