"""Workload churn: arrivals and delayed job starts."""

import pytest

from repro.core.policies import DefaultPolicy, FixedPolicy
from repro.machine.machine import SimMachine
from repro.machine.topology import XEON_L7555
from repro.runtime.engine import CoExecutionEngine, JobSpec
from repro.workload.arrivals import (
    Arrival,
    arrival_jobs,
    generate_arrivals,
)
from tests.runtime.test_engine import tiny_program


class TestGenerateArrivals:
    def test_within_horizon(self):
        arrivals = generate_arrivals(("cg", "ep"), rate=0.1,
                                     horizon=200.0, seed=1)
        assert arrivals
        assert all(0 <= a.start_time < 200.0 for a in arrivals)

    def test_rate_scales_count(self):
        sparse = generate_arrivals(("cg",), rate=0.02, horizon=500.0,
                                   seed=2)
        dense = generate_arrivals(("cg",), rate=0.2, horizon=500.0,
                                  seed=2)
        assert len(dense) > 2 * len(sparse)

    def test_deterministic(self):
        a = generate_arrivals(("cg", "ep"), 0.1, 100.0, seed=5)
        b = generate_arrivals(("cg", "ep"), 0.1, 100.0, seed=5)
        assert a == b

    def test_pool_respected(self):
        arrivals = generate_arrivals(("is",), 0.1, 300.0, seed=3)
        assert {a.program for a in arrivals} == {"is"}

    @pytest.mark.parametrize("kwargs", [
        dict(pool=(), rate=0.1, horizon=10.0),
        dict(pool=("cg",), rate=0.0, horizon=10.0),
        dict(pool=("cg",), rate=0.1, horizon=0.0),
        dict(pool=("cg",), rate=0.1, horizon=10.0,
             size_range=(0.0, 0.5)),
        dict(pool=("nope",), rate=0.1, horizon=10.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises((ValueError, KeyError)):
            generate_arrivals(**kwargs)

    def test_arrival_validation(self):
        with pytest.raises(ValueError):
            Arrival(program="cg", start_time=-1.0, iterations_scale=0.5)
        with pytest.raises(ValueError):
            Arrival(program="cg", start_time=0.0, iterations_scale=0.0)


class TestArrivalJobs:
    def test_materialises_jobs(self):
        arrivals = [Arrival("cg", 5.0, 0.3), Arrival("ep", 9.0, 0.4)]
        jobs = arrival_jobs(arrivals, DefaultPolicy)
        assert [j.start_time for j in jobs] == [5.0, 9.0]
        assert jobs[0].job_id.endswith("cg")
        assert not jobs[0].restart

    def test_distinct_policies(self):
        arrivals = [Arrival("cg", 1.0, 0.3)] * 2
        jobs = arrival_jobs(arrivals, DefaultPolicy)
        assert jobs[0].policy is not jobs[1].policy


class TestDelayedStart:
    def test_late_job_invisible_until_start(self):
        target = tiny_program("target", iterations=30, work=2.0)
        late = tiny_program("late", iterations=10, work=2.0)
        machine = SimMachine(topology=XEON_L7555)
        engine = CoExecutionEngine(machine, [
            JobSpec(program=target, policy=FixedPolicy(8),
                    job_id="target", is_target=True),
            JobSpec(program=late, policy=FixedPolicy(8), job_id="late",
                    start_time=5.0),
        ])
        result = engine.run()
        early = [p for p in result.timeline if p.time < 4.5]
        late_points = [p for p in result.timeline if p.time > 6.0]
        assert all(p.workload_threads == 0 for p in early)
        assert any(p.workload_threads > 0 for p in late_points)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            JobSpec(program=tiny_program(), policy=FixedPolicy(1),
                    start_time=-1.0)

    def test_no_target_waits_for_late_job(self):
        a = tiny_program("a", iterations=4, work=1.0)
        b = tiny_program("b", iterations=4, work=1.0)
        machine = SimMachine(topology=XEON_L7555)
        engine = CoExecutionEngine(machine, [
            JobSpec(program=a, policy=FixedPolicy(4), job_id="a"),
            JobSpec(program=b, policy=FixedPolicy(4), job_id="b",
                    start_time=10.0),
        ])
        result = engine.run()
        assert result.job_times["b"] > 10.0

    def test_late_arrival_slows_target(self):
        target = tiny_program("target", iterations=40, work=3.0,
                              loads=4)
        machine = SimMachine(topology=XEON_L7555)
        alone = CoExecutionEngine(machine, [
            JobSpec(program=target, policy=FixedPolicy(16),
                    job_id="target", is_target=True),
        ]).run().target_time
        noisy = CoExecutionEngine(machine, [
            JobSpec(program=target, policy=FixedPolicy(16),
                    job_id="target", is_target=True),
            JobSpec(program=tiny_program("burst", iterations=30,
                                         work=4.0, loads=4),
                    policy=FixedPolicy(32), job_id="burst",
                    start_time=2.0),
        ]).run().target_time
        assert noisy > alone
