"""Command-line interface."""

import json

import pytest

from repro.cli import (
    _exec_footer,
    EXPERIMENTS,
    lint_main,
    main,
    profile_main,
    sanitize_main,
)

RACY_TEXT = """
module racy {
  func main() {
    parallel_loop accumulate [trip=1000, access=irregular] {
      %v0 = load %data
      store sum
    }
  }
}
"""


class TestRegistry:
    def test_every_figure_present(self):
        expected = {
            "fig1", "fig2", "fig3", "tab1", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "fig13a", "fig13b",
            "fig14a", "fig14b", "fig14c", "fig15a", "fig15b", "fig15c",
            "fig16", "fig17", "ext-svm", "ext-data", "ext-port",
            "ext-churn", "ext-rodinia", "ext-energy",
        }
        assert expected == set(EXPERIMENTS)

    def test_descriptions_non_empty(self):
        for description, runner in EXPERIMENTS.values():
            assert description
            assert callable(runner)


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert "tab1" in out

    def test_list_mentions_lint(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "lint" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "hardware contexts" in out


class TestExecFooter:
    """The fault-tolerance footer printed after each experiment."""

    @pytest.fixture
    def stats(self):
        from repro.exec.executor import STATS

        before = (
            STATS.pool_rebuilds, STATS.serial_fallbacks,
            list(STATS.serial_fallback_causes),
        )
        yield STATS
        (STATS.pool_rebuilds, STATS.serial_fallbacks) = before[:2]
        STATS.serial_fallback_causes[:] = before[2]

    def test_quiet_when_nothing_happened(self, stats):
        assert _exec_footer(stats.snapshot()) == ""

    def test_renders_rebuilds_and_fallback_causes(self, stats):
        before = stats.snapshot()
        stats.pool_rebuilds += 2
        stats.serial_fallbacks += 1
        stats.serial_fallback_causes.append(
            "pool creation failed: PermissionError"
        )
        assert _exec_footer(before) == (
            "[exec: 2 pool rebuilds; 1 serial fallbacks "
            "(cause: pool creation failed: PermissionError)]"
        )

    def test_counts_are_deltas_not_totals(self, stats):
        stats.pool_rebuilds += 5  # damage from an earlier experiment
        before = stats.snapshot()
        stats.pool_rebuilds += 1
        assert _exec_footer(before) == "[exec: 1 pool rebuilds]"

    def test_experiment_output_stays_clean(self, capsys):
        # A healthy run must not grow an [exec: ...] footer.
        assert main(["fig1"]) == 0
        assert "[exec:" not in capsys.readouterr().out


class TestLint:
    @pytest.fixture
    def racy_file(self, tmp_path):
        path = tmp_path / "racy.ir"
        path.write_text(RACY_TEXT)
        return str(path)

    def test_registry_is_clean_under_strict(self, capsys):
        assert main(["lint", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out
        assert "0 error(s), 0 warning(s)" in out

    def test_single_program_by_name(self, capsys):
        assert lint_main(["cg"]) == 0
        out = capsys.readouterr().out
        assert "cg" in out and "verdict" in out

    def test_paper_alias_resolves(self, capsys):
        assert lint_main(["bscholes"]) == 0
        assert "blackscholes" in capsys.readouterr().out

    def test_suite_name_expands(self, capsys):
        assert lint_main(["nas"]) == 0
        out = capsys.readouterr().out
        for name in ("bt", "cg", "ep", "ft", "lu", "mg", "sp"):
            assert name in out

    def test_racy_file_fails_with_location(self, racy_file, capsys):
        assert lint_main([racy_file]) == 1
        out = capsys.readouterr().out
        assert "R001 error:" in out
        assert "racy:main:accumulate#1" in out
        assert "FAIL" in out

    def test_racy_file_json_format(self, racy_file, capsys):
        assert lint_main([racy_file, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1
        [entry] = payload["modules"]
        assert entry["failed"] is True
        racy = [d for d in entry["diagnostics"] if d["code"] == "R001"]
        assert racy[0]["severity"] == "error"
        assert racy[0]["loop"] == "accumulate"
        assert racy[0]["instruction"] == 1

    def test_ignore_silences_rule(self, racy_file, capsys):
        assert lint_main([racy_file, "--ignore", "R001"]) == 0
        assert "R001" not in capsys.readouterr().out

    def test_select_runs_one_rule(self, racy_file, capsys):
        assert lint_main([racy_file, "--select", "R005,R008"]) == 0
        out = capsys.readouterr().out
        assert "R001" not in out

    def test_strict_promotes_warnings(self, tmp_path, capsys):
        # R002 (undeclared reduction) is a warning: passes by default,
        # fails under --strict.
        path = tmp_path / "warny.ir"
        path.write_text(
            "module warny {\n"
            "  func f() {\n"
            "    parallel_loop l [trip=10] {\n"
            "      fadd\n"
            "      reduce\n"
            "    }\n"
            "  }\n"
            "}\n"
        )
        assert lint_main([str(path)]) == 0
        capsys.readouterr()
        assert lint_main([str(path), "--strict"]) == 1
        assert "R002 warning:" in capsys.readouterr().out

    def test_invalid_ir_file_reports_r000(self, tmp_path, capsys):
        # Two loops named 'l': parses, but fails structural validation.
        path = tmp_path / "dup.ir"
        path.write_text(
            "module dup {\n"
            "  func f() {\n"
            "    parallel_loop l [trip=2] {\n"
            "      fadd\n"
            "    }\n"
            "    parallel_loop l [trip=2] {\n"
            "      fmul\n"
            "    }\n"
            "  }\n"
            "}\n"
        )
        assert lint_main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "R000 error:" in out
        assert "duplicate parallel loop 'l'" in out

    def test_unknown_target_errors(self):
        with pytest.raises(SystemExit):
            lint_main(["nosuchprogram"])

    def test_unknown_rule_code_errors(self):
        with pytest.raises(SystemExit):
            lint_main(["cg", "--select", "R999"])

    def test_main_dispatches_lint(self, capsys):
        assert main(["lint", "cg"]) == 0
        assert "cg" in capsys.readouterr().out

    def test_sarif_format(self, racy_file, capsys):
        assert lint_main([racy_file, "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == "2.1.0"
        driver = document["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert "R001" in [rule["id"] for rule in driver["rules"]]
        racy = [
            result for result in document["runs"][0]["results"]
            if result["ruleId"] == "R001"
        ]
        assert racy and racy[0]["level"] == "error"
        # File targets keep their real path so code scanning can
        # anchor the alert.
        uri = racy[0]["locations"][0]["physicalLocation"][
            "artifactLocation"]["uri"]
        assert uri.endswith("racy.ir")
        assert "racy:main:accumulate#1" in racy[0]["message"]["text"]

    def test_sarif_registry_targets_use_synthetic_uris(self, capsys):
        assert lint_main(["cg", "--format", "sarif"]) == 0
        document = json.loads(capsys.readouterr().out)
        for result in document["runs"][0]["results"]:
            uri = result["locations"][0]["physicalLocation"][
                "artifactLocation"]["uri"]
            assert uri == "ir/cg.ir"


class TestSanitize:
    @pytest.fixture
    def dirty_tree(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "dirty.py").write_text(
            "import random\nx = random.random()\n"
        )
        return str(package)

    @pytest.fixture
    def warny_file(self, tmp_path):
        # S004 is a warning: only --strict fails on it.
        path = tmp_path / "engine.py"  # any non-zone name works for S001
        path.write_text(
            "import json\n"
            "def save(p, h):\n"
            "    json.dump(p, h)\n"
        )
        zone = tmp_path / "runtime"
        zone.mkdir()
        target = zone / "engine.py"
        target.write_text(path.read_text())
        path.unlink()
        return str(target)

    def test_default_target_is_the_package_and_clean(self, capsys):
        assert sanitize_main(["--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out
        assert "verdict PASS" in out

    def test_dirty_tree_fails_with_location(self, dirty_tree, capsys):
        assert sanitize_main([dirty_tree]) == 1
        out = capsys.readouterr().out
        assert "dirty.py:2:" in out
        assert "S001 error:" in out
        assert "verdict FAIL" in out

    def test_single_file_target(self, dirty_tree, capsys):
        assert sanitize_main([dirty_tree + "/dirty.py"]) == 1
        assert "S001" in capsys.readouterr().out

    def test_warnings_fail_only_under_strict(self, warny_file, capsys):
        assert sanitize_main([warny_file]) == 0
        capsys.readouterr()
        assert sanitize_main([warny_file, "--strict"]) == 1
        assert "S004 warning:" in capsys.readouterr().out

    def test_json_format(self, dirty_tree, capsys):
        assert sanitize_main([dirty_tree, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1
        assert payload["summary"]["failed"] is True
        [finding] = payload["findings"]
        assert finding["code"] == "S001"
        assert finding["path"] == "dirty.py"

    def test_sarif_format(self, dirty_tree, capsys):
        assert sanitize_main([dirty_tree, "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        driver = document["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-sanitize"
        [result] = document["runs"][0]["results"]
        assert result["ruleId"] == "S001"
        assert result["level"] == "error"

    def test_main_dispatches_sanitize(self, capsys):
        assert main(["sanitize"]) == 0
        assert "verdict PASS" in capsys.readouterr().out


class TestProfile:
    ARGS = ["--scenario", "static-isolated", "--scale", "0.1", "--top", "5"]

    def test_profiles_one_run(self, capsys):
        assert profile_main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out
        assert "_run_loop" in out
        assert "stepping=event" in out

    def test_output_writes_pstats(self, tmp_path, capsys):
        import pstats

        dump = tmp_path / "run.pstats"
        assert profile_main(self.ARGS + ["--output", str(dump)]) == 0
        stats = pstats.Stats(str(dump))
        assert stats.total_calls > 0

    def test_fixed_stepping_mode(self, capsys):
        assert profile_main(self.ARGS + ["--stepping", "fixed"]) == 0
        assert "stepping=fixed" in capsys.readouterr().out

    def test_rejects_bad_arguments(self):
        with pytest.raises(SystemExit):
            profile_main(["--threads", "0"])
        with pytest.raises(SystemExit):
            profile_main(["--scale", "0"])
        with pytest.raises(SystemExit):
            profile_main(["--stepping", "warp"])

    def test_main_dispatches_profile(self, capsys):
        assert main(["profile"] + self.ARGS) == 0
        assert "profiled" in capsys.readouterr().out


class TestPackageEntryPoints:
    def test_module_has_main(self):
        import repro.__main__  # noqa: F401

    def test_public_api_imports(self):
        import repro

        assert repro.__version__
        assert len(repro.__all__) > 30
        for name in repro.__all__:
            assert hasattr(repro, name), name
