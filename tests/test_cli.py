"""Command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestRegistry:
    def test_every_figure_present(self):
        expected = {
            "fig1", "fig2", "fig3", "tab1", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "fig13a", "fig13b",
            "fig14a", "fig14b", "fig14c", "fig15a", "fig15b", "fig15c",
            "fig16", "fig17", "ext-svm", "ext-data", "ext-port",
            "ext-churn", "ext-rodinia", "ext-energy",
        }
        assert expected == set(EXPERIMENTS)

    def test_descriptions_non_empty(self):
        for description, runner in EXPERIMENTS.values():
            assert description
            assert callable(runner)


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert "tab1" in out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_fig1_runs(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "hardware contexts" in out


class TestPackageEntryPoints:
    def test_module_has_main(self):
        import repro.__main__  # noqa: F401

    def test_public_api_imports(self):
        import repro

        assert repro.__version__
        assert len(repro.__all__) > 30
        for name in repro.__all__:
            assert hasattr(repro, name), name
