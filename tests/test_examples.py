"""The example scripts must at least import and expose main()."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


def load(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_at_least_five_examples(self):
        assert len(EXAMPLES) >= 5

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_importable_with_main(self, path):
        module = load(path)
        assert callable(getattr(module, "main", None)), path.stem
        assert module.__doc__, f"{path.stem} needs a docstring"

    def test_quickstart_mentions_public_api(self):
        source = (EXAMPLES[0].parent / "quickstart.py").read_text()
        assert "default_experts" in source
        assert "MixturePolicy" in source

    def test_custom_expert_builds(self, tiny_config):
        """The hand-crafted expert of the example fits and predicts."""
        module = load(EXAMPLES[0].parent / "custom_expert.py")
        import repro.core.training as training

        # Point the example's trainer at the tiny dataset for speed.
        samples, _ = training.training_dataset(tiny_config)
        original = training.training_dataset
        training.training_dataset = lambda *a, **k: (samples, [])
        try:
            expert = module.build_fair_share_expert()
        finally:
            training.training_dataset = original
        assert expert.name == "E5-fair-share"
        assert expert.predict_threads(samples[0].features, 32) >= 1

    def test_pagerank_module_is_valid_ir(self):
        module = load(EXAMPLES[0].parent / "write_your_own_benchmark.py")
        program = module.build_pagerank()
        program.module.validate()
        assert {r.loop_name for r in program.regions} == {
            "gather", "apply",
        }
