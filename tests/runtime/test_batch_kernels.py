"""Leading-batch-axis span kernels vs the per-run kernels.

The batch driver (`repro.exec.batch`) relies on one invariant: a run
advanced through batched `(B, Jmax)` kernel invocations is bitwise
indistinguishable from the same run advanced solo.  These tests pin
that invariant at every level — plane gather, rates, horizons, span
writeback, the aggregate scalar fallback, and whole engines stepped in
lock-step.
"""

import math

import numpy as np
import pytest

from repro.core.policies import FixedPolicy
from repro.machine.machine import SimMachine
from repro.machine.topology import XEON_L7555
from repro.runtime import kernels
from repro.runtime.engine import (
    MAX_SPIN_WASTE,
    SPIN_WASTE_COEFF,
    CoExecutionEngine,
    JobSpec,
)
from repro.runtime.kernels import (
    SCALAR_SPAN_MAX,
    SpanPlan,
    apply_span,
    apply_span_plans,
    build_batch_span_state,
    build_span_state,
    completion_horizon,
)
from tests.runtime.test_engine import tiny_program
from tests.runtime.test_kernels import engine_and_states, hand_span


def plan_for(states, allocation, ticks=5, dt=0.1):
    """A SpanPlan over real states, rows gathered like the engine's
    span pre-pass (rate slots use the vector kernel's own values; the
    scalar/vector identity is pinned separately in test_kernels)."""
    span = build_span_state(
        states, allocation, SPIN_WASTE_COEFF, MAX_SPIN_WASTE
    )
    rows = [
        (
            state,
            state.instance,
            allocation.allocations[state.spec.job_id],
            span.rates[row],
            state.region is None,
        )
        for row, state in enumerate(states)
    ]
    return SpanPlan(
        rows=rows, ticks=ticks, dt=dt, allocation=allocation,
        spin_coeff=SPIN_WASTE_COEFF, max_spin_waste=MAX_SPIN_WASTE,
    )


def ragged_plans(ticks=(5, 3), dt=0.1):
    """Two plans of different widths (2 and 1 rows) over real states."""
    _, states_a, alloc_a = engine_and_states([6, 8], available=8)
    _, states_b, alloc_b = engine_and_states([4], available=8)
    return [
        plan_for(states_a, alloc_a, ticks=ticks[0], dt=dt),
        plan_for(states_b, alloc_b, ticks=ticks[1], dt=dt),
    ]


class TestBuildBatchSpanState:
    def test_planes_match_per_member_span_state(self):
        plans = ragged_plans()
        batch = build_batch_span_state(plans)
        assert len(batch) == 2
        for b, plan in enumerate(plans):
            states = [row[0] for row in plan.rows]
            solo = build_span_state(
                states, plan.allocation, SPIN_WASTE_COEFF, MAX_SPIN_WASTE
            )
            width = len(states)
            np.testing.assert_array_equal(
                batch.threads[b, :width], solo.threads
            )
            np.testing.assert_array_equal(
                batch.share[b, :width], solo.share
            )
            np.testing.assert_array_equal(
                batch.granted_cpus[b, :width], solo.granted_cpus
            )
            np.testing.assert_array_equal(
                batch.efficiency[b, :width], solo.efficiency
            )
            np.testing.assert_array_equal(
                batch.sync[b, :width], solo.sync
            )
            np.testing.assert_array_equal(
                batch.serial[b, :width], solo.serial
            )
            assert batch.members[b] == states

    def test_batched_rates_bit_identical_to_per_member_rates(self):
        plans = ragged_plans()
        batch = build_batch_span_state(plans)
        for b, plan in enumerate(plans):
            states = [row[0] for row in plan.rows]
            solo = build_span_state(
                states, plan.allocation, SPIN_WASTE_COEFF, MAX_SPIN_WASTE
            )
            # Bitwise, not approx: the batched gather must feed the
            # identical operands through the identical elementwise ops.
            np.testing.assert_array_equal(
                batch.rates[b, :len(states)], solo.rates
            )

    def test_pad_rows_have_rate_exactly_zero(self):
        batch = build_batch_span_state(ragged_plans())
        # Member 1 has a single real row; its pad row must be inert.
        assert batch.rates.shape == (2, 2)
        assert batch.rates[1, 1] == 0.0
        assert batch.threads[1, 1] == 0.0
        assert not batch.serial[1, 1]

    def test_zero_plans_rejected(self):
        with pytest.raises(ValueError):
            build_batch_span_state([])


class TestBatchedCompletionHorizon:
    def test_per_member_horizons_match_solo(self):
        plans = ragged_plans()
        batch = build_batch_span_state(plans)
        horizons = completion_horizon(batch, 0.1)
        assert horizons.shape == (2,)
        for b, plan in enumerate(plans):
            states = [row[0] for row in plan.rows]
            solo = build_span_state(
                states, plan.allocation, SPIN_WASTE_COEFF, MAX_SPIN_WASTE
            )
            assert horizons[b] == completion_horizon(solo, 0.1)

    def test_pad_rows_impose_no_bound(self):
        # A hand batch where the only real row of member 1 is stalled:
        # its horizon must be inf, the pad row contributing nothing.
        solo_a = hand_span([2.0, 1.0], [2.0 * 0.1 * 8, 1.0 * 0.1 * 30])
        solo_b = hand_span([0.0], [5.0])
        batch = kernels.BatchSpanState(
            members=[solo_a.states, solo_b.states],
            ticks=np.array([0, 0], dtype=np.int64),
            dt=0.1,
            threads=np.array([[4.0, 4.0], [4.0, 0.0]]),
            share=np.array([[1.0, 1.0], [1.0, 0.0]]),
            granted_cpus=np.array([[1.0, 1.0], [1.0, 0.0]]),
            switch_factor=np.array([[1.0, 1.0], [1.0, 0.0]]),
            memory_factor=np.array([[1.0, 1.0], [1.0, 0.0]]),
            efficiency=np.ones((2, 2)),
            sync=np.zeros((2, 2)),
            serial=np.zeros((2, 2), dtype=bool),
            remaining=np.array([[2.0 * 0.1 * 8, 1.0 * 0.1 * 30],
                                [5.0, 0.0]]),
            rates=np.array([[2.0, 1.0], [0.0, 0.0]]),
        )
        horizons = completion_horizon(batch, 0.1)
        assert horizons[0] == completion_horizon(solo_a, 0.1)
        assert math.isinf(horizons[1])

    def test_empty_batch_is_unbounded(self):
        batch = build_batch_span_state(ragged_plans())
        empty = kernels.BatchSpanState(
            members=[],
            ticks=np.empty(0, dtype=np.int64),
            dt=0.1,
            threads=np.empty((0, 0)),
            share=np.empty((0, 0)),
            granted_cpus=np.empty((0, 0)),
            switch_factor=np.empty((0, 0)),
            memory_factor=np.empty((0, 0)),
            efficiency=np.empty((0, 0)),
            sync=np.empty((0, 0)),
            serial=np.empty((0, 0), dtype=bool),
            remaining=np.empty((0, 0)),
            rates=np.empty((0, 0)),
        )
        assert completion_horizon(empty, 0.1).shape == (0,)
        assert batch.rates.size  # sanity: the non-empty path above ran


class TestBatchedApplySpan:
    def test_writeback_bit_identical_to_solo_members(self):
        # Apply the batch, then replay each member solo from identical
        # starting state and demand bitwise equality of every field.
        ticks = (7, 3)
        batch_plans = ragged_plans(ticks=ticks)
        solo_plans = ragged_plans(ticks=ticks)
        batch = build_batch_span_state(batch_plans)
        apply_span(batch, batch.ticks, batch.dt)
        for plan in solo_plans:
            states = [row[0] for row in plan.rows]
            span = build_span_state(
                states, plan.allocation, SPIN_WASTE_COEFF, MAX_SPIN_WASTE
            )
            apply_span(span, plan.ticks, plan.dt)
        for batch_plan, solo_plan in zip(batch_plans, solo_plans):
            for (b_state, b_inst, *_), (s_state, s_inst, *_) in zip(
                batch_plan.rows, solo_plan.rows
            ):
                assert b_state.work_done == s_state.work_done
                assert b_state.cpu_time == s_state.cpu_time
                assert b_state.region_elapsed == s_state.region_elapsed
                assert b_inst.remaining == s_inst.remaining

    def test_pad_rows_write_nothing(self):
        plans = ragged_plans()
        batch = build_batch_span_state(plans)
        # members lists hold only real states; the narrow member has 1.
        assert [len(m) for m in batch.members] == [2, 1]
        apply_span(batch, batch.ticks, batch.dt)  # must not raise


class TestApplySpanPlans:
    def test_small_aggregate_takes_scalar_path(self):
        # 3 aggregate rows <= SCALAR_SPAN_MAX: identical to solo apply.
        assert SCALAR_SPAN_MAX >= 3
        ticks = (5, 4)
        grouped = ragged_plans(ticks=ticks)
        solo = ragged_plans(ticks=ticks)
        apply_span_plans(grouped)
        for plan in solo:
            plan.apply()
        for g_plan, s_plan in zip(grouped, solo):
            for (g_state, g_inst, *_), (s_state, s_inst, *_) in zip(
                g_plan.rows, s_plan.rows
            ):
                assert g_state.work_done == s_state.work_done
                assert g_state.cpu_time == s_state.cpu_time
                assert g_inst.remaining == s_inst.remaining

    def test_large_aggregate_takes_batched_path(self):
        # Enough members that aggregate rows exceed SCALAR_SPAN_MAX.
        count = SCALAR_SPAN_MAX  # 2 rows each -> 2x the threshold
        grouped, solo = [], []
        for plans in (grouped, solo):
            for index in range(count):
                _, states, alloc = engine_and_states([4, 8], available=8)
                plans.append(
                    plan_for(states, alloc, ticks=3 + index % 4)
                )
        apply_span_plans(grouped)
        for plan in solo:
            plan.apply()
        for g_plan, s_plan in zip(grouped, solo):
            for (g_state, g_inst, *_), (s_state, s_inst, *_) in zip(
                g_plan.rows, s_plan.rows
            ):
                assert g_state.work_done == s_state.work_done
                assert g_state.cpu_time == s_state.cpu_time
                assert g_inst.remaining == s_inst.remaining

    def test_none_members_and_empty_groups_are_no_ops(self):
        apply_span_plans([])
        apply_span_plans([None, None])
        plan = ragged_plans()[1]
        before = plan.rows[0][0].work_done
        apply_span_plans([None, plan, None])
        assert plan.rows[0][0].work_done != before


def build_engine(threads, iterations, seed_name):
    program = tiny_program(
        name=seed_name, iterations=iterations, work=2.0,
        serial_fraction=0.2,
    )
    jobs = [JobSpec(
        program=program, policy=FixedPolicy(threads),
        job_id="target", is_target=True,
    )]
    return CoExecutionEngine(
        SimMachine(topology=XEON_L7555), jobs, dt=0.1, stepping="event",
    )


class TestLockStepEngines:
    """Whole engines driven through apply_span_plans stay bit-identical."""

    VARIANTS = [(8, 12, "lk-a"), (4, 9, "lk-b"), (6, 15, "lk-c")]

    def run_solo(self):
        return [
            build_engine(*variant).run() for variant in self.VARIANTS
        ]

    def run_lock_step(self):
        engines = [build_engine(*variant) for variant in self.VARIANTS]
        gens = [engine.span_steps() for engine in engines]
        results = [None] * len(engines)
        live = list(range(len(engines)))
        while live:
            plans = []
            finished = []
            for index in live:
                try:
                    plans.append(next(gens[index]))
                except StopIteration as stop:
                    results[index] = stop.value
                    finished.append(index)
            for index in finished:
                live.remove(index)
            apply_span_plans(plans)
        return results

    def test_results_bit_identical(self):
        solo = self.run_solo()
        batched = self.run_lock_step()
        for s, b in zip(solo, batched):
            assert s.target_time == b.target_time
            assert s.duration == b.duration
            assert s.job_times == b.job_times
            assert s.cpu_time == b.cpu_time
            assert [
                (sel.time, sel.job_id, sel.loop_name, sel.threads)
                for sel in s.selections
            ] == [
                (sel.time, sel.job_id, sel.loop_name, sel.threads)
                for sel in b.selections
            ]

    def test_state_digests_identical_under_sanitize(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        solo_engines = [build_engine(*v) for v in self.VARIANTS]
        for engine in solo_engines:
            engine.run()
        batch_engines = [build_engine(*v) for v in self.VARIANTS]
        gens = [engine.span_steps() for engine in batch_engines]
        live = list(range(len(batch_engines)))
        while live:
            plans = []
            finished = []
            for index in live:
                try:
                    plans.append(next(gens[index]))
                except StopIteration:
                    finished.append(index)
            for index in finished:
                live.remove(index)
            apply_span_plans(plans)
        for solo, batched in zip(solo_engines, batch_engines):
            assert solo.state_digest is not None
            assert batched.state_digest is not None
            assert (
                solo.state_digest.hexdigest()
                == batched.state_digest.hexdigest()
            )
