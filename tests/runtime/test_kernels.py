"""Unit tests for the vectorized span kernels (`repro.runtime.kernels`).

The stepping equivalence tests (`test_stepping.py`) pin the observable
end-to-end behaviour; these tests pin the kernel math itself — bitwise
agreement between `span_rates` and the engine's scalar `_rate`, the
completion-horizon rounding rules, and the `apply_span` writeback.
"""

import math

import numpy as np
import pytest

from repro.core.policies import FixedPolicy
from repro.machine.machine import SimMachine
from repro.machine.topology import XEON_L7555
from repro.runtime import kernels
from repro.runtime.engine import (
    MAX_SPIN_WASTE,
    SPIN_WASTE_COEFF,
    CoExecutionEngine,
    JobSpec,
    _JobState,
)
from repro.runtime.kernels import (
    HORIZON_FUZZ,
    SpanState,
    apply_span,
    build_span_state,
    completion_horizon,
    span_rates,
)
from repro.sched.scheduler import JobDemand, ProportionalShareScheduler
from tests.runtime.test_engine import tiny_program


class _StubInstance:
    def __init__(self, remaining):
        self.remaining = remaining


class _StubSpec:
    def __init__(self, job_id):
        self.job_id = job_id


class _StubState:
    """The minimal `_JobState` surface the kernels touch."""

    def __init__(self, job_id, threads, region, remaining):
        self.spec = _StubSpec(job_id)
        self.threads = threads
        self.region = region
        self.instance = _StubInstance(remaining)
        self.work_done = 0.0
        self.cpu_time = 0.0
        self.region_elapsed = 0.0


def parallel_region(sync_intensity=None):
    """A real Region (scaling law included) from a tiny program."""
    program = tiny_program(iterations=3, work=2.0, serial_fraction=0.2)
    region = program.regions[0]
    if sync_intensity is not None:
        object.__setattr__(region, "sync_intensity", sync_intensity)
    return region


def engine_and_states(thread_counts, available=8):
    """A real engine plus `_JobState`s advanced into their first
    parallel region, and the real scheduler allocation for them."""
    specs = []
    for index, threads in enumerate(thread_counts):
        program = tiny_program(
            name=f"k{index}", iterations=4, work=3.0, serial_fraction=0.2
        )
        specs.append(JobSpec(
            program=program, policy=FixedPolicy(threads),
            job_id=f"k{index}", is_target=index == 0,
        ))
    engine = CoExecutionEngine(SimMachine(topology=XEON_L7555), specs)
    states = []
    for spec, threads in zip(specs, thread_counts):
        state = _JobState(spec)
        # Walk out of the leading serial glue into the parallel region.
        while state.instance.current_region is None:
            assert not state.instance.finished
            state.instance.advance(state.instance.remaining)
        state.region = state.instance.current_region
        state.threads = threads
        states.append(state)
    demands = [
        JobDemand(state.spec.job_id, state.threads) for state in states
    ]
    allocation = ProportionalShareScheduler(XEON_L7555).allocate(
        demands, available
    )
    return engine, states, allocation


class TestSpanRatesMatchEngine:
    def test_oversubscribed_parallel_rates_are_bit_identical(self):
        # 6 + 8 threads onto 8 processors: shares < 1, spin path taken.
        engine, states, allocation = engine_and_states([6, 8], available=8)
        span = build_span_state(
            states, allocation, SPIN_WASTE_COEFF, MAX_SPIN_WASTE
        )
        for row, state in enumerate(states):
            alloc = allocation.allocations[state.spec.job_id]
            expected = engine._rate_uncached(
                state, alloc, state.region, alloc.thread_share
            )
            assert span.rates[row] == expected

    def test_uncontended_parallel_rates_are_bit_identical(self):
        # 2 + 2 threads onto 32 processors: no oversubscription, the
        # spin factor must collapse to exactly 1.0 on both paths.
        engine, states, allocation = engine_and_states([2, 2], available=32)
        span = build_span_state(
            states, allocation, SPIN_WASTE_COEFF, MAX_SPIN_WASTE
        )
        for row, state in enumerate(states):
            alloc = allocation.allocations[state.spec.job_id]
            expected = engine._rate_uncached(
                state, alloc, state.region, alloc.thread_share
            )
            assert span.rates[row] == expected
            # With full shares the rate reduces to the no-spin product.
            no_spin = (
                alloc.thread_share * state.threads
                * alloc.switch_factor * alloc.memory_factor
                * state.region.scaling.efficiency(state.threads)
            )
            assert span.rates[row] == no_spin

    def test_serial_glue_rates_are_bit_identical(self):
        engine, states, allocation = engine_and_states([4, 8], available=8)
        for state in states:
            state.region = None  # back in serial glue
            state.threads = 1
        demands = [JobDemand(s.spec.job_id, 1) for s in states]
        allocation = ProportionalShareScheduler(XEON_L7555).allocate(
            demands, 8
        )
        span = build_span_state(
            states, allocation, SPIN_WASTE_COEFF, MAX_SPIN_WASTE
        )
        for row, state in enumerate(states):
            alloc = allocation.allocations[state.spec.job_id]
            expected = engine._rate_uncached(
                state, alloc, None, alloc.thread_share
            )
            assert span.rates[row] == expected

    def test_empty_span(self):
        span = build_span_state(
            [], object(), SPIN_WASTE_COEFF, MAX_SPIN_WASTE
        )
        assert len(span) == 0
        assert span_rates(span, SPIN_WASTE_COEFF, MAX_SPIN_WASTE).size == 0
        assert completion_horizon(span, 0.1) == math.inf


def hand_span(rates, remaining, serial=None, granted=None):
    """A SpanState with prescribed rates, for horizon/apply tests."""
    count = len(rates)
    states = [
        _StubState(f"j{i}", 4, None, remaining[i]) for i in range(count)
    ]
    serial_arr = np.zeros(count, dtype=bool)
    if serial is not None:
        serial_arr[:] = serial
    return SpanState(
        states=states,
        threads=np.full(count, 4.0),
        share=np.ones(count),
        granted_cpus=np.asarray(
            granted if granted is not None else [1.0] * count, dtype=float
        ),
        switch_factor=np.ones(count),
        memory_factor=np.ones(count),
        efficiency=np.ones(count),
        sync=np.zeros(count),
        serial=serial_arr,
        remaining=np.asarray(remaining, dtype=float),
        rates=np.asarray(rates, dtype=float),
    )


class TestCompletionHorizon:
    def test_integer_tick_count_leaves_final_tick_to_the_engine(self):
        # Exactly 10 ticks of work: 9 are event-free, the 10th (the
        # completing tick) must run through the per-tick path.
        span = hand_span([2.0], [2.0 * 0.1 * 10])
        assert completion_horizon(span, 0.1) == 9.0

    def test_fractional_tick_count_rounds_up(self):
        # 10.4 ticks of work: completion happens during tick index 10,
        # so 10 whole ticks are safe.
        span = hand_span([2.0], [2.0 * 0.1 * 10.4])
        assert completion_horizon(span, 0.1) == 10.0

    def test_fuzz_absorbs_accumulation_jitter(self):
        # A hair over an integer boundary (well inside HORIZON_FUZZ)
        # must round *down* like the exact integer, not claim an extra
        # safe tick that per-tick accumulation might contradict.
        ticks = 10.0 + HORIZON_FUZZ / 10.0
        span = hand_span([2.0], [2.0 * 0.1 * ticks])
        assert completion_horizon(span, 0.1) == 9.0

    def test_minimum_over_jobs(self):
        span = hand_span([1.0, 4.0], [1.0 * 0.1 * 30, 4.0 * 0.1 * 6])
        assert completion_horizon(span, 0.1) == 5.0

    def test_stalled_job_imposes_no_bound(self):
        span = hand_span([2.0, 0.0], [2.0 * 0.1 * 8, 5.0])
        assert completion_horizon(span, 0.1) == 7.0

    def test_all_stalled_is_unbounded(self):
        span = hand_span([0.0, kernels.RATE_EPSILON], [5.0, 5.0])
        assert completion_horizon(span, 0.1) == math.inf

    def test_imminent_completion_clamps_to_zero(self):
        span = hand_span([2.0], [2.0 * 0.1 * 0.5])
        assert completion_horizon(span, 0.1) == 0.0


class TestApplySpan:
    def test_writeback_matches_scalar_accrual(self):
        rates = [1.5, 0.25]
        granted = [3.0, 0.5]
        span = hand_span(
            rates, [100.0, 100.0], serial=[False, True], granted=granted
        )
        ticks, dt = 7, 0.25
        apply_span(span, ticks, dt)
        elapsed = ticks * dt
        for row, state in enumerate(span.states):
            # Element-for-element the engine's scalar span loop.
            assert state.work_done == rates[row] * elapsed
            assert state.cpu_time == granted[row] * elapsed
            assert state.instance.remaining == 100.0 - rates[row] * elapsed
        # Region residency accrues only while in a parallel region.
        assert span.states[0].region_elapsed == elapsed
        assert span.states[1].region_elapsed == 0.0

    def test_zero_ticks_is_a_no_op(self):
        span = hand_span([2.0], [10.0])
        apply_span(span, 0, 0.1)
        state = span.states[0]
        assert state.work_done == 0.0
        assert state.cpu_time == 0.0
        assert state.instance.remaining == 10.0

    def test_span_equals_iterated_ticks_within_float_noise(self):
        dt, ticks = 0.1, 64
        span = hand_span([1.7], [100.0], granted=[2.3])
        apply_span(span, ticks, dt)
        work_iterated = 0.0
        cpu_iterated = 0.0
        for _ in range(ticks):
            work_iterated += 1.7 * dt
            cpu_iterated += 2.3 * dt
        assert span.states[0].work_done == pytest.approx(
            work_iterated, rel=1e-12
        )
        assert span.states[0].cpu_time == pytest.approx(
            cpu_iterated, rel=1e-12
        )


class TestBuildSpanState:
    def test_gathers_real_allocation_rows(self):
        _, states, allocation = engine_and_states([6, 8], available=8)
        span = build_span_state(
            states, allocation, SPIN_WASTE_COEFF, MAX_SPIN_WASTE
        )
        assert span.states == states
        for row, state in enumerate(states):
            alloc = allocation.allocations[state.spec.job_id]
            assert span.threads[row] == float(state.threads)
            assert span.share[row] == alloc.thread_share
            assert span.granted_cpus[row] == alloc.granted_cpus
            assert span.switch_factor[row] == alloc.switch_factor
            assert span.memory_factor[row] == alloc.memory_factor
            assert span.remaining[row] == state.instance.remaining
            assert not span.serial[row]
            assert span.sync[row] == state.region.sync_intensity
            assert span.efficiency[row] == (
                state.region.scaling.efficiency(state.threads)
            )

    def test_serial_rows_get_neutral_region_factors(self):
        state = _StubState("s", 1, None, 5.0)
        demands = [JobDemand("s", 1)]
        allocation = ProportionalShareScheduler(XEON_L7555).allocate(
            demands, 8
        )
        span = build_span_state(
            [state], allocation, SPIN_WASTE_COEFF, MAX_SPIN_WASTE
        )
        assert span.serial[0]
        assert span.efficiency[0] == 1.0
        assert span.sync[0] == 0.0
