"""Result metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.metrics import (
    geometric_mean,
    harmonic_mean,
    median,
    speedup,
    speedups_over_baseline,
)

positive_lists = st.lists(
    st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=12,
)


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_single(self):
        assert harmonic_mean([3.5]) == 3.5

    def test_errors(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    @given(positive_lists)
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_min_and_max(self, values):
        hm = harmonic_mean(values)
        assert min(values) - 1e-9 <= hm <= max(values) + 1e-9

    @given(positive_lists)
    @settings(max_examples=60, deadline=None)
    def test_below_geometric_mean(self, values):
        assert harmonic_mean(values) <= geometric_mean(values) + 1e-9


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_errors(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_empty(self):
        with pytest.raises(ValueError):
            median([])


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 5.0) == 2.0

    def test_errors(self):
        with pytest.raises(ValueError):
            speedup(0.0, 5.0)
        with pytest.raises(ValueError):
            speedup(5.0, 0.0)

    def test_over_baseline(self):
        result = speedups_over_baseline(
            {"default": 10.0, "mixture": 5.0}, baseline="default",
        )
        assert result == {"default": 1.0, "mixture": 2.0}

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            speedups_over_baseline({"a": 1.0}, baseline="default")


class TestFixedBucketHistogram:
    def test_bucket_edges_are_half_open_on_the_left(self):
        from repro.runtime.metrics import FixedBucketHistogram

        hist = FixedBucketHistogram(bounds=[1.0, 2.0, 4.0])
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0):
            hist.record(value)
        # (.., 1], (1, 2], (2, 4], overflow
        assert hist.snapshot()["counts"] == [2, 2, 2, 1]
        assert hist.count == 7

    def test_merge_sums_counts(self):
        from repro.runtime.metrics import FixedBucketHistogram

        left = FixedBucketHistogram(bounds=[1.0, 2.0])
        right = FixedBucketHistogram(bounds=[1.0, 2.0])
        left.record(0.5)
        right.record(0.5)
        right.record(5.0)
        left.merge(right.snapshot())
        assert left.snapshot()["counts"] == [2, 0, 1]

    def test_merge_rejects_different_bounds(self):
        from repro.runtime.metrics import FixedBucketHistogram

        left = FixedBucketHistogram(bounds=[1.0, 2.0])
        right = FixedBucketHistogram(bounds=[1.0, 3.0])
        with pytest.raises(ValueError, match="bounds"):
            left.merge(right.snapshot())

    def test_validation(self):
        from repro.runtime.metrics import FixedBucketHistogram

        with pytest.raises(ValueError):
            FixedBucketHistogram(bounds=[])
        with pytest.raises(ValueError):
            FixedBucketHistogram(bounds=[2.0, 1.0])

    def test_nonzero_labels_only_populated_buckets(self):
        from repro.runtime.metrics import FixedBucketHistogram

        hist = FixedBucketHistogram(bounds=[1e-6, 1e-3, 1.0])
        hist.record(5e-7)
        hist.record(2.0)
        labels = hist.nonzero()
        assert len(labels) == 2
        assert labels[0] == ("0us-1us", 1)
        assert labels[1] == (">1s", 1)

    def test_default_bounds_cover_microseconds_to_seconds(self):
        from repro.runtime.metrics import LATENCY_BUCKET_BOUNDS

        assert LATENCY_BUCKET_BOUNDS[0] == 1e-6
        assert LATENCY_BUCKET_BOUNDS[-1] > 1.0
        assert list(LATENCY_BUCKET_BOUNDS) == \
            sorted(LATENCY_BUCKET_BOUNDS)


class TestGauge:
    def test_tracks_min_mean_max_last(self):
        from repro.runtime.metrics import Gauge

        gauge = Gauge()
        for value in (4.0, 1.0, 7.0, 2.0):
            gauge.record(value)
        snap = gauge.snapshot()
        assert snap["min"] == 1.0
        assert snap["max"] == 7.0
        assert snap["mean"] == pytest.approx(3.5)
        assert snap["last"] == 2.0
        assert snap["count"] == 4.0

    def test_empty_snapshot_is_zeros(self):
        from repro.runtime.metrics import Gauge

        assert Gauge().snapshot() == {
            "count": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
            "last": 0.0,
        }

    def test_merge_weights_means_by_count(self):
        from repro.runtime.metrics import Gauge

        left, right = Gauge(), Gauge()
        left.record(2.0)
        right.record(4.0)
        right.record(6.0)
        left.merge(right.snapshot())
        snap = left.snapshot()
        assert snap["count"] == 3.0
        assert snap["mean"] == pytest.approx(4.0)
        assert snap["min"] == 2.0
        assert snap["max"] == 6.0

    def test_merging_empty_is_a_no_op(self):
        from repro.runtime.metrics import Gauge

        gauge = Gauge()
        gauge.record(5.0)
        before = gauge.snapshot()
        gauge.merge(Gauge().snapshot())
        assert gauge.snapshot() == before


class TestLatencyLedgerHistogram:
    def test_histogram_rides_along_with_samples(self):
        from repro.runtime.metrics import LatencyLedger

        ledger = LatencyLedger()
        for seconds in (2e-6, 5e-6, 1e-3):
            ledger.record(seconds)
        assert ledger.count == 3
        assert ledger.histogram.count == 3
        ledger.clear()
        assert ledger.count == 0
        assert ledger.histogram.count == 0


class TestCounter:
    def test_bump_get_and_snapshot(self):
        from repro.runtime.metrics import Counter

        counter = Counter()
        counter.bump("restarts")
        counter.bump("streams_migrated", 3)
        assert counter.get("restarts") == 1
        assert counter.get("absent") == 0
        assert counter.snapshot() == {"restarts": 1,
                                      "streams_migrated": 3}

    def test_merge_sums_and_rejects_negatives(self):
        from repro.runtime.metrics import Counter

        left, right = Counter(), Counter()
        left.bump("a", 2)
        right.bump("a")
        right.bump("b", 4)
        left.merge(right.snapshot())
        assert left.snapshot() == {"a": 3, "b": 4}
        with pytest.raises(ValueError):
            left.bump("a", -1)
        with pytest.raises(ValueError):
            left.merge({"a": -2})
