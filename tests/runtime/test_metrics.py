"""Result metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.metrics import (
    geometric_mean,
    harmonic_mean,
    median,
    speedup,
    speedups_over_baseline,
)

positive_lists = st.lists(
    st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=12,
)


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_single(self):
        assert harmonic_mean([3.5]) == 3.5

    def test_errors(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    @given(positive_lists)
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_min_and_max(self, values):
        hm = harmonic_mean(values)
        assert min(values) - 1e-9 <= hm <= max(values) + 1e-9

    @given(positive_lists)
    @settings(max_examples=60, deadline=None)
    def test_below_geometric_mean(self, values):
        assert harmonic_mean(values) <= geometric_mean(values) + 1e-9


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_errors(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_empty(self):
        with pytest.raises(ValueError):
            median([])


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 5.0) == 2.0

    def test_errors(self):
        with pytest.raises(ValueError):
            speedup(0.0, 5.0)
        with pytest.raises(ValueError):
            speedup(5.0, 0.0)

    def test_over_baseline(self):
        result = speedups_over_baseline(
            {"default": 10.0, "mixture": 5.0}, baseline="default",
        )
        assert result == {"default": 1.0, "mixture": 2.0}

    def test_missing_baseline(self):
        with pytest.raises(KeyError):
            speedups_over_baseline({"a": 1.0}, baseline="default")
