"""The co-execution engine."""

import pytest

from repro.compiler.builder import IRBuilder
from repro.core.policies import DefaultPolicy, FixedPolicy
from repro.core.policies.base import PolicyContext, RegionReport, ThreadPolicy
from repro.machine.availability import StaticAvailability
from repro.machine.machine import SimMachine
from repro.machine.topology import XEON_L7555
from repro.programs.model import build_program
from repro.runtime.engine import CoExecutionEngine, JobSpec


def tiny_program(name="tiny", iterations=5, work=2.0,
                 serial_fraction=0.1, loads=0):
    b = IRBuilder(name)
    with b.function("f"):
        with b.parallel_loop("loop", trip_count=100):
            for _ in range(loads):
                b.load()
            b.fadd()
            b.fmul()
    return build_program(
        name=name, suite="test", module=b.build(),
        iterations=iterations, work_per_iteration=work,
        serial_fraction=serial_fraction,
    )


def machine(cores_available=None):
    availability = (
        StaticAvailability(cores_available) if cores_available else None
    )
    return SimMachine(topology=XEON_L7555, availability=availability)


def run(jobs, m=None, **kwargs):
    engine = CoExecutionEngine(m or machine(), jobs, **kwargs)
    return engine.run()


class TestBasicExecution:
    def test_single_thread_run_time_matches_work(self):
        program = tiny_program(iterations=4, work=2.0)
        result = run([JobSpec(program=program, policy=FixedPolicy(1),
                              is_target=True)])
        # 8 core-seconds of work on one thread of an idle machine.
        assert result.target_time == pytest.approx(
            program.total_work, rel=0.05,
        )

    def test_parallel_run_is_faster(self):
        program = tiny_program(iterations=6, work=4.0)
        t1 = run([JobSpec(program=program, policy=FixedPolicy(1),
                          is_target=True)]).target_time
        t8 = run([JobSpec(program=program, policy=FixedPolicy(8),
                          is_target=True)]).target_time
        assert t8 < t1 / 4

    def test_availability_limits_speed(self):
        program = tiny_program(iterations=6, work=4.0)
        full = run([JobSpec(program=program, policy=FixedPolicy(16),
                            is_target=True)], machine(32)).target_time
        constrained = run(
            [JobSpec(program=program, policy=FixedPolicy(16),
                     is_target=True)],
            machine(4),
        ).target_time
        assert constrained > 2 * full

    def test_exact_finish_time(self):
        program = tiny_program(iterations=2, work=1.0,
                               serial_fraction=0.0)
        result = run([JobSpec(program=program, policy=FixedPolicy(2),
                              is_target=True)])
        # Sub-tick precision: not quantised to multiples of dt.
        assert result.target_time == pytest.approx(
            program.total_work / 2.0, rel=0.02,
        )


class TestWorkConservation:
    def test_many_short_regions(self):
        """Regions much shorter than the tick must not lose work."""
        fine = tiny_program("fine", iterations=200, work=0.05,
                            serial_fraction=0.0)
        result = run([JobSpec(program=fine, policy=FixedPolicy(4),
                              is_target=True)])
        # 10 core-seconds at ~4 effective cores (minus efficiency).
        expected = fine.total_work / 4.0
        assert result.target_time == pytest.approx(expected, rel=0.15)

    def test_selections_once_per_region(self):
        program = tiny_program(iterations=10, serial_fraction=0.1)
        result = run([JobSpec(program=program, policy=FixedPolicy(4),
                              is_target=True)])
        assert len(result.target_selections()) == 10


class TestWorkloadJobs:
    def test_workload_restarts_until_target_finishes(self):
        target = tiny_program("target", iterations=40, work=4.0)
        workload = tiny_program("workload", iterations=4, work=0.5)
        result = run([
            JobSpec(program=target, policy=FixedPolicy(8),
                    is_target=True),
            JobSpec(program=workload, policy=FixedPolicy(8),
                    job_id="w", restart=True),
        ])
        assert result.workload_runs["w"] >= 2
        assert result.workload_work["w"] > 0

    def test_workload_throughput(self):
        target = tiny_program("target", iterations=20, work=4.0)
        workload = tiny_program("workload", iterations=5, work=1.0)
        result = run([
            JobSpec(program=target, policy=FixedPolicy(8),
                    is_target=True),
            JobSpec(program=workload, policy=FixedPolicy(4),
                    job_id="w", restart=True),
        ])
        assert result.workload_throughput > 0

    def test_contention_slows_target(self):
        target = tiny_program("target", iterations=10, work=4.0, loads=6)
        alone = run([JobSpec(program=target, policy=FixedPolicy(16),
                             is_target=True)]).target_time
        noisy = run([
            JobSpec(program=target, policy=FixedPolicy(16),
                    is_target=True),
            JobSpec(program=tiny_program("noise", iterations=50,
                                         work=8.0, loads=6),
                    policy=FixedPolicy(32), job_id="noise",
                    restart=True),
        ]).target_time
        assert noisy > alone


class TestPolicyInteraction:
    def test_policy_consulted_with_context(self):
        seen = []

        class Spy(ThreadPolicy):
            name = "spy"

            def select(self, ctx: PolicyContext) -> int:
                seen.append(ctx)
                return 4

        program = tiny_program(iterations=5)
        run([JobSpec(program=program, policy=Spy(), is_target=True)])
        assert len(seen) == 5
        ctx = seen[0]
        assert ctx.loop_name == "loop"
        assert ctx.max_threads == 32
        assert ctx.available_processors == 32
        assert ctx.env.processors == 32

    def test_region_reports_delivered(self):
        reports = []

        class Listener(FixedPolicy):
            def observe(self, report: RegionReport) -> None:
                reports.append(report)

        program = tiny_program(iterations=6)
        run([JobSpec(program=program, policy=Listener(4),
                     is_target=True)])
        assert len(reports) == 6
        assert all(r.threads == 4 for r in reports)
        assert all(r.elapsed > 0 and r.work > 0 for r in reports)
        assert all(r.rate > 0 for r in reports)

    def test_illegal_thread_count_rejected(self):
        class Bad(ThreadPolicy):
            name = "bad"

            def select(self, ctx):
                return 0

        with pytest.raises(ValueError, match="illegal"):
            run([JobSpec(program=tiny_program(), policy=Bad(),
                         is_target=True)])

    def test_policy_reset_called(self):
        class Resettable(FixedPolicy):
            def __init__(self):
                super().__init__(2)
                self.resets = 0

            def reset(self):
                self.resets += 1

        policy = Resettable()
        run([JobSpec(program=tiny_program(), policy=policy,
                     is_target=True)])
        assert policy.resets == 1


class TestResultBookkeeping:
    def test_timeline_recorded(self):
        program = tiny_program(iterations=20, work=4.0)
        result = run([JobSpec(program=program, policy=FixedPolicy(8),
                              is_target=True)])
        assert len(result.timeline) >= 2
        assert all(p.available == 32 for p in result.timeline)
        # The target runs its regions with 8 threads (serial-glue
        # samples show 1, so at least some points must show 8).
        assert any(p.target_threads == 8 for p in result.timeline)

    def test_timed_out_flag(self):
        program = tiny_program(iterations=50, work=10.0)
        result = run(
            [JobSpec(program=program, policy=FixedPolicy(1),
                     is_target=True)],
            max_time=5.0,
        )
        assert result.timed_out
        assert result.target_time is None

    def test_no_target_runs_all_to_completion(self):
        result = run([
            JobSpec(program=tiny_program("a", iterations=4),
                    policy=FixedPolicy(4), job_id="a"),
            JobSpec(program=tiny_program("b", iterations=6),
                    policy=FixedPolicy(4), job_id="b"),
        ])
        assert result.target_id is None
        assert set(result.job_times) == {"a", "b"}
        assert all(t > 0 for t in result.job_times.values())


class TestValidation:
    def test_duplicate_job_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            CoExecutionEngine(machine(), [
                JobSpec(program=tiny_program(), policy=FixedPolicy(1),
                        job_id="x"),
                JobSpec(program=tiny_program("other"),
                        policy=FixedPolicy(1), job_id="x"),
            ])

    def test_two_targets_rejected(self):
        with pytest.raises(ValueError, match="at most one target"):
            CoExecutionEngine(machine(), [
                JobSpec(program=tiny_program("a"), policy=FixedPolicy(1),
                        job_id="a", is_target=True),
                JobSpec(program=tiny_program("b"), policy=FixedPolicy(1),
                        job_id="b", is_target=True),
            ])

    def test_bad_dt(self):
        with pytest.raises(ValueError):
            CoExecutionEngine(machine(), [], dt=0.0)

    def test_bad_max_time(self):
        with pytest.raises(ValueError):
            CoExecutionEngine(machine(), [], max_time=-1.0)


class TestCpuAccounting:
    def test_cpu_time_recorded(self):
        program = tiny_program(iterations=10, work=2.0)
        result = run([JobSpec(program=program, policy=FixedPolicy(8),
                              is_target=True)])
        cpu = result.cpu_time["tiny"]
        assert cpu > 0

    def test_efficiency_at_most_one_isolated(self):
        """On an idle machine nothing spins: work ~= cpu time."""
        program = tiny_program(iterations=10, work=2.0,
                               serial_fraction=0.0)
        result = run([JobSpec(program=program, policy=FixedPolicy(8),
                              is_target=True)])
        efficiency = result.efficiency("tiny", program.total_work)
        assert 0.0 < efficiency <= 1.05

    def test_contention_lowers_efficiency(self):
        target = tiny_program("target", iterations=10, work=2.0,
                              loads=6)
        alone = run([JobSpec(program=target, policy=FixedPolicy(16),
                             is_target=True)])
        crowded = run([
            JobSpec(program=target, policy=FixedPolicy(16),
                    is_target=True),
            JobSpec(program=tiny_program("noise", iterations=60,
                                         work=6.0, loads=6),
                    policy=FixedPolicy(32), job_id="noise",
                    restart=True),
        ])
        eff_alone = alone.efficiency("target", target.total_work)
        eff_crowded = crowded.efficiency("target", target.total_work)
        assert eff_crowded < eff_alone

    def test_unknown_job_efficiency_zero(self):
        program = tiny_program(iterations=4)
        result = run([JobSpec(program=program, policy=FixedPolicy(2),
                              is_target=True)])
        assert result.efficiency("ghost", 1.0) == 0.0
