"""Engine tick tracing."""

import csv

import pytest

from repro.core.policies import FixedPolicy
from repro.machine.machine import SimMachine
from repro.machine.topology import XEON_L7555
from repro.runtime.engine import CoExecutionEngine, JobSpec
from repro.runtime.tracing import TickRecord, TickTracer
from tests.runtime.test_engine import tiny_program


def traced_run(period=0.0, workload=True):
    tracer = TickTracer(period=period)
    jobs = [JobSpec(program=tiny_program("t", iterations=10, work=2.0),
                    policy=FixedPolicy(8), job_id="target",
                    is_target=True)]
    if workload:
        jobs.append(JobSpec(
            program=tiny_program("w", iterations=5, work=1.0),
            policy=FixedPolicy(4), job_id="w", restart=True,
        ))
    machine = SimMachine(topology=XEON_L7555)
    CoExecutionEngine(machine, jobs, tracer=tracer).run()
    return tracer


class TestTickTracer:
    def test_records_every_tick(self):
        tracer = traced_run()
        assert len(tracer.rows) > 10
        first = tracer.rows[0]
        assert first.available == 32
        assert set(first.threads) == {"target", "w"}

    def test_subsampling(self):
        dense = traced_run(period=0.0)
        sparse = traced_run(period=1.0)
        assert len(sparse.rows) < len(dense.rows) / 3

    def test_series(self):
        tracer = traced_run()
        series = tracer.series("target")
        assert len(series) == len(tracer.rows)
        assert any(threads == 8 for _, threads, _ in series)
        assert all(granted <= 8 + 1e-9 for _, _, granted in series)

    def test_job_ids(self):
        tracer = traced_run()
        assert tracer.job_ids() == ["target", "w"]

    def test_utilisation_bounds(self):
        tracer = traced_run()
        assert 0.0 < tracer.utilisation() <= 1.0

    def test_oversubscription_property(self):
        record = TickRecord(
            time=0.0, available=16, total_demand=48,
            bandwidth_saturation=0.5, threads={}, granted={},
        )
        assert record.oversubscription == 3.0

    def test_clear(self):
        tracer = traced_run()
        tracer.clear()
        assert tracer.rows == []

    def test_to_csv(self, tmp_path):
        tracer = traced_run()
        path = tracer.to_csv(tmp_path / "trace.csv")
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0][:4] == [
            "time", "available", "total_demand", "saturation",
        ]
        assert "target.threads" in rows[0]
        assert len(rows) == len(tracer.rows) + 1

    def test_engine_without_tracer_unaffected(self):
        machine = SimMachine(topology=XEON_L7555)
        result = CoExecutionEngine(machine, [
            JobSpec(program=tiny_program("t", iterations=4),
                    policy=FixedPolicy(4), job_id="t",
                    is_target=True),
        ]).run()
        assert result.target_time is not None
