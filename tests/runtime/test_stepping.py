"""Event-driven vs fixed-tick stepping equivalence.

The event-driven core (``stepping="event"``) must be an *observational
drop-in* for the per-tick reference (``stepping="fixed"``): identical
Selection sequences, identical workload run counts, and work/finish
times equal to within floating-point accumulation error.  These tests
pin that contract over every scenario the experiments layer defines,
plus the structural guarantees around tracing, timeline sampling and
run-cache separation.
"""

import math

import pytest

from repro.core.policies import FixedPolicy
from repro.exec.cache import RunCache
from repro.exec.executor import Executor
from repro.exec.request import PolicySpec, RunRequest
from repro.experiments.scenarios import ALL_SCENARIOS, STATIC_ISOLATED
from repro.experiments.runner import run_target
from repro.machine.machine import SimMachine
from repro.machine.topology import XEON_L7555
from repro.runtime.engine import STEPPING_MODES, CoExecutionEngine, JobSpec
from repro.runtime.tracing import TickTracer
from repro.workload.spec import workload_sets
from tests.runtime.test_engine import tiny_program

#: Relative tolerance for quantities accumulated tick-by-tick in fixed
#: mode but in closed form in event mode (~1 ulp per skipped tick).
SPAN_REL_TOL = 1e-6


def selection_triples(result):
    return [(s.job_id, s.loop_name, s.threads) for s in result.selections]


def run_both_modes(scenario, seed=1, iterations_scale=0.3, **kwargs):
    workload = (
        workload_sets(scenario.workload_size)[0]
        if scenario.workload_size else None
    )
    return {
        mode: run_target(
            "cg", FixedPolicy(8), scenario,
            workload_set=workload, seed=seed,
            iterations_scale=iterations_scale, stepping=mode, **kwargs,
        )
        for mode in STEPPING_MODES
    }


def engine_result(stepping, program=None, policy=None, dt=0.1, **kwargs):
    program = program or tiny_program("t", iterations=10, work=2.0)
    jobs = [JobSpec(program=program, policy=policy or FixedPolicy(8),
                    job_id="target", is_target=True)]
    machine = SimMachine(topology=XEON_L7555)
    engine = CoExecutionEngine(
        machine, jobs, dt=dt, stepping=stepping, **kwargs,
    )
    return engine.run()


class TestScenarioEquivalence:
    """Both modes agree on every scenario in the experiments layer."""

    @pytest.mark.parametrize(
        "scenario", ALL_SCENARIOS, ids=lambda s: s.name,
    )
    def test_modes_agree(self, scenario):
        outcomes = run_both_modes(scenario)
        fixed = outcomes["fixed"]
        event = outcomes["event"]

        # The decision log is the policy-visible behaviour: identical
        # (job, loop, threads) sequences mean every consult saw the
        # same environment in the same order.
        assert (selection_triples(fixed.result)
                == selection_triples(event.result))

        # Discrete outcomes are exactly equal.
        assert fixed.result.workload_runs == event.result.workload_runs

        # Continuous outcomes agree within span accumulation error.
        assert event.target_time == pytest.approx(
            fixed.target_time, rel=SPAN_REL_TOL,
        )
        assert event.workload_throughput == pytest.approx(
            fixed.workload_throughput, rel=SPAN_REL_TOL, abs=1e-12,
        )
        for job_id, work in fixed.result.workload_work.items():
            assert event.result.workload_work[job_id] == pytest.approx(
                work, rel=SPAN_REL_TOL, abs=1e-12,
            )


class TestExactEquality:
    """A setting with no mid-span events is bitwise identical.

    ``FixedPolicy(1)`` on an isolated static machine with a
    serial-fraction-free program never oversubscribes, never spins and
    never changes threads, so event mode's scalar span application
    performs the same multiplies in the same order as the per-tick loop
    — the results must be equal to the last bit, not approximately.
    """

    def run_mode(self, mode):
        program = tiny_program(
            "exact", iterations=8, work=2.0, serial_fraction=0.0,
        )
        return engine_result(
            mode, program=program, policy=FixedPolicy(1), dt=0.125,
        )

    def test_bitwise_equal(self):
        fixed = self.run_mode("fixed")
        event = self.run_mode("event")
        assert event.target_time == fixed.target_time
        assert event.job_times == fixed.job_times
        assert event.duration == fixed.duration
        assert event.cpu_time == fixed.cpu_time
        assert (selection_triples(event) == selection_triples(fixed))
        assert [s.time for s in event.selections] == [
            s.time for s in fixed.selections
        ]


class TestTracing:
    """A tracer disables fast-forward: every tick must be observable."""

    def run_traced(self, mode):
        tracer = TickTracer(period=0.0)
        program = tiny_program("t", iterations=12, work=2.0)
        result = engine_result(
            mode, program=program, policy=FixedPolicy(4), tracer=tracer,
        )
        return tracer, result

    def test_event_mode_traces_every_tick(self):
        fixed_tracer, fixed = self.run_traced("fixed")
        event_tracer, event = self.run_traced("event")
        assert len(event_tracer.rows) == len(fixed_tracer.rows)
        assert event.target_time == fixed.target_time
        assert [r.time for r in event_tracer.rows] == [
            r.time for r in fixed_tracer.rows
        ]


class TestTimelineSampling:
    """Timeline samples land on the same grid in both modes."""

    def test_sampled_timeline_matches(self):
        outcomes = run_both_modes(
            STATIC_ISOLATED, timeline_period=1.0,
        )
        fixed_tl = outcomes["fixed"].result.timeline
        event_tl = outcomes["event"].result.timeline
        assert len(event_tl) == len(fixed_tl)
        assert [p.time for p in event_tl] == [p.time for p in fixed_tl]
        for fp, ep in zip(fixed_tl, event_tl):
            assert ep.available == fp.available
            assert ep.target_threads == fp.target_threads
            assert ep.workload_threads == fp.workload_threads
            assert ep.env_norm == pytest.approx(
                fp.env_norm, rel=SPAN_REL_TOL, abs=1e-12,
            )

    def test_disabled_timeline_is_empty(self):
        result = engine_result("event", timeline_period=None)
        assert result.timeline == []


class TestSteppingValidation:
    def test_engine_rejects_unknown_mode(self):
        program = tiny_program()
        jobs = [JobSpec(program=program, policy=FixedPolicy(1),
                        is_target=True)]
        with pytest.raises(ValueError, match="stepping"):
            CoExecutionEngine(
                SimMachine(topology=XEON_L7555), jobs, stepping="warp",
            )

    def test_request_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="stepping"):
            RunRequest(
                target="cg", policy=PolicySpec.fixed(4), stepping="warp",
            )


class TestCacheSeparation:
    """Runs from different stepping modes never share cache entries."""

    def request(self, mode):
        return RunRequest(
            target="cg", policy=PolicySpec.fixed(4),
            iterations_scale=0.05, stepping=mode,
        )

    def test_fingerprints_differ_only_by_mode(self):
        event_fp = self.request("event").fingerprint()
        fixed_fp = self.request("fixed").fingerprint()
        assert event_fp is not None and fixed_fp is not None
        assert event_fp != fixed_fp
        # Same mode, same config: the fingerprint is stable.
        assert self.request("event").fingerprint() == event_fp

    def test_modes_miss_each_others_entries(self, tmp_path):
        cache = RunCache(root=tmp_path)
        executor = Executor(jobs=1, cache=cache)
        executor.run([self.request("event")])
        executor.run([self.request("fixed")])
        assert cache.stores == 2
        assert cache.hits == 0
        # Replaying either mode is now a pure cache read.
        executor.run([self.request("event"), self.request("fixed")])
        assert cache.hits == 2
        assert cache.stores == 2
