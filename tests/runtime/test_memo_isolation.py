"""Memoisation never leaks state across runs or instances.

The hot path carries several memos: the module-level code-feature memo
in :mod:`repro.runtime.engine`, the per-period availability draw cache,
the per-instance ``USLScaling`` efficiency memo, the ``LoadAverage``
decay memo, the scheduler's precomputed ``JobDemand`` hash/traffic and
``Allocation.thread_share``, and the engine's per-run allocation and
demand memos.  Every one must be either keyed on its full input or
scoped to the object that owns it — a run repeated after unrelated runs
in the same process must be *bit-identical* to its first execution.
"""

import math

from repro.core.policies import FixedPolicy
from repro.exec.request import PolicySpec, RunRequest, execute_request
from repro.experiments.scenarios import SMALL_HIGH, SMALL_LOW
from repro.machine.availability import PeriodicAvailability
from repro.machine.machine import SimMachine
from repro.machine.topology import XEON_L7555
from repro.programs.scaling import USLScaling
from repro.runtime.engine import CoExecutionEngine, JobSpec
from repro.sched.loadavg import LoadAverage, LoadAverages
from repro.sched.scheduler import Allocation, JobDemand
from tests.runtime.test_engine import tiny_program


def summary_signature(summary):
    """Every continuous and discrete outcome of a run, bit-exact."""
    return (
        summary.target_time,
        summary.duration,
        summary.workload_throughput,
        summary.workload_runs,
        summary.selections,
    )


class TestRepeatedRunsAreBitIdentical:
    """A request re-executed after unrelated runs matches its first run.

    This is the regression net for cross-run leakage: any memo keyed too
    narrowly (e.g. on object identity that gets recycled, or on a subset
    of the physical inputs) would make the replay diverge.
    """

    def request(self, seed=1, scenario=SMALL_LOW, stepping="event"):
        return RunRequest(
            target="cg", policy=PolicySpec.fixed(8), scenario=scenario,
            seed=seed, iterations_scale=0.1, stepping=stepping,
        )

    def test_interleaved_requests_replay_identically(self):
        first = execute_request(self.request())
        # Unrelated runs in between: different seed, different scenario,
        # different stepping mode — these churn every process-global
        # memo (registry programs, code features, availability draws,
        # scaling efficiencies) with other keys.
        execute_request(self.request(seed=2))
        execute_request(self.request(scenario=SMALL_HIGH))
        execute_request(self.request(stepping="fixed"))
        replay = execute_request(self.request())
        assert summary_signature(replay) == summary_signature(first)

    def test_engine_rerun_with_shared_programs(self):
        # Two engines over the *same* Program objects: the code-feature
        # memo and the scaling-model memos are shared by design, the
        # run state (instances, demands, allocations, rates) must not be.
        target = tiny_program("t", iterations=10, work=2.0)
        workload = tiny_program("w", iterations=5, work=1.0)

        def run_once():
            jobs = [
                JobSpec(program=target, policy=FixedPolicy(8),
                        job_id="target", is_target=True),
                JobSpec(program=workload, policy=FixedPolicy(4),
                        job_id="w", restart=True),
            ]
            machine = SimMachine(topology=XEON_L7555)
            return CoExecutionEngine(machine, jobs).run()

        first = run_once()
        second = run_once()
        assert second.target_time == first.target_time
        assert second.job_times == first.job_times
        assert second.workload_work == first.workload_work
        assert second.cpu_time == first.cpu_time


class TestAvailabilityDrawCache:
    def test_draws_keyed_on_seed_and_bounds(self):
        a = PeriodicAvailability(max_processors=32, period=10.0, seed=3)
        b = PeriodicAvailability(max_processors=32, period=10.0, seed=4)
        times = [5.0 + 10.0 * i for i in range(20)]
        # Interleave queries from both instances, then replay each in
        # isolation: the shared lru_cache must answer per (seed, index).
        interleaved_a = []
        interleaved_b = []
        for t in times:
            interleaved_a.append(a.available(t))
            interleaved_b.append(b.available(t))
        assert interleaved_a == [a.available(t) for t in times]
        assert interleaved_b == [b.available(t) for t in times]
        assert interleaved_a != interleaved_b  # distinct seeds diverge

    def test_same_seed_instances_agree(self):
        a = PeriodicAvailability(max_processors=32, period=10.0, seed=7)
        b = PeriodicAvailability(max_processors=32, period=10.0, seed=7)
        times = [5.0 + 10.0 * i for i in range(10)]
        assert [a.available(t) for t in times] == [
            b.available(t) for t in times
        ]


class TestPerInstanceMemos:
    def test_usl_efficiency_memo_is_per_instance(self):
        steep = USLScaling(sigma=0.3, kappa=0.01)
        flat = USLScaling(sigma=0.005, kappa=0.0001)
        # Populate one memo first, then check the other is unaffected.
        for n in (1, 4, 16):
            steep.efficiency(n)
        for n in (1, 4, 16):
            assert flat.efficiency(n) == flat.speedup(n) / n
            assert steep.efficiency(n) == steep.speedup(n) / n

    def test_loadavg_decay_memo_tracks_dt_changes(self):
        memoed = LoadAverage(period=60.0)
        memoed.update(4.0, 0.1)
        memoed.update(4.0, 0.5)  # dt change invalidates the memo
        memoed.update(4.0, 0.1)

        fresh = LoadAverage(period=60.0)
        for dt in (0.1, 0.5, 0.1):
            fresh.update(4.0, dt)
        assert memoed.value == fresh.value

    def test_loadavg_pair_advance_matches_iterated_updates(self):
        span = LoadAverages()
        ticks = LoadAverages()
        span.update(3.0, 0.1)
        ticks.update(3.0, 0.1)
        span.advance(3.0, 0.1, 64)
        for _ in range(64):
            ticks.update(3.0, 0.1)
        assert abs(span.ldavg_1 - ticks.ldavg_1) < 1e-12
        assert abs(span.ldavg_5 - ticks.ldavg_5) < 1e-12


class TestSchedulerPrecomputation:
    def test_job_demand_hash_matches_field_tuple(self):
        a = JobDemand("j", 8, memory_intensity=0.5, locality=0.9)
        b = JobDemand("j", 8, memory_intensity=0.5, locality=0.9)
        assert a == b
        assert hash(a) == hash(b)
        assert {a: 1}[b] == 1  # usable as a memo key across instances

    def test_job_demand_traffic_precomputed(self):
        demand = JobDemand("j", 8, memory_intensity=0.5, locality=0.8)
        assert demand.traffic == 8 * 0.5 / 0.8
        assert JobDemand("j", 0).traffic == 0.0

    def test_thread_share_lazy_and_prefilled_agree(self):
        lazy = Allocation(
            job_id="j", threads=8, granted_cpus=6.0,
            switch_factor=1.0, memory_factor=1.0,
        )
        assert lazy.thread_share == 6.0 / 8
        zero = Allocation(
            job_id="j", threads=0, granted_cpus=0.0,
            switch_factor=1.0, memory_factor=1.0,
        )
        assert zero.thread_share == 0.0
