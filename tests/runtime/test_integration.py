"""Cross-module integration invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policies import (
    AnalyticPolicy,
    DefaultPolicy,
    FixedPolicy,
    MixturePolicy,
    OfflinePolicy,
    OnlineHillClimbPolicy,
)
from repro.core.policies.base import RegionReport, ThreadPolicy
from repro.machine.availability import PeriodicAvailability
from repro.machine.machine import SimMachine
from repro.machine.topology import TWELVE_CORE, XEON_L7555
from repro.programs import registry
from repro.core.training import scale_program
from repro.runtime.engine import CoExecutionEngine, JobSpec
from tests.runtime.test_engine import tiny_program

SCALE = 0.08


def run_benchmark(name, policy, workload=None, seed=0, topology=None,
                  dynamic=False):
    topology = topology or XEON_L7555
    availability = (
        PeriodicAvailability(max_processors=topology.cores, seed=seed)
        if dynamic else None
    )
    machine = SimMachine(topology=topology, availability=availability)
    jobs = [JobSpec(
        program=scale_program(registry.get(name), SCALE),
        policy=policy, job_id="target", is_target=True,
    )]
    if workload:
        jobs.append(JobSpec(
            program=scale_program(registry.get(workload), SCALE),
            policy=DefaultPolicy(), job_id="w", restart=True,
        ))
    return CoExecutionEngine(machine, jobs, max_time=7200.0).run()


class TestWorkConservation:
    """The engine must retire exactly each program's defined work."""

    @pytest.mark.parametrize("threads", [1, 3, 8, 32])
    def test_region_reports_cover_all_parallel_work(self, threads):
        reports = []

        class Listener(FixedPolicy):
            def observe(self, report: RegionReport) -> None:
                reports.append(report)

        program = tiny_program(iterations=12, work=2.0,
                               serial_fraction=0.1)
        machine = SimMachine(topology=XEON_L7555)
        CoExecutionEngine(machine, [
            JobSpec(program=program, policy=Listener(threads),
                    job_id="t", is_target=True),
        ]).run()
        reported = sum(r.work for r in reports)
        parallel = sum(
            r.work for r in program.regions
        ) * program.iterations
        assert reported == pytest.approx(parallel, rel=1e-6)

    def test_rates_are_physical(self):
        """No region may retire work faster than the whole machine."""
        reports = []

        class Listener(FixedPolicy):
            def observe(self, report: RegionReport) -> None:
                reports.append(report)

        run_benchmark("ep", Listener(32))
        for report in reports:
            assert report.rate <= XEON_L7555.cores + 1e-6


class TestDeterminism:
    POLICIES = [
        ("default", DefaultPolicy),
        ("online", OnlineHillClimbPolicy),
        ("analytic", AnalyticPolicy),
    ]

    @pytest.mark.parametrize("name,factory", POLICIES,
                             ids=[p[0] for p in POLICIES])
    def test_repeat_runs_identical(self, name, factory):
        a = run_benchmark("cg", factory(), workload="is", seed=4,
                          dynamic=True)
        b = run_benchmark("cg", factory(), workload="is", seed=4,
                          dynamic=True)
        assert a.target_time == b.target_time
        assert a.workload_work == b.workload_work

    def test_mixture_deterministic(self, tiny_bundle):
        times = [
            run_benchmark("cg", MixturePolicy(tiny_bundle.experts),
                          workload="is", seed=4,
                          dynamic=True).target_time
            for _ in range(2)
        ]
        assert times[0] == times[1]


class TestAllPoliciesOnAllBenchmarks:
    """Every policy must produce legal decisions on every program."""

    def policies(self, tiny_bundle, tiny_mono):
        return [
            DefaultPolicy(),
            OnlineHillClimbPolicy(),
            AnalyticPolicy(),
            OfflinePolicy(tiny_mono.experts[0]),
            MixturePolicy(tiny_bundle.experts),
        ]

    @pytest.mark.parametrize("benchmark_name", [
        "bt", "cg", "ep", "ft", "is", "lu", "mg", "sp",
        "ammp", "art", "equake",
        "blackscholes", "bodytrack", "freqmine",
        "fluidanimate", "swaptions", "canneal",
    ])
    def test_benchmark_runs_under_every_policy(
        self, benchmark_name, tiny_bundle, tiny_mono,
    ):
        for policy in self.policies(tiny_bundle, tiny_mono):
            result = run_benchmark(benchmark_name, policy)
            assert result.target_time is not None
            assert result.target_time > 0
            for selection in result.target_selections():
                assert 1 <= selection.threads <= 32

    def test_twelve_core_platform(self, tiny_bundle):
        result = run_benchmark(
            "cg", MixturePolicy(tiny_bundle.experts),
            topology=TWELVE_CORE,
        )
        for selection in result.target_selections():
            assert 1 <= selection.threads <= 12


class TestSmartBeatsDumbWhereItShould:
    """Sanity: under load, fewer threads beat the default for the
    irregular memory-bound codes — the effect the paper exploits."""

    def test_cg_under_load_prefers_fewer_threads(self):
        default_time = run_benchmark(
            "cg", DefaultPolicy(), workload="is",
        ).target_time
        small_time = run_benchmark(
            "cg", FixedPolicy(6), workload="is",
        ).target_time
        assert small_time < default_time

    def test_ep_grabs_the_machine(self):
        default_time = run_benchmark(
            "ep", DefaultPolicy(), workload="is",
        ).target_time
        tiny_time = run_benchmark(
            "ep", FixedPolicy(2), workload="is",
        ).target_time
        assert default_time < tiny_time


class TestEngineProperties:
    @given(st.integers(min_value=1, max_value=32),
           st.integers(min_value=2, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_any_fixed_policy_terminates(self, threads, iterations):
        program = tiny_program(
            "fuzz", iterations=iterations, work=1.0,
        )
        machine = SimMachine(topology=XEON_L7555)
        result = CoExecutionEngine(machine, [
            JobSpec(program=program, policy=FixedPolicy(threads),
                    job_id="t", is_target=True),
        ]).run()
        assert result.target_time is not None
        assert not result.timed_out

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_dynamic_availability_never_crashes(self, seed):
        machine = SimMachine(
            topology=XEON_L7555,
            availability=PeriodicAvailability(
                max_processors=32, period=5.0, seed=seed,
            ),
        )
        result = CoExecutionEngine(machine, [
            JobSpec(program=tiny_program("fuzz", iterations=6),
                    policy=DefaultPolicy(), job_id="t",
                    is_target=True),
        ]).run()
        assert result.target_time is not None
