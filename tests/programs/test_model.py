"""Program models and execution instances."""

import pytest

from repro.compiler.builder import IRBuilder
from repro.programs.model import ProgramModel, build_program


def module_two_loops():
    b = IRBuilder("m")
    with b.function("f"):
        with b.parallel_loop("big", trip_count=30):
            b.fadd()
        with b.parallel_loop("small", trip_count=10):
            b.fadd()
    return b.build()


def program(iterations=3, work=10.0, serial_fraction=0.1):
    return build_program(
        name="prog", suite="test", module=module_two_loops(),
        iterations=iterations, work_per_iteration=work,
        serial_fraction=serial_fraction,
    )


class TestBuildProgram:
    def test_work_distributed_by_instruction_count(self):
        p = program()
        big = p.region("big")
        small = p.region("small")
        assert big.work == pytest.approx(9.0 * 30 / 40)
        assert small.work == pytest.approx(9.0 * 10 / 40)

    def test_serial_fraction(self):
        p = program()
        assert p.serial_work_per_iteration == pytest.approx(1.0)

    def test_total_work(self):
        p = program()
        assert p.total_work == pytest.approx(30.0)
        assert p.serial_time() == pytest.approx(30.0)

    def test_region_lookup_unknown(self):
        with pytest.raises(KeyError):
            program().region("nope")

    def test_no_loops_rejected(self):
        b = IRBuilder("empty")
        with b.function("f"):
            b.call("main")
        with pytest.raises(ValueError, match="no parallel loops"):
            build_program("p", "t", b.build(), 1, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_program("p", "t", module_two_loops(), 0, 1.0)
        with pytest.raises(ValueError):
            build_program("p", "t", module_two_loops(), 1, 1.0,
                          serial_fraction=1.0)


class TestProgramInstance:
    def test_starts_in_serial_glue(self):
        inst = program().instantiate()
        assert inst.in_serial
        assert inst.current_region is None

    def test_skips_serial_when_none(self):
        inst = program(serial_fraction=0.0).instantiate()
        assert not inst.in_serial
        assert inst.current_region.loop_name == "big"

    def test_advance_through_one_iteration(self):
        p = program()
        inst = p.instantiate()
        entered = inst.advance(p.serial_work_per_iteration)
        assert entered  # first region begins
        assert inst.current_region.loop_name == "big"
        entered = inst.advance(p.region("big").work)
        assert entered
        assert inst.current_region.loop_name == "small"

    def test_iterations_cycle(self):
        p = program(iterations=2)
        inst = p.instantiate()
        # Walk exactly one iteration: serial glue + both regions.
        for _ in range(1 + len(p.regions)):
            inst.advance(inst.remaining)
        assert inst.iteration == 1
        assert inst.in_serial
        assert not inst.finished

    def test_finishes(self):
        p = program(iterations=2)
        inst = p.instantiate()
        inst.advance(p.total_work + 1.0)
        # advance() consumes only the current phase; walk to the end.
        steps = 0
        while not inst.finished and steps < 100:
            inst.advance(max(inst.remaining, 1e-9))
            steps += 1
        assert inst.finished
        assert inst.progress_fraction() == 1.0

    def test_advance_after_finish_rejected(self):
        p = program(iterations=1)
        inst = p.instantiate()
        while not inst.finished:
            inst.advance(inst.remaining)
        with pytest.raises(RuntimeError):
            inst.advance(1.0)

    def test_negative_work_rejected(self):
        inst = program().instantiate()
        with pytest.raises(ValueError):
            inst.advance(-1.0)

    def test_progress_fraction_monotone(self):
        p = program()
        inst = p.instantiate()
        seen = [inst.progress_fraction()]
        while not inst.finished:
            inst.advance(inst.remaining)
            seen.append(inst.progress_fraction())
        assert seen == sorted(seen)
        assert seen[0] == pytest.approx(0.0)
        assert seen[-1] == 1.0

    def test_restart(self):
        p = program(iterations=1)
        inst = p.instantiate()
        while not inst.finished:
            inst.advance(inst.remaining)
        inst.restart()
        assert not inst.finished
        assert inst.iteration == 0
        assert inst.progress_fraction() == pytest.approx(0.0)

    def test_job_id_defaults_to_program_name(self):
        assert program().instantiate().job_id == "prog"
        assert program().instantiate("custom").job_id == "custom"

    def test_partial_advance_no_boundary(self):
        p = program()
        inst = p.instantiate()
        assert not inst.advance(p.serial_work_per_iteration / 2)
        assert inst.in_serial
