"""Benchmark suite definitions and the registry."""

import pytest

from repro.compiler.ir import AccessPattern
from repro.programs import registry
from repro.programs.registry import ALIASES, all_programs, canonical_name


class TestRegistry:
    def test_all_suites_present(self):
        suites = {p.suite for p in all_programs()}
        assert suites == {"nas", "spec", "parsec", "rodinia"}

    def test_nas_has_the_eight_codes(self):
        names = {p.name for p in registry.suite("nas")}
        assert names == {"bt", "cg", "ep", "ft", "is", "lu", "mg", "sp"}

    def test_spec_c_codes(self):
        names = {p.name for p in registry.suite("spec")}
        assert names == {"ammp", "art", "equake"}

    def test_parsec_names(self):
        names = {p.name for p in registry.suite("parsec")}
        assert {"blackscholes", "bodytrack", "freqmine"} <= names

    def test_aliases_resolve(self):
        assert registry.get("bscholes").name == "blackscholes"
        assert registry.get("btrack").name == "bodytrack"
        assert registry.get("fmine").name == "freqmine"
        assert registry.get("fft").name == "ft"

    def test_canonical_name_passthrough(self):
        assert canonical_name("lu") == "lu"
        assert canonical_name("fmine") == "freqmine"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            registry.get("doom")

    def test_unknown_suite(self):
        with pytest.raises(KeyError, match="unknown suite"):
            registry.suite("dwarfs")

    def test_names_sorted_and_complete(self):
        names = registry.names()
        assert names == sorted(names)
        assert len(names) == len(all_programs())

    def test_aliases_point_at_real_programs(self):
        for target in ALIASES.values():
            registry.get(target)


class TestProgramCharacter:
    """The instruction mixes must encode each code's published nature."""

    def test_ep_is_compute_bound(self):
        ep = registry.get("ep")
        assert ep.regions[0].memory_intensity < 0.1
        assert ep.regions[0].sync_intensity == 0.0

    def test_cg_is_memory_bound_and_irregular(self):
        cg = registry.get("cg")
        spmv = cg.region("spmv")
        assert spmv.memory_intensity > 0.4
        assert spmv.analysis.access_pattern is AccessPattern.IRREGULAR
        assert spmv.sync_intensity > 0.0  # barriers

    def test_blackscholes_scales_like_ep(self):
        bs = registry.get("blackscholes")
        assert bs.regions[0].memory_intensity < 0.15
        assert bs.regions[0].scaling.peak_threads > 32

    def test_cg_peaks_below_machine_size(self):
        cg = registry.get("cg")
        assert cg.region("spmv").scaling.peak_threads < 32

    def test_canneal_is_irregular(self):
        canneal = registry.get("canneal")
        assert (canneal.regions[0].analysis.access_pattern
                is AccessPattern.IRREGULAR)

    def test_rodinia_suite(self):
        names = {p.name for p in registry.suite("rodinia")}
        assert names == {
            "kmeans", "bfs", "hotspot", "lud", "nw", "srad",
            "streamcluster", "backprop",
        }

    def test_bfs_is_irregular_and_sync_heavy(self):
        bfs = registry.get("bfs")
        frontier = bfs.regions[0]
        assert frontier.analysis.access_pattern is AccessPattern.IRREGULAR
        assert frontier.sync_intensity > 0.0

    def test_kmeans_is_compute_bound(self):
        kmeans = registry.get("kmeans")
        assert kmeans.region("distance").memory_intensity < 0.2

    def test_every_program_has_positive_work(self):
        for program in all_programs():
            assert program.total_work > 0
            for region in program.regions:
                assert region.work > 0

    def test_serial_times_in_calibrated_band(self):
        """Work budgets stay in the 100-400 core-second band."""
        for program in all_programs():
            assert 100.0 <= program.serial_time() <= 400.0, program.name

    def test_region_count_band(self):
        for program in all_programs():
            assert 1 <= len(program.regions) <= 6

    def test_enough_mapping_decisions(self):
        """Every program must offer enough region entries for online
        adaptation (the mixture needs a decision stream)."""
        for program in all_programs():
            decisions = program.iterations * len(program.regions)
            assert decisions >= 60, program.name
