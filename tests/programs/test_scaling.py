"""Scaling laws."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.builder import IRBuilder
from repro.compiler.ir import AccessPattern
from repro.compiler.passes import analyze_loop
from repro.programs.scaling import AmdahlScaling, USLScaling, derive_scaling


class TestAmdahl:
    def test_no_serial_fraction_is_linear(self):
        law = AmdahlScaling(serial_fraction=0.0)
        assert law.speedup(8) == pytest.approx(8.0)

    def test_limit(self):
        law = AmdahlScaling(serial_fraction=0.25)
        assert law.speedup(10_000) == pytest.approx(4.0, rel=1e-3)

    def test_efficiency(self):
        law = AmdahlScaling(serial_fraction=0.1)
        assert law.efficiency(4) == pytest.approx(law.speedup(4) / 4)

    def test_single_thread(self):
        assert AmdahlScaling(0.5).speedup(1) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AmdahlScaling(serial_fraction=1.5)
        with pytest.raises(ValueError):
            AmdahlScaling(0.1).speedup(0)


class TestUSL:
    def test_reduces_to_amdahl_without_kappa(self):
        usl = USLScaling(sigma=0.1, kappa=0.0)
        amdahl = AmdahlScaling(serial_fraction=0.1)
        for n in (1, 2, 8, 32):
            assert usl.speedup(n) == pytest.approx(amdahl.speedup(n))

    def test_retrograde_beyond_peak(self):
        usl = USLScaling(sigma=0.05, kappa=0.01)
        peak = usl.peak_threads
        assert usl.speedup(peak) > usl.speedup(4 * peak)

    def test_peak_formula(self):
        usl = USLScaling(sigma=0.1, kappa=0.001)
        expected = round(((1 - 0.1) / 0.001) ** 0.5)
        assert usl.peak_threads == expected

    def test_peak_unbounded_without_kappa(self):
        assert USLScaling(sigma=0.1, kappa=0.0).peak_threads >= 10 ** 6

    def test_validation(self):
        with pytest.raises(ValueError):
            USLScaling(sigma=-0.1, kappa=0.0)
        with pytest.raises(ValueError):
            USLScaling(0.1, 0.001).speedup(0)

    @given(st.floats(min_value=0.0, max_value=0.5),
           st.floats(min_value=0.0, max_value=0.05),
           st.integers(min_value=1, max_value=128))
    @settings(max_examples=80, deadline=None)
    def test_invariants(self, sigma, kappa, n):
        usl = USLScaling(sigma=sigma, kappa=kappa)
        speedup = usl.speedup(n)
        assert 0.0 < speedup <= n + 1e-9
        assert usl.speedup(1) == pytest.approx(1.0)
        assert 0.0 < usl.efficiency(n) <= 1.0 + 1e-9


def loop_with(access=AccessPattern.REGULAR, loads=2, barriers=0,
              reduction=False):
    b = IRBuilder("m")
    with b.function("f"):
        with b.parallel_loop("l", trip_count=100, access=access,
                             reduction=reduction):
            for _ in range(loads):
                b.load()
            for _ in range(10):
                b.fmul()
            for _ in range(barriers):
                b.barrier()
    return b.build().function("f").loops[0]


class TestDeriveScaling:
    def test_memory_bound_has_higher_sigma(self):
        light = derive_scaling(analyze_loop(loop_with(loads=1)))
        heavy = derive_scaling(analyze_loop(loop_with(loads=10)))
        assert heavy.sigma > light.sigma

    def test_barriers_raise_kappa(self):
        none = derive_scaling(analyze_loop(loop_with(barriers=0)))
        barriered = derive_scaling(analyze_loop(loop_with(barriers=2)))
        assert barriered.kappa > none.kappa

    def test_irregular_access_penalised(self):
        regular = derive_scaling(analyze_loop(loop_with()))
        irregular = derive_scaling(analyze_loop(
            loop_with(access=AccessPattern.IRREGULAR)
        ))
        assert irregular.sigma > regular.sigma
        assert irregular.kappa > regular.kappa

    def test_strided_midway(self):
        regular = derive_scaling(analyze_loop(loop_with()))
        strided = derive_scaling(analyze_loop(
            loop_with(access=AccessPattern.STRIDED)
        ))
        irregular = derive_scaling(analyze_loop(
            loop_with(access=AccessPattern.IRREGULAR)
        ))
        assert regular.sigma < strided.sigma < irregular.sigma

    def test_reduction_raises_kappa(self):
        plain = derive_scaling(analyze_loop(loop_with()))
        reduced = derive_scaling(analyze_loop(loop_with(reduction=True)))
        assert reduced.kappa > plain.kappa

    def test_compute_bound_scales_past_32(self):
        law = derive_scaling(analyze_loop(loop_with(loads=0)))
        assert law.peak_threads > 32
