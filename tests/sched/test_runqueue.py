"""Run-queue statistics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched.runqueue import RunQueueStats


class TestRunQueueStats:
    def test_runq_sz_counts_all_runnable(self):
        stats = RunQueueStats(runnable=48, processors=32)
        assert stats.runq_sz == 48

    def test_waiting(self):
        assert RunQueueStats(48, 32).waiting == 16
        assert RunQueueStats(8, 32).waiting == 0

    def test_oversubscription(self):
        assert RunQueueStats(64, 32).oversubscription == 2.0

    def test_utilization_caps_at_one(self):
        assert RunQueueStats(64, 32).utilization == 1.0
        assert RunQueueStats(16, 32).utilization == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RunQueueStats(runnable=-1, processors=4)
        with pytest.raises(ValueError):
            RunQueueStats(runnable=4, processors=0)

    @given(st.integers(min_value=0, max_value=500),
           st.integers(min_value=1, max_value=128))
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, runnable, processors):
        stats = RunQueueStats(runnable, processors)
        assert stats.waiting == max(0, runnable - processors)
        assert 0.0 <= stats.utilization <= 1.0
        assert stats.oversubscription >= 0.0
