"""Page-cache model."""

import pytest

from repro.sched.memory import PageCacheModel


class TestPageCacheModel:
    def test_initial_warm_cache(self):
        model = PageCacheModel(ram_gb=64.0)
        assert model.cached_gb == pytest.approx(6.4)

    def test_relaxes_toward_working_set(self):
        model = PageCacheModel(ram_gb=64.0)
        for _ in range(1000):
            model.update(memory_traffic=20.0, dt=0.1)
        expected = 0.1 * 64.0 + 0.35 * 20.0
        assert model.cached_gb == pytest.approx(expected, rel=0.02)

    def test_cache_capped_below_ram(self):
        model = PageCacheModel(ram_gb=16.0)
        for _ in range(5000):
            model.update(memory_traffic=1000.0, dt=0.1)
        assert model.cached_gb <= 0.9 * 16.0 + 1e-6

    def test_free_rate_tracks_traffic(self):
        model = PageCacheModel(ram_gb=64.0)
        model.update(memory_traffic=0.0, dt=0.1)
        idle = model.pages_free_rate
        model.update(memory_traffic=30.0, dt=0.1)
        assert model.pages_free_rate > idle

    def test_reclaim_under_pressure(self):
        model = PageCacheModel(ram_gb=16.0)
        for _ in range(5000):
            model.update(memory_traffic=200.0, dt=0.1)
        pressured = model.pages_free_rate
        relaxed = PageCacheModel(ram_gb=16.0)
        relaxed.update(memory_traffic=200.0, dt=0.1)
        assert pressured > relaxed.pages_free_rate

    def test_cached_fraction(self):
        model = PageCacheModel(ram_gb=64.0)
        assert model.cached_fraction == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PageCacheModel(ram_gb=0.0)
        model = PageCacheModel(ram_gb=8.0)
        with pytest.raises(ValueError):
            model.update(memory_traffic=-1.0, dt=0.1)
        with pytest.raises(ValueError):
            model.update(memory_traffic=1.0, dt=-0.1)


class TestAdvance:
    def test_matches_iterated_updates(self):
        span = PageCacheModel(ram_gb=64.0)
        ticks = PageCacheModel(ram_gb=64.0)
        for model in (span, ticks):
            model.update(memory_traffic=10.0, dt=0.1)
        span.advance(memory_traffic=25.0, dt=0.1, ticks=64)
        for _ in range(64):
            ticks.update(memory_traffic=25.0, dt=0.1)
        assert abs(span.cached_gb - ticks.cached_gb) < 1e-9
        assert abs(span.pages_free_rate - ticks.pages_free_rate) < 1e-9

    def test_zero_ticks_is_identity(self):
        model = PageCacheModel(ram_gb=16.0)
        model.update(memory_traffic=5.0, dt=0.1)
        cached, rate = model.cached_gb, model.pages_free_rate
        model.advance(memory_traffic=100.0, dt=0.1, ticks=0)
        assert model.cached_gb == cached
        assert model.pages_free_rate == rate

    def test_one_tick_is_exactly_update(self):
        a = PageCacheModel(ram_gb=16.0)
        b = PageCacheModel(ram_gb=16.0)
        a.advance(memory_traffic=12.0, dt=0.1, ticks=1)
        b.update(memory_traffic=12.0, dt=0.1)
        assert a.cached_gb == b.cached_gb
        assert a.pages_free_rate == b.pages_free_rate

    def test_free_rate_reflects_final_cache_level(self):
        # A long pressured span must land in the reclaim regime exactly
        # as the last iterated update would.
        model = PageCacheModel(ram_gb=16.0)
        model.advance(memory_traffic=200.0, dt=0.1, ticks=5000)
        relaxed = PageCacheModel(ram_gb=16.0)
        relaxed.update(memory_traffic=200.0, dt=0.1)
        assert model.pages_free_rate > relaxed.pages_free_rate

    def test_rejects_bad_inputs(self):
        model = PageCacheModel(ram_gb=8.0)
        with pytest.raises(ValueError):
            model.advance(memory_traffic=1.0, dt=0.1, ticks=-1)
        with pytest.raises(ValueError):
            model.advance(memory_traffic=-1.0, dt=0.1, ticks=5)
        with pytest.raises(ValueError):
            model.advance(memory_traffic=1.0, dt=-0.1, ticks=5)
