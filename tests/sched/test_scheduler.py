"""Proportional-share scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.topology import XEON_L7555
from repro.sched.scheduler import JobDemand, ProportionalShareScheduler


def scheduler():
    return ProportionalShareScheduler(XEON_L7555)


class TestJobDemand:
    def test_traffic(self):
        demand = JobDemand("a", threads=10, memory_intensity=0.5)
        assert demand.traffic == pytest.approx(5.0)

    def test_traffic_scaled_by_locality(self):
        local = JobDemand("a", threads=10, memory_intensity=0.5,
                          locality=1.0)
        remote = JobDemand("a", threads=10, memory_intensity=0.5,
                           locality=0.5)
        assert remote.traffic == pytest.approx(2 * local.traffic)

    def test_zero_threads(self):
        assert JobDemand("a", threads=0).traffic == 0.0

    @pytest.mark.parametrize("kwargs", [
        dict(threads=-1),
        dict(threads=1, memory_intensity=1.5),
        dict(threads=1, memory_intensity=-0.1),
        dict(threads=1, locality=0.0),
        dict(threads=1, locality=1.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            JobDemand("a", **kwargs)


class TestAllocation:
    def test_undersubscribed_full_grant(self):
        tick = scheduler().allocate(
            [JobDemand("a", 8), JobDemand("b", 8)], available=32,
        )
        assert tick.allocations["a"].granted_cpus == pytest.approx(8.0)
        assert tick.allocations["a"].switch_factor == 1.0

    def test_oversubscribed_proportional(self):
        tick = scheduler().allocate(
            [JobDemand("a", 48), JobDemand("b", 16)], available=32,
        )
        assert tick.allocations["a"].granted_cpus == pytest.approx(24.0)
        assert tick.allocations["b"].granted_cpus == pytest.approx(8.0)

    def test_grants_sum_to_available_when_oversubscribed(self):
        tick = scheduler().allocate(
            [JobDemand("a", 40), JobDemand("b", 25), JobDemand("c", 7)],
            available=20,
        )
        total = sum(a.granted_cpus for a in tick.allocations.values())
        assert total == pytest.approx(20.0)

    def test_switch_factor_degrades_with_overload(self):
        light = scheduler().allocate([JobDemand("a", 32)], 32)
        heavy = scheduler().allocate([JobDemand("a", 96)], 32)
        assert light.allocations["a"].switch_factor == 1.0
        assert heavy.allocations["a"].switch_factor < 1.0

    def test_memory_factor_only_under_saturation(self):
        sched = scheduler()
        light = sched.allocate(
            [JobDemand("a", 4, memory_intensity=0.5)], 32,
        )
        assert light.allocations["a"].memory_factor == 1.0
        heavy = sched.allocate(
            [JobDemand("a", 32, memory_intensity=1.0),
             JobDemand("b", 32, memory_intensity=1.0)], 32,
        )
        assert heavy.allocations["a"].memory_factor < 1.0

    def test_memory_factor_spares_compute_bound(self):
        tick = scheduler().allocate(
            [JobDemand("mem", 32, memory_intensity=1.0),
             JobDemand("cpu", 32, memory_intensity=0.0)], 32,
        )
        assert tick.allocations["cpu"].memory_factor == 1.0
        assert tick.allocations["mem"].memory_factor < 1.0

    def test_effective_cpus_combines_factors(self):
        tick = scheduler().allocate(
            [JobDemand("a", 64, memory_intensity=1.0),
             JobDemand("b", 64, memory_intensity=1.0)], 32,
        )
        alloc = tick.allocations["a"]
        assert alloc.effective_cpus == pytest.approx(
            alloc.granted_cpus * alloc.switch_factor
            * alloc.memory_factor
        )

    def test_runqueue_reports_demand(self):
        tick = scheduler().allocate(
            [JobDemand("a", 48), JobDemand("b", 16)], 32,
        )
        assert tick.runqueue.runq_sz == 64
        assert tick.runqueue.processors == 32

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            scheduler().allocate(
                [JobDemand("a", 4), JobDemand("a", 4)], 32,
            )

    def test_available_bounds(self):
        with pytest.raises(ValueError):
            scheduler().allocate([JobDemand("a", 4)], 0)
        with pytest.raises(ValueError, match="exceeds topology"):
            scheduler().allocate([JobDemand("a", 4)], 64)

    def test_empty_demands(self):
        tick = scheduler().allocate([], 32)
        assert tick.runqueue.runq_sz == 0
        assert tick.memory_traffic == 0.0

    @given(
        threads=st.lists(st.integers(min_value=0, max_value=64),
                         min_size=1, max_size=6),
        available=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_grant_invariants(self, threads, available):
        demands = [
            JobDemand(f"j{i}", n, memory_intensity=0.3)
            for i, n in enumerate(threads)
        ]
        tick = scheduler().allocate(demands, available)
        for demand in demands:
            alloc = tick.allocations[demand.job_id]
            assert 0.0 <= alloc.granted_cpus <= demand.threads + 1e-9
            assert 0.0 < alloc.switch_factor <= 1.0
            assert 0.0 < alloc.memory_factor <= 1.0
