"""Environment sampling and the external-perspective rule."""

import numpy as np
import pytest

from repro.machine.topology import XEON_L7555
from repro.sched.scheduler import JobDemand, ProportionalShareScheduler
from repro.sched.stats import (
    ENV_FEATURE_NAMES,
    EnvironmentSample,
    SystemStatsSampler,
    environment_norm,
)


def run_ticks(sampler, demands, ticks=5, dt=0.1):
    sched = ProportionalShareScheduler(XEON_L7555)
    time = 0.0
    for _ in range(ticks):
        allocation = sched.allocate(demands, 32)
        sampler.update(time, dt, demands, allocation)
        time += dt
    return sampler


class TestEnvironmentNorm:
    def test_rms(self):
        assert environment_norm([3.0, 4.0]) == pytest.approx(
            np.sqrt((9 + 16) / 2)
        )

    def test_zero_vector(self):
        assert environment_norm([0.0, 0.0, 0.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            environment_norm([])

    def test_scale_invariant_in_dim(self):
        # RMS of a constant vector equals the constant, any dimension.
        assert environment_norm([5.0] * 3) == pytest.approx(5.0)
        assert environment_norm([5.0] * 7) == pytest.approx(5.0)


class TestEnvironmentSample:
    def sample(self):
        return EnvironmentSample(
            time=1.0, workload_threads=10, processors=32, runq_sz=12,
            ldavg_1=11.0, ldavg_5=9.0, cached_memory=8.0,
            pages_free_rate=1.0,
        )

    def test_vector_order_matches_table_1(self):
        vec = self.sample().as_vector()
        assert vec.tolist() == [10, 32, 12, 11.0, 9.0, 8.0, 1.0]
        assert len(ENV_FEATURE_NAMES) == 7

    def test_norm(self):
        sample = self.sample()
        assert sample.norm == pytest.approx(
            environment_norm(sample.as_vector())
        )


class TestSystemStatsSampler:
    def test_sample_before_update_rejected(self):
        sampler = SystemStatsSampler(XEON_L7555)
        with pytest.raises(RuntimeError):
            sampler.sample()

    def test_own_threads_excluded(self):
        sampler = run_ticks(
            SystemStatsSampler(XEON_L7555),
            [JobDemand("me", 8), JobDemand("other", 20)],
        )
        mine = sampler.sample("me")
        assert mine.workload_threads == 20
        assert mine.runq_sz == 20
        neutral = sampler.sample(None)
        assert neutral.workload_threads == 28
        assert neutral.runq_sz == 28

    def test_load_average_excludes_own_history(self):
        sampler = run_ticks(
            SystemStatsSampler(XEON_L7555),
            [JobDemand("me", 16), JobDemand("other", 16)],
            ticks=3000,
        )
        mine = sampler.sample("me")
        # Converged: total ldavg-1 ~ 32, own ~ 16 -> external ~ 16.
        assert mine.ldavg_1 == pytest.approx(16.0, rel=0.1)

    def test_prime_warm_starts(self):
        sampler = SystemStatsSampler(XEON_L7555)
        sampler.prime(10.0)
        run_ticks(sampler, [JobDemand("a", 4)], ticks=1)
        assert sampler.sample(None).ldavg_5 > 9.0

    def test_memory_features_progress(self):
        sampler = run_ticks(
            SystemStatsSampler(XEON_L7555),
            [JobDemand("a", 32, memory_intensity=1.0)],
            ticks=500,
        )
        sample = sampler.sample(None)
        assert sample.cached_memory > 0.1 * XEON_L7555.ram_gb
        assert sample.pages_free_rate > 0.0

    def test_raw_pool_contains_canonical_and_extras(self):
        sampler = run_ticks(
            SystemStatsSampler(XEON_L7555), [JobDemand("a", 8)],
        )
        raw = sampler.sample("a").raw
        for name in ("env.workload_threads", "env.processors",
                     "env.runq_sz", "env.ldavg_1", "env.ldavg_5",
                     "env.cached_memory", "env.pages_free_rate",
                     "env.oversubscription", "env.runq_sz_total",
                     "env.own_threads"):
            assert name in raw

    def test_raw_nonlinear_expansions(self):
        sampler = run_ticks(
            SystemStatsSampler(XEON_L7555), [JobDemand("a", 8)],
        )
        raw = sampler.sample(None).raw
        assert raw["env.runq_sz.sq"] == pytest.approx(
            raw["env.runq_sz"] ** 2
        )
        assert raw["env.runq_sz.log1p"] == pytest.approx(
            np.log1p(raw["env.runq_sz"])
        )

    def test_unknown_perspective_treated_as_external(self):
        sampler = run_ticks(
            SystemStatsSampler(XEON_L7555), [JobDemand("a", 8)],
        )
        sample = sampler.sample("ghost")
        assert sample.workload_threads == 8


class TestAdvanceSpan:
    """Closed-form span advancement vs iterated per-tick updates."""

    def samplers(self, demands, warm_ticks=5, dt=0.1):
        span = SystemStatsSampler(XEON_L7555)
        ticks = SystemStatsSampler(XEON_L7555)
        sched = ProportionalShareScheduler(XEON_L7555)
        allocation = sched.allocate(demands, 32)
        time = 0.0
        for _ in range(warm_ticks):
            span.update(time, dt, demands, allocation)
            ticks.update(time, dt, demands, allocation)
            time += dt
        return span, ticks, allocation, time

    def assert_samples_agree(self, span, ticks, perspective):
        a = span.sample(perspective)
        b = ticks.sample(perspective)
        assert a.ldavg_1 == pytest.approx(b.ldavg_1, rel=1e-9)
        assert a.ldavg_5 == pytest.approx(b.ldavg_5, rel=1e-9)
        assert a.cached_memory == pytest.approx(b.cached_memory, rel=1e-9)
        assert a.pages_free_rate == pytest.approx(
            b.pages_free_rate, rel=1e-9
        )
        assert a.runq_sz == b.runq_sz
        assert a.workload_threads == b.workload_threads

    def test_span_matches_iterated_updates(self):
        demands = [
            JobDemand("me", 8, memory_intensity=0.5),
            JobDemand("other", 20, memory_intensity=0.2),
        ]
        span, ticks, allocation, time = self.samplers(demands)
        dt, n = 0.1, 64
        last = time + (n - 1) * dt
        span.advance_span(last, dt, n)
        for _ in range(n):
            ticks.update(time, dt, demands, allocation)
            time += dt
        for perspective in ("me", "other", None):
            self.assert_samples_agree(span, ticks, perspective)
        assert span.time == pytest.approx(ticks.time)

    def test_span_with_changed_dt_delegates_correctly(self):
        # A dt different from the memoised decay takes the slow path;
        # results must still match iterated updates at the new dt.
        demands = [JobDemand("a", 16)]
        span, ticks, allocation, time = self.samplers(demands, dt=0.1)
        dt, n = 0.5, 32
        span.advance_span(time + (n - 1) * dt, dt, n)
        for _ in range(n):
            ticks.update(time, dt, demands, allocation)
            time += dt
        self.assert_samples_agree(span, ticks, "a")
        self.assert_samples_agree(span, ticks, None)

    def test_single_tick_span_is_exactly_one_update(self):
        demands = [JobDemand("a", 8, memory_intensity=0.3)]
        span, ticks, allocation, time = self.samplers(demands)
        span.advance_span(time, 0.1, 1)
        ticks.update(time, 0.1, demands, allocation)
        a = span.sample("a")
        b = ticks.sample("a")
        assert a.ldavg_1 == b.ldavg_1
        assert a.ldavg_5 == b.ldavg_5
        assert a.cached_memory == b.cached_memory

    def test_long_span_converges_like_iterated(self):
        demands = [JobDemand("a", 24, memory_intensity=1.0)]
        span, _, _, time = self.samplers(demands)
        span.advance_span(time + 9999 * 0.1, 0.1, 10_000)
        sample = span.sample(None)
        # ldavg-1 converges to the runnable count; the cache relaxes to
        # its target level (0.1 * ram + working set of the traffic).
        assert sample.ldavg_1 == pytest.approx(24.0, rel=1e-3)
        assert sample.cached_memory == pytest.approx(
            0.1 * XEON_L7555.ram_gb + 0.35 * 24.0, rel=1e-3
        )
