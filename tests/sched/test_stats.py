"""Environment sampling and the external-perspective rule."""

import numpy as np
import pytest

from repro.machine.topology import XEON_L7555
from repro.sched.scheduler import JobDemand, ProportionalShareScheduler
from repro.sched.stats import (
    ENV_FEATURE_NAMES,
    EnvironmentSample,
    SystemStatsSampler,
    environment_norm,
)


def run_ticks(sampler, demands, ticks=5, dt=0.1):
    sched = ProportionalShareScheduler(XEON_L7555)
    time = 0.0
    for _ in range(ticks):
        allocation = sched.allocate(demands, 32)
        sampler.update(time, dt, demands, allocation)
        time += dt
    return sampler


class TestEnvironmentNorm:
    def test_rms(self):
        assert environment_norm([3.0, 4.0]) == pytest.approx(
            np.sqrt((9 + 16) / 2)
        )

    def test_zero_vector(self):
        assert environment_norm([0.0, 0.0, 0.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            environment_norm([])

    def test_scale_invariant_in_dim(self):
        # RMS of a constant vector equals the constant, any dimension.
        assert environment_norm([5.0] * 3) == pytest.approx(5.0)
        assert environment_norm([5.0] * 7) == pytest.approx(5.0)


class TestEnvironmentSample:
    def sample(self):
        return EnvironmentSample(
            time=1.0, workload_threads=10, processors=32, runq_sz=12,
            ldavg_1=11.0, ldavg_5=9.0, cached_memory=8.0,
            pages_free_rate=1.0,
        )

    def test_vector_order_matches_table_1(self):
        vec = self.sample().as_vector()
        assert vec.tolist() == [10, 32, 12, 11.0, 9.0, 8.0, 1.0]
        assert len(ENV_FEATURE_NAMES) == 7

    def test_norm(self):
        sample = self.sample()
        assert sample.norm == pytest.approx(
            environment_norm(sample.as_vector())
        )


class TestSystemStatsSampler:
    def test_sample_before_update_rejected(self):
        sampler = SystemStatsSampler(XEON_L7555)
        with pytest.raises(RuntimeError):
            sampler.sample()

    def test_own_threads_excluded(self):
        sampler = run_ticks(
            SystemStatsSampler(XEON_L7555),
            [JobDemand("me", 8), JobDemand("other", 20)],
        )
        mine = sampler.sample("me")
        assert mine.workload_threads == 20
        assert mine.runq_sz == 20
        neutral = sampler.sample(None)
        assert neutral.workload_threads == 28
        assert neutral.runq_sz == 28

    def test_load_average_excludes_own_history(self):
        sampler = run_ticks(
            SystemStatsSampler(XEON_L7555),
            [JobDemand("me", 16), JobDemand("other", 16)],
            ticks=3000,
        )
        mine = sampler.sample("me")
        # Converged: total ldavg-1 ~ 32, own ~ 16 -> external ~ 16.
        assert mine.ldavg_1 == pytest.approx(16.0, rel=0.1)

    def test_prime_warm_starts(self):
        sampler = SystemStatsSampler(XEON_L7555)
        sampler.prime(10.0)
        run_ticks(sampler, [JobDemand("a", 4)], ticks=1)
        assert sampler.sample(None).ldavg_5 > 9.0

    def test_memory_features_progress(self):
        sampler = run_ticks(
            SystemStatsSampler(XEON_L7555),
            [JobDemand("a", 32, memory_intensity=1.0)],
            ticks=500,
        )
        sample = sampler.sample(None)
        assert sample.cached_memory > 0.1 * XEON_L7555.ram_gb
        assert sample.pages_free_rate > 0.0

    def test_raw_pool_contains_canonical_and_extras(self):
        sampler = run_ticks(
            SystemStatsSampler(XEON_L7555), [JobDemand("a", 8)],
        )
        raw = sampler.sample("a").raw
        for name in ("env.workload_threads", "env.processors",
                     "env.runq_sz", "env.ldavg_1", "env.ldavg_5",
                     "env.cached_memory", "env.pages_free_rate",
                     "env.oversubscription", "env.runq_sz_total",
                     "env.own_threads"):
            assert name in raw

    def test_raw_nonlinear_expansions(self):
        sampler = run_ticks(
            SystemStatsSampler(XEON_L7555), [JobDemand("a", 8)],
        )
        raw = sampler.sample(None).raw
        assert raw["env.runq_sz.sq"] == pytest.approx(
            raw["env.runq_sz"] ** 2
        )
        assert raw["env.runq_sz.log1p"] == pytest.approx(
            np.log1p(raw["env.runq_sz"])
        )

    def test_unknown_perspective_treated_as_external(self):
        sampler = run_ticks(
            SystemStatsSampler(XEON_L7555), [JobDemand("a", 8)],
        )
        sample = sampler.sample("ghost")
        assert sample.workload_threads == 8
