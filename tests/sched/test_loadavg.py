"""Load-average dynamics."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched.loadavg import (
    FIVE_MINUTES,
    LoadAverage,
    LoadAverages,
    ONE_MINUTE,
)


class TestLoadAverage:
    def test_converges_to_constant_load(self):
        avg = LoadAverage(period=ONE_MINUTE)
        for _ in range(10_000):
            avg.update(active=4.0, dt=0.1)
        assert avg.value == pytest.approx(4.0, rel=1e-3)

    def test_single_step_decay(self):
        avg = LoadAverage(period=60.0, value=10.0)
        avg.update(active=0.0, dt=60.0)
        assert avg.value == pytest.approx(10.0 * math.exp(-1.0))

    def test_zero_dt_is_identity(self):
        avg = LoadAverage(period=60.0, value=3.0)
        avg.update(active=100.0, dt=0.0)
        assert avg.value == 3.0

    def test_shorter_period_reacts_faster(self):
        fast = LoadAverage(period=ONE_MINUTE)
        slow = LoadAverage(period=FIVE_MINUTES)
        for _ in range(100):
            fast.update(8.0, 0.1)
            slow.update(8.0, 0.1)
        assert fast.value > slow.value

    @given(st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=0.001, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_value_bounded_by_active(self, active, dt):
        avg = LoadAverage(period=60.0)
        for _ in range(50):
            avg.update(active, dt)
        assert 0.0 <= avg.value <= active + 1e-9

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            LoadAverage(period=0.0)
        avg = LoadAverage(period=60.0)
        with pytest.raises(ValueError):
            avg.update(active=-1.0, dt=0.1)
        with pytest.raises(ValueError):
            avg.update(active=1.0, dt=-0.1)


class TestLoadAverages:
    def test_updates_both(self):
        pair = LoadAverages()
        pair.update(active=6.0, dt=30.0)
        assert pair.ldavg_1 > pair.ldavg_5 > 0.0

    def test_prime(self):
        pair = LoadAverages()
        pair.prime(12.0)
        assert pair.ldavg_1 == 12.0
        assert pair.ldavg_5 == 12.0

    def test_periods(self):
        pair = LoadAverages()
        assert pair.one.period == 60.0
        assert pair.five.period == 300.0


class TestAdvance:
    def test_matches_iterated_updates(self):
        span = LoadAverage(period=ONE_MINUTE)
        ticks = LoadAverage(period=ONE_MINUTE)
        # Warm both to a non-trivial starting value first.
        for avg in (span, ticks):
            avg.update(2.0, 0.1)
        span.advance(7.0, 0.1, 64)
        for _ in range(64):
            ticks.update(7.0, 0.1)
        assert abs(span.value - ticks.value) < 1e-12

    def test_zero_ticks_is_identity(self):
        avg = LoadAverage(period=ONE_MINUTE)
        avg.update(3.0, 0.1)
        before = avg.value
        assert avg.advance(9.0, 0.1, 0) == before
        assert avg.value == before

    def test_one_tick_is_exactly_update(self):
        a = LoadAverage(period=FIVE_MINUTES)
        b = LoadAverage(period=FIVE_MINUTES)
        a.advance(4.0, 0.1, 1)
        b.update(4.0, 0.1)
        assert a.value == b.value

    def test_dt_change_refreshes_decay(self):
        span = LoadAverage(period=ONE_MINUTE)
        ticks = LoadAverage(period=ONE_MINUTE)
        for avg in (span, ticks):
            avg.update(2.0, 0.1)  # memoise decay for dt=0.1
        span.advance(5.0, 0.5, 32)  # different dt: memo must refresh
        for _ in range(32):
            ticks.update(5.0, 0.5)
        assert abs(span.value - ticks.value) < 1e-12

    def test_rejects_bad_inputs(self):
        avg = LoadAverage(period=ONE_MINUTE)
        with pytest.raises(ValueError):
            avg.advance(1.0, 0.1, -1)
        with pytest.raises(ValueError):
            avg.advance(-1.0, 0.1, 5)
        with pytest.raises(ValueError):
            avg.advance(1.0, -0.1, 5)

    def test_converges_to_active(self):
        avg = LoadAverage(period=ONE_MINUTE)
        avg.advance(6.0, 0.1, 100_000)
        assert avg.value == pytest.approx(6.0)

    def test_pair_advance_matches_iterated_pair_updates(self):
        span = LoadAverages()
        ticks = LoadAverages()
        for pair in (span, ticks):
            pair.update(2.0, 0.1)
        span.advance(8.0, 0.1, 50)
        for _ in range(50):
            ticks.update(8.0, 0.1)
        assert abs(span.ldavg_1 - ticks.ldavg_1) < 1e-12
        assert abs(span.ldavg_5 - ticks.ldavg_5) < 1e-12
