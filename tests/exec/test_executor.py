"""Executor behaviour: jobs resolution and serial/parallel equivalence."""

from __future__ import annotations

import pytest

from repro.core.policies import DefaultPolicy, OnlineHillClimbPolicy
from repro.exec import Executor, PolicySpec, RunRequest, WorkloadSpec, resolve_jobs
from repro.experiments.scenarios import SMALL_LOW, STATIC_ISOLATED
from repro.workload.spec import workload_sets

SCALE = 0.05


def request_grid():
    """A small mixed batch: two targets x two seeds, with workloads."""
    workload = WorkloadSpec.from_set(
        workload_sets("small")[0],
        PolicySpec.of(DefaultPolicy, label="default"),
    )
    return [
        RunRequest(
            target=target,
            policy=PolicySpec.fixed(8),
            scenario=SMALL_LOW,
            workload=workload,
            seed=seed,
            iterations_scale=SCALE,
        )
        for target in ("cg", "ep")
        for seed in (0, 1)
    ]


class TestResolveJobs:
    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_default_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_bad_env_warns_and_serialises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.warns(UserWarning, match="REPRO_JOBS"):
            assert resolve_jobs() == 1

    def test_floor_of_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestDeterminism:
    def test_parallel_matches_serial_exactly(self):
        """jobs=4 must reproduce jobs=1 bit-for-bit (no cache assist).

        Both executors run with ``cache=None`` so the parallel pass
        cannot simply replay the serial pass's memoised entries — every
        summary is recomputed in a worker process and compared by value.
        """
        requests = request_grid()
        serial = Executor(jobs=1, cache=None).run(requests)
        parallel = Executor(jobs=4, cache=None).run(requests)
        assert serial == parallel

    def test_order_preserved(self):
        requests = request_grid()
        summaries = Executor(jobs=4, cache=None).run(requests)
        assert [s.target for s in summaries] == [r.target for r in requests]
        assert all(s.target_time > 0 for s in summaries)

    def test_adaptive_policy_deterministic_across_jobs(self):
        """Stateful policies (hill climbing) are rebuilt per run and must
        converge identically regardless of which process runs them."""
        request = RunRequest(
            target="cg",
            policy=PolicySpec.of(OnlineHillClimbPolicy, label="online"),
            scenario=STATIC_ISOLATED,
            iterations_scale=SCALE,
        )
        serial = Executor(jobs=1, cache=None).run([request, request])
        parallel = Executor(jobs=2, cache=None).run([request, request])
        assert serial == parallel
        assert serial[0] == serial[1]


class TestComparisonParity:
    def test_compare_policies_parallel_matches_serial(self, tmp_path):
        from repro.experiments.runner import compare_policies

        policies = {
            "default": DefaultPolicy,
            "online": OnlineHillClimbPolicy,
        }

        def run(jobs):
            return compare_policies(
                "cg", SMALL_LOW, policies,
                seeds=(0,), iterations_scale=SCALE,
                executor=Executor(jobs=jobs, cache=None),
            )

        serial, parallel = run(1), run(4)
        assert serial.speedups == parallel.speedups
        assert serial.times == parallel.times
        assert serial.workload_gains == parallel.workload_gains
