"""Fault-tolerance primitives and the executor's recovery paths.

Worker crashes are injected with ``REPRO_CHAOS_WORKER_CRASH_RATE`` (the
worker hard-exits *before* deserialising its request, so retries replay
identically); hangs are injected by monkeypatching the worker entry
point before the fork-context pool is built.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro.exec import (
    AttemptRecord,
    Checkpoint,
    Executor,
    FailureReport,
    PolicySpec,
    RequestReport,
    RetryPolicy,
    RunCache,
    RunRequest,
    RunTimeoutError,
    SerialFallbackWarning,
    resolve_checkpoint,
    resolve_max_pool_rebuilds,
    resolve_retry,
    resolve_run_timeout,
)
from repro.exec.fault import CHECKPOINT_VERSION, DEFAULT_MAX_POOL_REBUILDS

SCALE = 0.05

#: Directory the hang-injecting worker entry points use for their
#: once-per-request marker files (inherited by forked workers).
_MARKER_ENV = "REPRO_TEST_HANG_MARKER_DIR"


@pytest.fixture(autouse=True)
def _per_run_semantics(monkeypatch):
    """These tests assert the *per-run* pool mechanics — crash counts,
    rebuild counts, timeout reaping.  Neutralise any ambient
    ``REPRO_BATCH`` (e.g. the CI batching leg) so batching cannot
    absorb runs before they reach the pool."""
    monkeypatch.delenv("REPRO_BATCH", raising=False)


def tiny_request(**overrides) -> RunRequest:
    base = dict(
        target="cg",
        policy=PolicySpec.fixed(8),
        iterations_scale=SCALE,
    )
    base.update(overrides)
    return RunRequest(**base)


def flaky_factory(fail_times: int):
    """Policy factory that raises on its first ``fail_times`` builds.

    Closure state only survives in-process, so this drives the *serial*
    retry path (parallel workers re-deserialise the closure per
    attempt).
    """
    calls = {"n": 0}

    def make():
        calls["n"] += 1
        if calls["n"] <= fail_times:
            raise RuntimeError("flaky policy build")
        from repro.core.policies.fixed import FixedPolicy

        return FixedPolicy(8)

    return make


def _hang_once_blob(blob: bytes):
    """Worker entry point: hang on the first attempt at each request.

    The marker file is created *before* hanging, so the attempt that
    gets shot by the timeout reaper leaves evidence and the retry
    proceeds normally.
    """
    import hashlib

    import cloudpickle

    from repro.exec.request import execute_request

    marker = os.path.join(
        os.environ[_MARKER_ENV], hashlib.sha256(blob).hexdigest()[:16]
    )
    try:
        open(marker, "x").close()
    except FileExistsError:
        pass
    else:
        time.sleep(60.0)
    return execute_request(cloudpickle.loads(blob))


def _hang_forever_blob(blob: bytes):
    time.sleep(60.0)


class TestRetryPolicy:
    def test_deterministic_jitter(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25)
        assert policy.delay(1, "#3") == policy.delay(1, "#3")
        assert policy.delay(1, "#3") != policy.delay(1, "#4")
        assert policy.delay(1, "#3") != policy.delay(2, "#3")

    def test_exponential_within_jitter_band(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=100.0, jitter=0.25)
        for attempt in (1, 2, 3, 4):
            base = 0.1 * 2 ** (attempt - 1)
            delay = policy.delay(attempt, "key")
            assert 0.75 * base <= delay <= 1.25 * base

    def test_caps_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=2.0, jitter=0.0)
        assert policy.delay(10) == 2.0

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=0.05, jitter=0.0)
        assert policy.delay(1) == 0.05
        assert policy.delay(2) == 0.1

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    @pytest.mark.parametrize("kwargs", [
        dict(max_retries=-1),
        dict(base_delay=-0.1),
        dict(max_delay=-1.0),
        dict(jitter=1.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestResolvers:
    def test_retry_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_RETRIES", raising=False)
        assert resolve_retry().max_retries == RetryPolicy().max_retries
        monkeypatch.setenv("REPRO_MAX_RETRIES", "7")
        assert resolve_retry().max_retries == 7
        explicit = RetryPolicy(max_retries=1)
        assert resolve_retry(explicit) is explicit

    def test_run_timeout_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_TIMEOUT", raising=False)
        assert resolve_run_timeout() is None
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "2.5")
        assert resolve_run_timeout() == 2.5
        assert resolve_run_timeout(9.0) == 9.0
        with pytest.raises(ValueError):
            resolve_run_timeout(-1.0)

    def test_non_numeric_timeout_env_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "soon")
        with pytest.warns(UserWarning, match="REPRO_RUN_TIMEOUT"):
            assert resolve_run_timeout() is None

    def test_max_pool_rebuilds_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_POOL_REBUILDS", raising=False)
        assert resolve_max_pool_rebuilds() == DEFAULT_MAX_POOL_REBUILDS
        monkeypatch.setenv("REPRO_MAX_POOL_REBUILDS", "9")
        assert resolve_max_pool_rebuilds() == 9
        assert resolve_max_pool_rebuilds(0) == 0

    def test_checkpoint_sentinel(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHECKPOINT", raising=False)
        assert resolve_checkpoint(None) is None
        assert resolve_checkpoint("default") is None
        monkeypatch.setenv("REPRO_CHECKPOINT", str(tmp_path / "ck.pkl"))
        resolved = resolve_checkpoint("default")
        assert isinstance(resolved, Checkpoint)
        assert resolved.path == tmp_path / "ck.pkl"
        explicit = Checkpoint(tmp_path / "other.pkl")
        assert resolve_checkpoint(explicit) is explicit
        assert resolve_checkpoint(tmp_path / "p.pkl").path == (
            tmp_path / "p.pkl"
        )


class TestFailureReport:
    def test_empty_report_is_clean(self):
        assert FailureReport().clean
        assert FailureReport().summary() == (
            "0 requests; 0 executed; 0 cached"
        )

    def test_retry_and_failure_accounting(self):
        ok = RequestReport(index=0, target="cg", policy="fixed-8")
        ok.attempts = [
            AttemptRecord(attempt=1, kind="error", error="OSError"),
            AttemptRecord(attempt=2, kind="ok"),
        ]
        dead = RequestReport(index=1, target="ep", policy="fixed-8")
        dead.attempts = [
            AttemptRecord(attempt=1, kind="error", error="ValueError"),
        ]
        report = FailureReport(requests=[ok, dead], timeouts=1)
        assert ok.ok and ok.retried
        assert ok.error_classes == ["OSError"]
        assert not dead.ok and not dead.retried
        assert report.retried == [ok]
        assert report.failures == [dead]
        assert not report.clean
        assert "1 retried" in report.summary()
        assert "1 FAILED" in report.summary()

    def test_preempted_attempts_do_not_count_as_retries(self):
        victim = RequestReport(index=0, target="cg", policy="fixed-8")
        victim.attempts = [
            AttemptRecord(attempt=1, kind="preempted"),
            AttemptRecord(attempt=1, kind="ok"),
        ]
        assert victim.ok
        assert not victim.retried

    def test_serial_fallback_cause_is_rendered(self):
        report = FailureReport(
            serial_fallbacks=2,
            serial_fallback_causes=[
                "pool creation failed: PermissionError",
                "unserialisable request: TypeError",
            ],
        )
        assert (
            "2 serial fallbacks (cause: pool creation failed: "
            "PermissionError; unserialisable request: TypeError)"
        ) in report.summary()

    def test_fallback_without_recorded_cause_still_renders(self):
        report = FailureReport(serial_fallbacks=1)
        summary = report.summary()
        assert "1 serial fallbacks" in summary
        assert "cause" not in summary

    def test_cached_and_resumed_are_ok_without_attempts(self):
        cached = RequestReport(
            index=0, target="cg", policy="p", cached=True
        )
        resumed = RequestReport(
            index=1, target="cg", policy="p", resumed=True
        )
        report = FailureReport(requests=[cached, resumed])
        assert cached.ok and resumed.ok
        assert report.executed == 0
        assert "1 resumed" in report.summary()


class TestCheckpoint:
    def fake_summary(self, seed: int):
        from repro.exec.request import RunSummary

        return RunSummary(
            target="cg", policy="fixed-8", target_time=float(seed),
            workload_throughput=0.0, duration=1.0, workload_runs=(),
            selections=(),
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "ck.pkl"
        checkpoint = Checkpoint(path, interval=100)
        for seed in range(3):
            checkpoint.record(f"fp{seed}", self.fake_summary(seed))
        checkpoint.flush()
        loaded = Checkpoint(path).load()
        assert set(loaded) == {"fp0", "fp1", "fp2"}
        assert loaded["fp2"].target_time == 2.0

    def test_interval_autoflush(self, tmp_path):
        path = tmp_path / "ck.pkl"
        checkpoint = Checkpoint(path, interval=2)
        checkpoint.record("a", self.fake_summary(0))
        assert not path.exists()
        checkpoint.record("b", self.fake_summary(1))
        assert path.exists()

    def test_corrupt_file_moved_aside(self, tmp_path):
        path = tmp_path / "ck.pkl"
        path.write_bytes(b"definitely not a pickle")
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            assert Checkpoint(path).load() == {}
        assert not path.exists()
        quarantined = path.parent / "ck.pkl.quarantine" / "corrupt-0000"
        assert quarantined.read_bytes() == b"definitely not a pickle"

    def test_repeated_corruption_keeps_distinct_evidence(self, tmp_path):
        # The old behaviour overwrote one ``.corrupt`` file; repeated
        # corruption must leave one quarantined file per incident.
        path = tmp_path / "ck.pkl"
        for round_ in range(3):
            path.write_bytes(b"garbage #%d" % round_)
            with pytest.warns(UserWarning, match="corrupt checkpoint"):
                Checkpoint(path).load()
        quarantine = path.parent / "ck.pkl.quarantine"
        names = sorted(p.name for p in quarantine.iterdir())
        assert names == ["corrupt-0000", "corrupt-0001", "corrupt-0002"]
        assert (quarantine / "corrupt-0002").read_bytes() == b"garbage #2"

    def test_quarantine_retention_is_bounded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUARANTINE_KEEP", "2")
        path = tmp_path / "ck.pkl"
        for round_ in range(5):
            path.write_bytes(b"garbage #%d" % round_)
            with pytest.warns(UserWarning, match="corrupt checkpoint"):
                Checkpoint(path).load()
        quarantine = path.parent / "ck.pkl.quarantine"
        assert len(list(quarantine.iterdir())) == 2

    def test_alien_payload_moved_aside(self, tmp_path):
        path = tmp_path / "ck.pkl"
        path.write_bytes(pickle.dumps(["not", "a", "checkpoint"]))
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            assert Checkpoint(path).load() == {}

    def test_wrong_version_moved_aside(self, tmp_path):
        path = tmp_path / "ck.pkl"
        payload = {"version": CHECKPOINT_VERSION + 1, "entries": {}}
        path.write_bytes(pickle.dumps(payload))
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            assert Checkpoint(path).load() == {}

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            Checkpoint(tmp_path / "ck.pkl", interval=0)


class TestSerialRetry:
    def test_transient_error_is_retried(self):
        executor = Executor(
            jobs=1, cache=None, checkpoint=None,
            retry=RetryPolicy(max_retries=2, base_delay=0.0),
        )
        spec = PolicySpec.of(flaky_factory(fail_times=1), label="flaky")
        (summary,) = executor.run([tiny_request(policy=spec)])
        assert summary.target_time > 0
        report = executor.last_report
        kinds = [a.kind for a in report.requests[0].attempts]
        assert kinds == ["error", "ok"]
        assert report.requests[0].retried
        assert report.requests[0].error_classes == ["RuntimeError"]
        assert not report.clean

    def test_budget_exhaustion_raises_original_error(self):
        executor = Executor(
            jobs=1, cache=None, checkpoint=None,
            retry=RetryPolicy(max_retries=1, base_delay=0.0),
        )
        spec = PolicySpec.of(flaky_factory(fail_times=10), label="flaky")
        with pytest.raises(RuntimeError, match="flaky policy build"):
            executor.run([tiny_request(policy=spec)])
        report = executor.last_report
        assert len(report.requests[0].attempts) == 2  # 1 try + 1 retry
        assert report.failures == [report.requests[0]]

    def test_zero_retries_fails_immediately(self):
        executor = Executor(
            jobs=1, cache=None, checkpoint=None,
            retry=RetryPolicy(max_retries=0),
        )
        spec = PolicySpec.of(flaky_factory(fail_times=1), label="flaky")
        with pytest.raises(RuntimeError):
            executor.run([tiny_request(policy=spec)])
        assert len(executor.last_report.requests[0].attempts) == 1


class TestWorkerCrashRecovery:
    """REPRO_CHAOS_WORKER_CRASH_RATE=1.0 makes every worker die."""

    def test_degrades_to_serial_after_rebuild_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_WORKER_CRASH_RATE", "1.0")
        executor = Executor(
            jobs=2, cache=None, checkpoint=None, max_pool_rebuilds=0,
            retry=RetryPolicy(max_retries=50, base_delay=0.0),
        )
        requests = [tiny_request(seed=s) for s in (0, 1)]
        with pytest.warns(SerialFallbackWarning) as caught:
            summaries = executor.run(requests)
        warning = caught[0].message
        assert "crashed" in str(warning)
        assert warning.cause is not None
        report = executor.last_report
        assert report.serial_fallbacks == 1
        assert report.pool_rebuilds == 1
        assert all(r.ok for r in report.requests)
        # The serial fallback produced the same results a healthy
        # serial executor would have.
        monkeypatch.delenv("REPRO_CHAOS_WORKER_CRASH_RATE")
        clean = Executor(jobs=1, cache=None, checkpoint=None)
        assert summaries == clean.run(requests)

    def test_repeated_crashes_exhaust_request_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_WORKER_CRASH_RATE", "1.0")
        executor = Executor(
            jobs=2, cache=None, checkpoint=None, max_pool_rebuilds=1000,
            retry=RetryPolicy(max_retries=1, base_delay=0.0),
        )
        with pytest.raises(RuntimeError, match="crashed the worker pool"):
            executor.run([tiny_request(seed=s) for s in (0, 1)])
        assert executor.last_report.pool_rebuilds >= 1

    def test_crash_rate_parsing(self, monkeypatch):
        from repro.exec.executor import _chaos_crash_rate

        monkeypatch.delenv(
            "REPRO_CHAOS_WORKER_CRASH_RATE", raising=False
        )
        assert _chaos_crash_rate() == 0.0
        monkeypatch.setenv("REPRO_CHAOS_WORKER_CRASH_RATE", "0.25")
        assert _chaos_crash_rate() == 0.25
        monkeypatch.setenv("REPRO_CHAOS_WORKER_CRASH_RATE", "7")
        assert _chaos_crash_rate() == 1.0
        monkeypatch.setenv("REPRO_CHAOS_WORKER_CRASH_RATE", "lots")
        assert _chaos_crash_rate() == 0.0


class TestRunTimeout:
    def test_hung_run_is_shot_and_retried(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_MARKER_ENV, str(tmp_path))
        monkeypatch.setattr(
            "repro.exec.executor._execute_blob", _hang_once_blob
        )
        executor = Executor(
            jobs=2, cache=None, checkpoint=None, run_timeout=0.4,
            retry=RetryPolicy(max_retries=3, base_delay=0.01),
        )
        requests = [tiny_request(seed=s) for s in range(3)]
        summaries = executor.run(requests)
        assert all(s.target_time > 0 for s in summaries)
        report = executor.last_report
        assert report.timeouts >= 1
        timed_out = [
            r for r in report.requests
            if any(a.kind == "timeout" for a in r.attempts)
        ]
        assert timed_out and all(r.ok for r in timed_out)

    def test_timeout_budget_exhaustion_raises(self, monkeypatch):
        monkeypatch.setattr(
            "repro.exec.executor._execute_blob", _hang_forever_blob
        )
        executor = Executor(
            jobs=2, cache=None, checkpoint=None, run_timeout=0.3,
            retry=RetryPolicy(max_retries=0),
        )
        with pytest.raises(RunTimeoutError, match="timed out"):
            executor.run([tiny_request(seed=s) for s in (0, 1)])

    def test_timeouts_recorded_in_report(self, monkeypatch):
        monkeypatch.setattr(
            "repro.exec.executor._execute_blob", _hang_forever_blob
        )
        executor = Executor(
            jobs=2, cache=None, checkpoint=None, run_timeout=0.3,
            retry=RetryPolicy(max_retries=0),
        )
        with pytest.raises(RunTimeoutError):
            executor.run([tiny_request(seed=s) for s in (0, 1)])
        report = executor.last_report
        assert report.timeouts >= 1
        kinds = {
            a.kind for r in report.requests for a in r.attempts
        }
        assert "timeout" in kinds


class TestCheckpointResume:
    def test_resume_skips_completed_requests(self, tmp_path):
        path = tmp_path / "grid.pkl"
        requests = [tiny_request(seed=s) for s in range(3)]
        first = Executor(
            jobs=1, cache=None, checkpoint=Checkpoint(path, interval=1)
        )
        results = first.run(requests)
        assert first.last_report.executed == 3

        second = Executor(
            jobs=1, cache=None, checkpoint=Checkpoint(path, interval=1)
        )
        resumed = second.run(requests)
        assert resumed == results
        report = second.last_report
        assert report.executed == 0
        assert all(r.resumed for r in report.requests)

    def test_resume_is_keyed_by_fingerprint_not_position(self, tmp_path):
        path = tmp_path / "grid.pkl"
        requests = [tiny_request(seed=s) for s in range(3)]
        Executor(
            jobs=1, cache=None, checkpoint=Checkpoint(path, interval=1)
        ).run(requests)
        # A reordered, partially-overlapping follow-up grid still
        # resumes the completed entries.
        follow_up = [requests[2], tiny_request(seed=9), requests[0]]
        executor = Executor(
            jobs=1, cache=None, checkpoint=Checkpoint(path, interval=1)
        )
        executor.run(follow_up)
        flags = [r.resumed for r in executor.last_report.requests]
        assert flags == [True, False, True]

    def test_interrupted_grid_keeps_partial_results(self, tmp_path):
        path = tmp_path / "grid.pkl"
        good = tiny_request(seed=0)
        bad = tiny_request(
            seed=1,
            policy=PolicySpec.of(flaky_factory(10), label="flaky"),
        )
        executor = Executor(
            jobs=1, cache=None,
            checkpoint=Checkpoint(path, interval=100),
            retry=RetryPolicy(max_retries=0),
        )
        with pytest.raises(RuntimeError):
            executor.run([good, bad])
        # The finally-flush preserved the completed prefix.
        loaded = Checkpoint(path).load()
        assert len(loaded) == 1
        resumer = Executor(
            jobs=1, cache=None, checkpoint=Checkpoint(path)
        )
        resumer.run([good])
        assert resumer.last_report.requests[0].resumed


class TestStatsSnapshot:
    def test_snapshot_has_fault_counters(self):
        from repro.exec.executor import STATS

        snapshot = STATS.snapshot()
        for key in (
            "executed", "cache_hits", "retries", "timeouts",
            "pool_rebuilds", "serial_fallbacks",
        ):
            assert key in snapshot
