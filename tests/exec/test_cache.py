"""Run-cache behaviour: hits, misses, invalidation, corruption."""

from __future__ import annotations

import pickle

import pytest

from repro.exec import (
    Executor,
    PolicySpec,
    RunCache,
    RunRequest,
    cache_enabled,
    default_cache_root,
    execute_request,
)
from repro.exec.cache import CACHE_ENTRY_VERSION

SCALE = 0.05


def tiny_request(**overrides) -> RunRequest:
    base = dict(
        target="cg",
        policy=PolicySpec.fixed(8),
        iterations_scale=SCALE,
    )
    base.update(overrides)
    return RunRequest(**base)


@pytest.fixture
def cache(tmp_path) -> RunCache:
    return RunCache(root=tmp_path / "runs")


class TestRunCache:
    def test_miss_then_hit(self, cache):
        request = tiny_request()
        fingerprint = request.fingerprint()
        assert cache.get(fingerprint) is None
        summary = execute_request(request)
        cache.put(fingerprint, summary)
        assert cache.get(fingerprint) == summary
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_corrupted_entry_is_a_miss(self, cache):
        request = tiny_request()
        fingerprint = request.fingerprint()
        cache.put(fingerprint, execute_request(request))
        cache.path(fingerprint).write_bytes(b"not a pickle")
        with pytest.warns(UserWarning, match="quarantined"):
            assert cache.get(fingerprint) is None
        # The broken file was moved aside (not left to fail forever,
        # not silently destroyed) and the move was counted.
        assert not cache.path(fingerprint).exists()
        quarantined = list(cache.quarantine_dir().iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == b"not a pickle"
        assert cache.quarantined == 1

    def test_quarantine_retention_is_bounded(self, cache, monkeypatch):
        # A recurring corruption source (bad disk, version skew) must
        # not grow the quarantine directory without bound: only the
        # newest REPRO_QUARANTINE_KEEP files survive.
        monkeypatch.setenv("REPRO_QUARANTINE_KEEP", "3")
        summary = execute_request(tiny_request())
        with pytest.warns(UserWarning, match="quarantined"):
            for i in range(6):
                fingerprint = f"{i:02d}deadbeef"
                cache.put(fingerprint, summary)
                cache.path(fingerprint).write_bytes(b"junk %d" % i)
                assert cache.get(fingerprint) is None
        assert cache.quarantined == 6
        assert len(list(cache.quarantine_dir().iterdir())) == 3

    def test_quarantine_warns_once(self, cache):
        requests = [tiny_request(seed=s) for s in (0, 1)]
        for request in requests:
            cache.put(request.fingerprint(), execute_request(request))
            cache.path(request.fingerprint()).write_bytes(b"garbage")
        with pytest.warns(UserWarning, match="quarantined") as caught:
            for request in requests:
                assert cache.get(request.fingerprint()) is None
        messages = [
            w for w in caught if "quarantined" in str(w.message)
        ]
        assert len(messages) == 1
        assert cache.quarantined == 2

    def test_wrong_version_is_a_miss(self, cache):
        request = tiny_request()
        fingerprint = request.fingerprint()
        entry = {
            "version": CACHE_ENTRY_VERSION + 1,
            "summary": execute_request(request),
        }
        path = cache.path(fingerprint)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps(entry))
        assert cache.get(fingerprint) is None

    def test_cache_dir_env_redirect(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_root() == tmp_path / "elsewhere" / "runs"

    def test_cache_enabled_env(self, monkeypatch):
        assert cache_enabled()
        for value in ("0", "no", "off", "FALSE"):
            monkeypatch.setenv("REPRO_RUN_CACHE", value)
            assert not cache_enabled()
        monkeypatch.setenv("REPRO_RUN_CACHE", "1")
        assert cache_enabled()


class TestExecutorMemoisation:
    def test_second_run_is_a_replay(self, cache):
        executor = Executor(jobs=1, cache=cache)
        requests = [tiny_request(seed=s) for s in (0, 1)]
        first = executor.run(requests)
        second = executor.run(requests)
        assert first == second
        assert cache.stores == 2
        assert cache.hits == 2

    def test_physics_change_invalidates(self, cache, monkeypatch):
        executor = Executor(jobs=1, cache=cache)
        request = tiny_request()
        executor.run([request])
        monkeypatch.setattr(
            "repro.core.training.simulator_fingerprint",
            lambda: "recalibrated",
        )
        executor.run([request])
        # The new fingerprint missed the old entry and stored a new one.
        assert cache.hits == 0
        assert cache.stores == 2

    def test_untokened_requests_still_execute(self, cache):
        class Hostile:
            def __reduce__(self):
                raise TypeError("nope")

            def __call__(self):
                from repro.core.policies.fixed import FixedPolicy

                return FixedPolicy(8)

        with pytest.warns(UserWarning, match="cannot be pickled"):
            spec = PolicySpec.of(Hostile(), label="hostile")
        assert spec.token is None
        executor = Executor(jobs=1, cache=cache)
        summaries = executor.run([tiny_request(policy=spec)])
        assert summaries[0].target_time > 0
        assert cache.stores == 0

    def test_cache_none_disables_memoisation(self):
        executor = Executor(jobs=1, cache=None)
        request = tiny_request()
        assert executor.run([request]) == executor.run([request])
