"""RunRequest construction, fingerprints and in-process execution."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.policies import DefaultPolicy
from repro.exec import PolicySpec, RunRequest, WorkloadSpec, execute_request
from repro.experiments.scenarios import SMALL_LOW
from repro.workload.spec import workload_sets

SCALE = 0.05


def tiny_request(**overrides) -> RunRequest:
    base = dict(
        target="cg",
        policy=PolicySpec.fixed(8),
        iterations_scale=SCALE,
    )
    base.update(overrides)
    return RunRequest(**base)


class TestPolicySpec:
    def test_fixed_has_stable_token(self):
        assert PolicySpec.fixed(8).token == "fixed:8"
        assert PolicySpec.fixed(8) == PolicySpec.fixed(8)
        assert PolicySpec.fixed(8).token != PolicySpec.fixed(4).token

    def test_of_derives_label_and_token(self):
        spec = PolicySpec.of(DefaultPolicy)
        assert spec.label == "DefaultPolicy"
        assert spec.token is not None

    def test_of_passes_specs_through(self):
        spec = PolicySpec.fixed(8)
        assert PolicySpec.of(spec) is spec
        relabelled = PolicySpec.of(spec, label="baseline")
        assert relabelled.label == "baseline"
        assert relabelled.token == spec.token

    def test_of_token_is_deterministic(self):
        assert (
            PolicySpec.of(DefaultPolicy).token
            == PolicySpec.of(DefaultPolicy).token
        )

    def test_unpicklable_factory_gets_no_token(self):
        spec = PolicySpec.of(lambda: DefaultPolicy(), label="local")
        # cloudpickle serialises lambdas, so the token exists ...
        assert spec.token is not None
        # ... but a genuinely unpicklable object falls back to None.
        class Hostile:
            def __reduce__(self):
                raise TypeError("nope")

            def __call__(self):  # pragma: no cover - never built
                return DefaultPolicy()

        hostile = Hostile()
        with pytest.warns(UserWarning, match="cannot be pickled") as caught:
            assert PolicySpec.of(hostile, label="hostile").token is None
            # Warned once per distinct factory, not once per request.
            PolicySpec.of(hostile, label="hostile")
        assert len(
            [w for w in caught if "cannot be pickled" in str(w.message)]
        ) == 1

    def test_build_returns_fresh_instances(self):
        spec = PolicySpec.of(DefaultPolicy)
        assert spec.build() is not spec.build()


class TestFingerprint:
    def test_stable_for_equal_requests(self):
        assert tiny_request().fingerprint() == tiny_request().fingerprint()

    def test_sensitive_to_every_field(self):
        base = tiny_request().fingerprint()
        variants = [
            tiny_request(target="ep"),
            tiny_request(policy=PolicySpec.fixed(4)),
            tiny_request(seed=1),
            tiny_request(iterations_scale=SCALE * 2),
            tiny_request(dt=0.2),
            tiny_request(max_time=1800.0),
            tiny_request(processors=8),
            tiny_request(record=True),
            tiny_request(scenario=SMALL_LOW),
            tiny_request(workload=WorkloadSpec.from_set(
                workload_sets("small")[0], PolicySpec.fixed(4),
            )),
        ]
        prints = [v.fingerprint() for v in variants]
        assert base not in prints
        assert len(set(prints)) == len(prints)

    def test_untokened_policy_is_unfingerprintable(self):
        spec = dataclasses.replace(PolicySpec.fixed(8), token=None)
        assert tiny_request(policy=spec).fingerprint() is None

    def test_simulator_fingerprint_included(self, monkeypatch):
        before = tiny_request().fingerprint()
        monkeypatch.setattr(
            "repro.core.training.simulator_fingerprint", lambda: "other",
        )
        assert tiny_request().fingerprint() != before


class TestExecuteRequest:
    def test_isolated_static_run(self):
        summary = execute_request(tiny_request())
        assert summary.target == "cg"
        assert summary.policy == "fixed-8"
        assert summary.target_time > 0
        assert summary.workload_throughput == 0.0
        assert summary.records == ()

    def test_scenario_with_workload(self):
        request = tiny_request(
            scenario=SMALL_LOW,
            workload=WorkloadSpec.from_set(
                workload_sets("small")[0],
                PolicySpec.of(DefaultPolicy, label="default"),
            ),
        )
        summary = execute_request(request)
        assert summary.workload_throughput > 0
        assert len(summary.workload_runs) == 2

    def test_matches_run_target(self):
        """The request path reproduces run_target bit-for-bit."""
        from repro.core.policies.fixed import FixedPolicy
        from repro.experiments.runner import run_target

        workload_set = workload_sets("small")[0]
        outcome = run_target(
            "cg", FixedPolicy(8), SMALL_LOW,
            workload_set=workload_set, seed=3, iterations_scale=SCALE,
        )
        summary = execute_request(tiny_request(
            scenario=SMALL_LOW,
            workload=WorkloadSpec.from_set(
                workload_set, PolicySpec.of(DefaultPolicy, label="default"),
            ),
            seed=3,
        ))
        assert summary.target_time == outcome.target_time
        assert summary.workload_throughput == outcome.workload_throughput

    def test_record_collects_selections(self):
        summary = execute_request(tiny_request(record=True))
        assert summary.records
        record = summary.records[0]
        assert record.threads == 8
        assert isinstance(record.features, tuple)

    def test_timeout_raises(self):
        with pytest.raises(RuntimeError, match="timed out"):
            execute_request(tiny_request(max_time=0.5))
