"""Shared-memory SoA result transport (`repro.exec.shm`).

Round-trip fidelity (a decoded summary compares equal to the
original, including IEEE-exact floats), segment naming and cleanup
discipline (`ShmLedger` sweeps everything it issued, crash or not),
and the `REPRO_SHM` knob.
"""

from __future__ import annotations

import struct

import pytest

from repro.exec import Executor, PolicySpec, ShmLedger
from repro.exec import shm
from tests.exec.test_fault import tiny_request

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="no POSIX shared memory here"
)


@pytest.fixture(scope="module")
def summaries():
    """Real summaries, one recording run included (feature streams)."""
    requests = [
        tiny_request(seed=0),
        tiny_request(seed=1, record=True),
        tiny_request(seed=2, policy=PolicySpec.fixed(4)),
    ]
    return Executor(jobs=1, cache=None, checkpoint=None).run(requests)


def segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


class TestRoundTrip:
    def test_summaries_compare_equal(self, summaries):
        name = shm.segment_name()
        try:
            shm.encode_summaries(summaries, name)
            decoded = shm.decode_summaries(name)
        finally:
            shm.unlink(name)
        assert decoded == list(summaries)

    def test_floats_are_ieee_exact(self, summaries):
        name = shm.segment_name()
        try:
            shm.encode_summaries(summaries, name)
            decoded = shm.decode_summaries(name)
        finally:
            shm.unlink(name)
        def bits(value: float) -> bytes:
            return struct.pack(">d", value)

        for original, copy in zip(summaries, decoded):
            # Equality via == could in principle hide -0.0/0.0
            # subtleties; compare raw IEEE bit patterns per float.
            assert bits(original.duration) == bits(copy.duration)
            assert bits(original.target_time) == bits(copy.target_time)
            for sel_a, sel_b in zip(original.selections, copy.selections):
                assert bits(sel_a.time) == bits(sel_b.time)
            for rec_a, rec_b in zip(original.records, copy.records):
                assert bits(rec_a.time) == bits(rec_b.time)
                for feat_a, feat_b in zip(rec_a.features, rec_b.features):
                    assert bits(feat_a) == bits(feat_b)

    def test_decode_does_not_unlink(self, summaries):
        name = shm.segment_name()
        shm.encode_summaries(summaries[:1], name)
        shm.decode_summaries(name)
        assert segment_exists(name)
        assert shm.unlink(name)
        assert not segment_exists(name)

    def test_empty_stream_summary(self, summaries):
        bare = summaries[0]
        assert bare.records == ()
        name = shm.segment_name()
        try:
            shm.encode_summaries([bare], name)
            (decoded,) = shm.decode_summaries(name)
        finally:
            shm.unlink(name)
        assert decoded == bare

    def test_version_mismatch_rejected(self, summaries, monkeypatch):
        name = shm.segment_name()
        monkeypatch.setattr(shm, "SHM_FORMAT_VERSION", 999)
        shm.encode_summaries(summaries[:1], name)
        monkeypatch.undo()
        try:
            with pytest.raises(ValueError, match="format"):
                shm.decode_summaries(name)
        finally:
            shm.unlink(name)


class TestNamingAndCleanup:
    def test_segment_names_are_unique_and_pid_scoped(self):
        import os

        first, second = shm.segment_name(), shm.segment_name()
        assert first != second
        assert str(os.getpid()) in first

    def test_unlink_missing_segment_is_false(self):
        assert shm.unlink(shm.segment_name()) is False

    def test_unlink_removes_torn_zero_byte_segment(self):
        # A worker killed between shm_open and ftruncate leaves a
        # zero-byte segment SharedMemory cannot map; unlink must still
        # remove it or chaos kills leak /dev/shm entries forever.
        import os

        name = shm.segment_name()
        path = f"/dev/shm/{name}"
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        open(path, "wb").close()
        try:
            assert shm.unlink(name) is True
            assert not os.path.exists(path)
        finally:
            if os.path.exists(path):
                os.unlink(path)

    def test_ledger_sweep_removes_outstanding_segments(self, summaries):
        ledger = ShmLedger()
        kept = ledger.issue(shm.segment_name())
        shm.encode_summaries(summaries[:1], kept)
        issued_unused = ledger.issue(shm.segment_name())  # never created
        assert len(ledger) == 2
        assert ledger.sweep() == 1  # only the materialised one existed
        assert len(ledger) == 0
        assert not segment_exists(kept)
        assert not segment_exists(issued_unused)

    def test_release_forgets_and_unlinks(self, summaries):
        ledger = ShmLedger()
        name = ledger.issue(shm.segment_name())
        shm.encode_summaries(summaries[:1], name)
        ledger.release(name)
        assert len(ledger) == 0
        assert not segment_exists(name)

    def test_executor_pool_run_leaves_no_segments(self, summaries):
        import glob

        requests = [tiny_request(seed=seed) for seed in (0, 1, 2, 3)]
        executor = Executor(jobs=2, cache=None, checkpoint=None)
        executor.run(requests)
        leaked = glob.glob("/dev/shm/repro-*")
        assert leaked == []


class TestPidReuseToken:
    def test_fresh_token_defeats_stale_same_pid_names(self, monkeypatch):
        """Pid reuse must not let a new process collide with leaked
        segments of a dead one that had the same pid.

        Forge the stale world: pretend an earlier process with *our*
        pid (the reuse scenario) had token ``deadbeef``, leak one of
        its segments, then recompute the real token and check the new
        names miss the leaked one entirely.
        """
        import os
        from multiprocessing import shared_memory

        monkeypatch.setattr(shm, "_TOKEN", (os.getpid(), "deadbeef"))
        monkeypatch.setattr(shm, "_COUNTER", 0)
        stale_name = shm.segment_name()
        assert "-deadbeef-" in stale_name
        stale = shared_memory.SharedMemory(
            name=stale_name, create=True, size=64
        )
        stale.close()
        try:
            # the reborn process derives its token from /proc starttime,
            # not the pid alone, so its names cannot alias the leak
            monkeypatch.setattr(shm, "_TOKEN", None)
            monkeypatch.setattr(shm, "_COUNTER", 0)
            fresh_name = shm.segment_name()
            assert fresh_name != stale_name
            assert "-deadbeef-" not in fresh_name

            # exclusive creation under the fresh name succeeds even
            # though the stale segment still occupies the old name
            fresh = shared_memory.SharedMemory(
                name=fresh_name, create=True, size=64
            )
            fresh.close()
            ledger = ShmLedger()
            ledger.issue(fresh_name)
            assert ledger.sweep() == 1
            # the sweep removed only what this ledger issued — the
            # stale segment is another process's to reap
            assert not segment_exists(fresh_name)
            assert segment_exists(stale_name)
        finally:
            shm.unlink(stale_name)

    def test_token_survives_within_process(self):
        assert shm._process_token() == shm._process_token()


class TestShmRing:
    def test_round_trip_is_bit_exact(self):
        import numpy as np

        name = shm.segment_name()
        writer = shm.ShmRing(name, slots=2, slot_bytes=4096, create=True)
        try:
            reader = shm.ShmRing(name, slots=2, slot_bytes=4096)
            meta = {"kind": "request", "position": 3}
            arrays = {
                "idx": np.arange(5, dtype=np.int64),
                "time": np.array([0.1, 0.2, np.nan, -0.0, 1e-300]),
            }
            nbytes = writer.write(1, meta, arrays)
            got_meta, got_arrays = reader.read(1, nbytes)
            assert got_meta == meta
            assert got_arrays["idx"].tobytes() == arrays["idx"].tobytes()
            assert got_arrays["time"].tobytes() == \
                arrays["time"].tobytes()
            reader.close()
        finally:
            writer.close()
            shm.unlink(name)

    def test_slots_are_independent(self):
        import numpy as np

        name = shm.segment_name()
        ring = shm.ShmRing(name, slots=3, slot_bytes=1024, create=True)
        try:
            sizes = [
                ring.write(slot, {"slot": slot},
                           {"v": np.full(4, slot, dtype=np.int64)})
                for slot in range(3)
            ]
            for slot, nbytes in enumerate(sizes):
                meta, arrays = ring.read(slot, nbytes)
                assert meta == {"slot": slot}
                assert list(arrays["v"]) == [slot] * 4
        finally:
            ring.close()
            shm.unlink(name)

    def test_oversized_block_rejected_with_remedy(self):
        import numpy as np

        name = shm.segment_name()
        ring = shm.ShmRing(name, slots=1, slot_bytes=64, create=True)
        try:
            with pytest.raises(ValueError, match="slot_bytes"):
                ring.write(0, {}, {"big": np.zeros(1024)})
        finally:
            ring.close()
            shm.unlink(name)

    def test_bad_slot_and_size_rejected(self):
        name = shm.segment_name()
        ring = shm.ShmRing(name, slots=2, slot_bytes=64, create=True)
        try:
            with pytest.raises(IndexError):
                ring.write(2, {}, {})
            with pytest.raises(IndexError):
                ring.read(-1, 8)
            with pytest.raises(ValueError, match="larger than a slot"):
                ring.read(0, 65)
            with pytest.raises(ValueError):
                shm.ShmRing(name, slots=0, slot_bytes=64)
        finally:
            ring.close()
            shm.unlink(name)

    def test_attach_checks_segment_size(self):
        name = shm.segment_name()
        ring = shm.ShmRing(name, slots=1, slot_bytes=64, create=True)
        try:
            with pytest.raises(ValueError, match="smaller"):
                shm.ShmRing(name, slots=4, slot_bytes=4096)
        finally:
            ring.close()
            shm.unlink(name)


class TestKnob:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert shm.shm_enabled() is True

    def test_disabled_values(self, monkeypatch):
        for value in ("0", "off", "false", "no"):
            monkeypatch.setenv("REPRO_SHM", value)
            assert shm.shm_enabled() is False

    def test_disabled_executor_still_bit_identical(self, monkeypatch):
        requests = [tiny_request(seed=seed) for seed in (0, 1)]
        serial = Executor(jobs=1, cache=None, checkpoint=None).run(
            requests
        )
        monkeypatch.setenv("REPRO_SHM", "0")
        pickled = Executor(jobs=2, cache=None, checkpoint=None).run(
            requests
        )
        assert pickled == serial
