"""Cross-run batched execution through the executor.

Grouping rules, bit-identity of every batch mode against the serial
per-run path, the ``REPRO_SANITIZE=1`` digest cross-check under
batching, and failure isolation (a poisoned member degrades alone to
the per-run retry path while the rest of its group completes batched).
"""

from __future__ import annotations

import pytest

from repro.exec import (
    Executor,
    PolicySpec,
    RunRequest,
    WorkloadSpec,
    plan_groups,
    resolve_batch,
    run_group,
)
from repro.exec.batch import MIN_GROUP, group_key
from tests.exec.test_fault import SCALE, flaky_factory, tiny_request


def grid(policies=(4, 8), seeds=(0, 1), target="cg"):
    """A small figure-style grid: policies x seeds, one shape."""
    return [
        tiny_request(policy=PolicySpec.fixed(threads), seed=seed,
                     target=target)
        for threads in policies
        for seed in seeds
    ]


class TestResolveBatch:
    def test_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH", raising=False)
        assert resolve_batch(None) == "off"
        assert resolve_batch("default") == "off"

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        assert resolve_batch("default") == "auto"
        monkeypatch.setenv("REPRO_BATCH", "inproc")
        assert resolve_batch("default") == "inproc"
        monkeypatch.setenv("REPRO_BATCH", "off")
        assert resolve_batch("default") == "off"

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "pool")
        assert resolve_batch(True) == "auto"
        assert resolve_batch(False) == "off"
        assert resolve_batch("inproc") == "inproc"

    def test_unknown_mode_warns_and_disables(self):
        with pytest.warns(UserWarning):
            assert resolve_batch("sideways") == "off"


class TestGrouping:
    def test_same_shape_different_policy_and_seed_share_a_group(self):
        requests = grid()
        keys = {group_key(request) for request in requests}
        assert len(keys) == 1
        groups, stragglers = plan_groups(requests, range(len(requests)))
        assert groups == [[0, 1, 2, 3]]
        assert stragglers == []

    def test_different_targets_split(self):
        requests = grid(target="cg") + grid(target="ep")
        groups, stragglers = plan_groups(requests, range(len(requests)))
        assert sorted(map(sorted, groups)) == [
            [0, 1, 2, 3], [4, 5, 6, 7],
        ]
        assert stragglers == []

    def test_fixed_stepping_never_batches(self):
        requests = [
            tiny_request(seed=seed, stepping="fixed") for seed in (0, 1)
        ]
        groups, stragglers = plan_groups(requests, range(len(requests)))
        assert groups == []
        assert stragglers == [0, 1]

    def test_singleton_buckets_become_stragglers(self):
        requests = [
            tiny_request(target="cg"),
            tiny_request(target="ep"),
        ]
        groups, stragglers = plan_groups(requests, range(len(requests)))
        assert groups == []
        assert stragglers == [0, 1]

    def test_max_group_chunks_and_reassigns_short_tails(self):
        requests = grid(policies=(2, 4, 8), seeds=(0,))  # 3 members
        groups, stragglers = plan_groups(
            requests, range(len(requests)), max_group=2
        )
        assert groups == [[0, 1]]
        assert stragglers == [2]  # tail of 1 < MIN_GROUP
        assert MIN_GROUP == 2

    def test_subset_of_indices_respected(self):
        requests = grid()
        groups, stragglers = plan_groups(requests, [0, 2])
        assert groups == [[0, 2]]
        assert stragglers == []


class TestRunGroupBitIdentity:
    def test_group_matches_serial_per_run(self):
        requests = grid()
        serial = Executor(jobs=1, cache=None, checkpoint=None).run(
            requests
        )
        outcomes = run_group(requests)
        assert all(outcome.ok for outcome in outcomes)
        assert [outcome.summary for outcome in outcomes] == serial

    def test_workload_scenario_matches_serial(self):
        workload = WorkloadSpec(
            program_names=("is", "ft"), start_times=(0.0, 0.4),
            policy=PolicySpec.fixed(2),
        )
        requests = [
            tiny_request(seed=seed, workload=workload,
                         processors=8)
            for seed in (0, 1, 2)
        ]
        serial = Executor(jobs=1, cache=None, checkpoint=None).run(
            requests
        )
        outcomes = run_group(requests)
        assert [outcome.summary for outcome in outcomes] == serial

    def test_sanitize_digest_cross_check_passes(self, monkeypatch):
        # REPRO_SANITIZE=1 replays every member in the other stepping
        # mode and compares state digests; batching must not trip it.
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        outcomes = run_group(grid(policies=(4, 8), seeds=(0,)))
        assert all(outcome.ok for outcome in outcomes)

    def test_poisoned_member_fails_alone(self):
        requests = grid(policies=(4, 8), seeds=(0,))
        poisoned = tiny_request(
            policy=PolicySpec.of(flaky_factory(99), label="poison"),
        )
        outcomes = run_group([requests[0], poisoned, requests[1]])
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert "flaky policy build" in str(outcomes[1].error)
        # The healthy members' summaries are unaffected by the failure.
        solo = Executor(jobs=1, cache=None, checkpoint=None).run(requests)
        assert [outcomes[0].summary, outcomes[2].summary] == solo


class TestExecutorBatchModes:
    @pytest.fixture()
    def serial(self):
        return Executor(
            jobs=1, cache=None, checkpoint=None, batch="off"
        ).run(grid())

    @pytest.mark.parametrize("mode", ["inproc", "auto", "pool"])
    def test_mode_matches_serial(self, mode, serial):
        summaries = Executor(
            jobs=2, cache=None, checkpoint=None, batch=mode
        ).run(grid())
        assert summaries == serial

    def test_env_knob_reaches_executor(self, monkeypatch, serial):
        monkeypatch.setenv("REPRO_BATCH", "inproc")
        executor = Executor(jobs=1, cache=None, checkpoint=None)
        assert executor.batch == "inproc"
        assert executor.run(grid()) == serial

    def test_batched_runs_counted(self):
        from repro.exec.executor import STATS

        before = STATS.snapshot()
        Executor(
            jobs=1, cache=None, checkpoint=None, batch="inproc"
        ).run(grid())
        after = STATS.snapshot()
        assert after["batched_runs"] - before["batched_runs"] == 4
        assert after["batched_groups"] - before["batched_groups"] == 1

    def test_poisoned_member_degrades_alone_and_retries(self):
        # One member fails inside the batch; the executor must charge
        # it a "batch-error" attempt (uncharged against retries), then
        # recover it on the per-run path while the rest stay batched.
        requests = grid(policies=(4, 8), seeds=(0,))
        poisoned = tiny_request(
            policy=PolicySpec.of(flaky_factory(1), label="flaky"),
        )
        executor = Executor(
            jobs=1, cache=None, checkpoint=None, batch="inproc"
        )
        summaries = executor.run(requests + [poisoned])
        assert len(summaries) == 3
        assert summaries[2].target_time is not None
        report = executor.last_report
        flaky_report = report.requests[2]
        kinds = [attempt.kind for attempt in flaky_report.attempts]
        assert "batch-error" in kinds
        assert kinds[-1] == "ok"

    def test_cache_and_batching_compose(self, tmp_path):
        from repro.exec import RunCache

        requests = grid()
        cache = RunCache(tmp_path)
        first = Executor(
            jobs=1, cache=cache, checkpoint=None, batch="inproc"
        ).run(requests)
        second = Executor(
            jobs=1, cache=cache, checkpoint=None, batch="inproc"
        ).run(requests)
        assert first == second
        serial = Executor(jobs=1, cache=None, checkpoint=None).run(
            requests
        )
        assert first == serial
