"""Result dataclasses: aggregation and formatting."""

import pytest

from repro.experiments.analysis import (
    AccuracyResult,
    NumExpertsResult,
    SelectionFrequencyResult,
    ThreadDistributionResult,
    DEFAULT_BUCKETS,
)
from repro.experiments.dynamic import DynamicSummary
from repro.experiments.extensions import VariantResult
from repro.experiments.runner import PolicyComparison, ScenarioTable
from repro.experiments.workload_impact import WorkloadImpactResult


def comparison(target, speedups):
    return PolicyComparison(
        target=target,
        scenario="test",
        speedups=speedups,
        times={k: 100.0 / v for k, v in speedups.items()},
        workload_gains={k: 1.0 for k in speedups},
    )


class TestScenarioTable:
    def table(self):
        return ScenarioTable(scenario="test", rows=[
            comparison("cg", {"default": 1.0, "mixture": 2.0}),
            comparison("ep", {"default": 1.0, "mixture": 1.0}),
        ])

    def test_hmean(self):
        hm = self.table().hmean()
        assert hm["default"] == pytest.approx(1.0)
        assert hm["mixture"] == pytest.approx(4.0 / 3.0)

    def test_policies(self):
        assert self.table().policies() == ["default", "mixture"]

    def test_workload_hmean(self):
        assert self.table().workload_hmean()["mixture"] == 1.0

    def test_format_includes_rows_and_hmean(self):
        text = self.table().format()
        assert "cg" in text and "ep" in text and "hmean" in text


class TestDynamicSummary:
    def summary(self):
        return DynamicSummary(tables={
            "a": ScenarioTable("a", [
                comparison("cg", {"default": 1.0, "mixture": 2.0}),
            ]),
            "b": ScenarioTable("b", [
                comparison("cg", {"default": 1.0, "mixture": 4.0}),
            ]),
        })

    def test_overall_hmean(self):
        overall = self.summary().overall()
        assert overall["mixture"] == pytest.approx(8.0 / 3.0)

    def test_overall_median(self):
        assert self.summary().overall_median()["mixture"] == 3.0

    def test_scenario_hmeans(self):
        per = self.summary().scenario_hmeans()
        assert per["a"]["mixture"] == 2.0
        assert per["b"]["mixture"] == 4.0


class TestAnalysisResults:
    def test_accuracy_format(self):
        result = AccuracyResult(per_expert=[0.8, 0.82], mixture=0.87)
        text = result.format()
        assert "expert 1: 80.0%" in text
        assert "87.0%" in text

    def test_selection_frequency_format(self):
        result = SelectionFrequencyResult(
            frequencies={"small-low": [0.6, 0.4]},
        )
        assert "E1=60.0%" in result.format()

    def test_num_experts_format(self):
        result = NumExpertsResult(
            single_expert=[1.1, 1.2],
            by_count={1: 1.1, 2: 1.3},
        )
        text = result.format()
        assert "mixture of 2:  1.30" in text

    def test_thread_distribution_format(self):
        hist = {f"{lo}-{hi}": 1 for lo, hi in DEFAULT_BUCKETS}
        result = ThreadDistributionResult(
            distributions={"E1": hist, "mixture": hist},
            buckets=DEFAULT_BUCKETS,
        )
        text = result.format()
        assert "1-4" in text and "25-32" in text


class TestVariantAndImpact:
    def test_variant_result_format(self):
        result = VariantResult(
            title="T", speedups={"a": 1.5, "b": 0.9},
        )
        text = result.format()
        assert "== T ==" in text
        assert "1.50" in text

    def test_workload_impact_overall(self):
        result = WorkloadImpactResult(per_target={
            "cg": {"default": 1.0, "mixture": 1.2},
            "ep": {"default": 1.0, "mixture": 1.1},
        })
        overall = result.overall()
        assert 1.1 < overall["mixture"] < 1.2
