"""Figure-driver smoke tests (miniature configurations).

Each driver is run on a tiny expert bundle with very small programs.
These tests check structure, bookkeeping, and formatting — the paper-
shape assertions live in the benchmarks, which run at full size.
"""

import pytest

from repro.core.policies import DefaultPolicy, MixturePolicy
from repro.experiments.adaptive_pairs import run_adaptive_pairs
from repro.experiments.affinity import run_affinity
from repro.experiments.analysis import (
    run_env_accuracy,
    run_num_experts,
    run_selection_frequency,
    run_thread_distribution,
)
from repro.experiments.dynamic import (
    run_dynamic_summary,
    run_static_isolated,
)
from repro.experiments.generic_vs_experts import run_granularity
from repro.experiments.live_case_study import (
    TracePlayerPolicy,
    run_live_case_study,
    scaled_schedule,
)
from repro.experiments.motivation import run_motivation
from repro.experiments.scenarios import DYNAMIC_SCENARIOS, SMALL_LOW
from repro.experiments.tables import run_expert_weights, run_feature_impact
from repro.experiments.workload_impact import run_workload_impact

SCALE = 0.08
TARGETS = ("cg", "ep")


@pytest.fixture(scope="module")
def tiny_policies(tiny_bundle):
    return {
        "default": DefaultPolicy,
        "mixture": lambda: MixturePolicy(tiny_bundle.experts),
    }


class TestMotivation:
    def test_runs_and_formats(self, tiny_config):
        result = run_motivation(tiny_config, iterations_scale=SCALE)
        assert set(result.speedups) == {
            "default", "analytic", "expert-1", "expert-2", "mixture",
        }
        assert result.speedups["default"] == pytest.approx(1.0)
        assert result.live_trace_points > 1000
        assert all(result.thread_choices.values())
        assert "Motivation" in result.format()


class TestDynamic:
    def test_static_isolated(self, tiny_policies):
        table = run_static_isolated(
            targets=TARGETS, policies=tiny_policies,
            iterations_scale=SCALE,
        )
        assert table.scenario == "static-isolated"
        assert len(table.rows) == 2

    def test_summary(self, tiny_policies):
        summary = run_dynamic_summary(
            targets=("cg",), policies=tiny_policies,
            iterations_scale=SCALE, seeds=(0,),
            scenarios=DYNAMIC_SCENARIOS[:2],
        )
        overall = summary.overall()
        assert overall["default"] == pytest.approx(1.0)
        assert "overall hmean" in summary.format()
        assert set(summary.tables) == {"small-low", "small-high"}
        assert summary.overall_median()["default"] == pytest.approx(1.0)


class TestWorkloadImpact:
    def test_gains_positive(self, tiny_policies):
        result = run_workload_impact(
            targets=("cg",), scenarios=DYNAMIC_SCENARIOS[:1],
            policies=tiny_policies, iterations_scale=SCALE,
        )
        overall = result.overall()
        assert overall["default"] == pytest.approx(1.0)
        assert all(v > 0 for v in overall.values())
        assert "13a" in result.format()


class TestAdaptivePairs:
    def test_combined_speedups(self, tiny_policies):
        result = run_adaptive_pairs(
            pairs=(("cg", "ep"),), policies=tiny_policies,
            iterations_scale=SCALE,
        )
        combined = result.combined()
        assert combined["default"] == pytest.approx(1.0)
        assert combined["mixture"] > 0
        assert "13b" in result.format()


class TestLiveCaseStudy:
    def test_runs(self, tiny_policies):
        result = run_live_case_study(
            targets=("cg",), policies=tiny_policies,
            iterations_scale=SCALE, replay_duration=120.0,
        )
        overall = result.overall()
        assert overall["default"] == pytest.approx(1.0)
        assert "14a" in result.format()

    def test_trace_player_follows_schedule(self):
        from tests.core.test_policies import make_ctx

        player = TracePlayerPolicy([(0.0, 4), (10.0, 12)])
        assert player.select(make_ctx(time=5.0)) == 4
        assert player.select(make_ctx(time=15.0)) == 12

    def test_scaled_schedule_duration(self):
        from repro.workload.trace import generate_live_trace

        schedule = scaled_schedule(
            generate_live_trace(seed=1), 100.0, 32,
        )
        assert schedule[-1][0] == pytest.approx(100.0)
        assert schedule[0][0] == pytest.approx(0.0)


class TestAffinity:
    def test_affinity_columns(self, tiny_policies):
        result = run_affinity(
            targets=("cg",), policies=tiny_policies,
            iterations_scale=SCALE,
        )
        assert set(result.without_affinity) == set(tiny_policies)
        gains = result.improvement()
        assert all(v > 0 for v in gains.values())
        assert "14b" in result.format()


class TestGranularity:
    def test_monolithic_vs_mixture(self, tiny_config):
        result = run_granularity(
            targets=("cg",), granularities=(1, 4),
            config=tiny_config, iterations_scale=SCALE,
        )
        assert "monolithic" in result.speedups
        assert "experts-4" in result.speedups
        assert "granularity" in result.format()


class TestAnalyses:
    def test_env_accuracy(self, tiny_config):
        result = run_env_accuracy(
            targets=("cg",), scenarios=(SMALL_LOW,),
            config=tiny_config, iterations_scale=SCALE,
        )
        assert all(0.0 <= v <= 1.0 for v in result.per_expert)
        assert 0.0 <= result.mixture <= 1.0
        assert "15a" in result.format()

    def test_selection_frequency(self, tiny_config):
        result = run_selection_frequency(
            targets=("cg",), scenarios=(SMALL_LOW,),
            config=tiny_config, iterations_scale=SCALE,
        )
        freqs = result.frequencies["small-low"]
        assert sum(freqs) == pytest.approx(1.0)
        assert "15b" in result.format()

    def test_num_experts(self, tiny_config):
        result = run_num_experts(
            targets=("cg",), scenario=SMALL_LOW,
            config=tiny_config, iterations_scale=SCALE,
        )
        assert len(result.by_count) >= 2
        assert all(v > 0 for v in result.single_expert)
        assert "15c" in result.format()

    def test_thread_distribution(self, tiny_config):
        result = run_thread_distribution(
            targets=("cg",), scenario=SMALL_LOW,
            config=tiny_config, iterations_scale=SCALE,
        )
        assert "mixture" in result.distributions
        total = sum(result.distributions["mixture"].values())
        assert total > 0
        assert "17" in result.format()


class TestTables:
    def test_expert_weights(self, tiny_config):
        table = run_expert_weights(tiny_config)
        rows = table.rows()
        assert rows[-1]["feature"] == "β"
        assert len(rows) == 11
        assert "Table 1" in table.format()

    def test_feature_impact(self, tiny_config):
        result = run_feature_impact(tiny_config)
        for impacts in result.per_expert.values():
            assert sum(impacts.values()) == pytest.approx(1.0)
        assert sum(result.averaged.values()) == pytest.approx(1.0)
        assert "Figure 6" in result.format()
