"""Scenario definitions."""

import pytest

from repro.experiments.scenarios import (
    ALL_SCENARIOS,
    DYNAMIC_SCENARIOS,
    EVALUATION_TARGETS,
    Scenario,
    SMALL_HIGH,
    SMALL_LOW,
    STATIC_ISOLATED,
)
from repro.machine.availability import (
    PeriodicAvailability,
    StaticAvailability,
)
from repro.machine.topology import XEON_L7555


class TestScenario:
    def test_four_dynamic_scenarios(self):
        names = {s.name for s in DYNAMIC_SCENARIOS}
        assert names == {
            "small-low", "small-high", "large-low", "large-high",
        }

    def test_all_includes_static(self):
        assert STATIC_ISOLATED in ALL_SCENARIOS
        assert len(ALL_SCENARIOS) == 5

    def test_static_availability(self):
        schedule = STATIC_ISOLATED.availability(XEON_L7555)
        assert isinstance(schedule, StaticAvailability)
        assert schedule.available(1e4) == 32

    def test_low_frequency_period(self):
        schedule = SMALL_LOW.availability(XEON_L7555, seed=1)
        assert isinstance(schedule, PeriodicAvailability)
        assert schedule.period == 20.0

    def test_high_frequency_period(self):
        schedule = SMALL_HIGH.availability(XEON_L7555, seed=1)
        assert schedule.period == 10.0

    def test_seed_flows_through(self):
        a = SMALL_LOW.availability(XEON_L7555, seed=1)
        b = SMALL_LOW.availability(XEON_L7555, seed=2)
        times = [20.0 * k for k in range(1, 20)]
        assert [a.available(t) for t in times] != [
            b.available(t) for t in times
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario("bad", "medium", "low")
        with pytest.raises(ValueError):
            Scenario("bad", "small", "sometimes")

    def test_evaluation_targets_resolve(self):
        from repro.programs import registry

        for name in EVALUATION_TARGETS:
            registry.get(name)

    def test_evaluation_includes_unseen_programs(self):
        """SpecOMP and Parsec programs are evaluation-only."""
        assert "art" in EVALUATION_TARGETS
        assert "blackscholes" in EVALUATION_TARGETS
