"""Section 9 extension experiments (miniature configurations)."""

import pytest

from repro.experiments.extensions import (
    OPTERON_48,
    run_data_tradeoff,
    run_model_comparison,
    run_portability,
)

SCALE = 0.08
TARGETS = ("cg", "ep")


class TestModelComparison:
    def test_runs(self, tiny_config):
        result = run_model_comparison(
            targets=TARGETS, config=tiny_config,
            iterations_scale=SCALE,
        )
        assert "linear experts (paper)" in result.speedups
        assert "kernel experts (SVM-style)" in result.speedups
        assert "linear + kernel pooled" in result.speedups
        assert all(v > 0 for v in result.speedups.values())
        assert "Section 9" in result.format()


class TestDataTradeoff:
    def test_runs(self, tiny_config):
        result = run_data_tradeoff(
            targets=TARGETS, fractions=(0.5, 1.0),
            config=tiny_config, iterations_scale=SCALE,
        )
        assert "monolithic @ 100%" in result.speedups
        assert any(
            label.startswith("experts-4") for label in result.speedups
        )

    def test_fraction_validation(self, tiny_config):
        with pytest.raises(ValueError):
            run_data_tradeoff(
                targets=TARGETS, fractions=(0.0,),
                config=tiny_config, iterations_scale=SCALE,
            )


class TestPortability:
    def test_opteron_topology(self):
        assert OPTERON_48.cores == 48
        assert OPTERON_48.name == "opteron-48"

    def test_runs_on_unseen_platform(self, tiny_config):
        result = run_portability(
            targets=TARGETS, config=tiny_config,
            iterations_scale=SCALE,
        )
        value = result.speedups["mixture (12/32-core experts)"]
        assert value > 0
        assert "opteron-48" in result.title
