"""Experiment runner infrastructure (miniature end-to-end runs)."""

import pytest

from repro.core.policies import DefaultPolicy, FixedPolicy, MixturePolicy
from repro.experiments.runner import (
    cgo13_config,
    compare_policies,
    evaluate_scenario,
    mixture_factory,
    run_target,
    standard_policies,
)
from repro.experiments.scenarios import SMALL_LOW, STATIC_ISOLATED

SCALE = 0.08  # very small programs for test speed


@pytest.fixture(scope="module")
def tiny_policies(tiny_bundle):
    """A policy dict like standard_policies, but on the tiny bundle."""
    return {
        "default": DefaultPolicy,
        "fixed8": lambda: FixedPolicy(8),
        "mixture": lambda: MixturePolicy(tiny_bundle.experts),
    }


class TestRunTarget:
    def test_isolated_run(self):
        outcome = run_target(
            "cg", FixedPolicy(8), STATIC_ISOLATED,
            iterations_scale=SCALE,
        )
        assert outcome.target_time > 0
        assert outcome.workload_throughput == 0.0
        assert outcome.policy == "fixed-8"

    def test_with_workload(self):
        from repro.workload.spec import workload_sets

        outcome = run_target(
            "cg", FixedPolicy(8), SMALL_LOW,
            workload_set=workload_sets("small")[0],
            iterations_scale=SCALE,
        )
        assert outcome.workload_throughput > 0
        assert len(outcome.result.workload_runs) == 2

    def test_deterministic(self):
        times = [
            run_target("cg", FixedPolicy(8), SMALL_LOW,
                       workload_set=None, seed=3,
                       iterations_scale=SCALE).target_time
            for _ in range(2)
        ]
        assert times[0] == times[1]


class TestComparePolicies:
    def test_speedups_relative_to_default(self, tiny_policies):
        comparison = compare_policies(
            "cg", STATIC_ISOLATED, tiny_policies,
            seeds=(0,), iterations_scale=SCALE,
        )
        assert comparison.speedups["default"] == pytest.approx(1.0)
        assert set(comparison.speedups) == set(tiny_policies)
        assert all(v > 0 for v in comparison.speedups.values())

    def test_requires_default(self, tiny_policies):
        policies = dict(tiny_policies)
        del policies["default"]
        with pytest.raises(ValueError, match="default"):
            compare_policies("cg", STATIC_ISOLATED, policies)

    def test_workload_gains_tracked(self, tiny_policies):
        comparison = compare_policies(
            "cg", SMALL_LOW, tiny_policies,
            seeds=(0,), iterations_scale=SCALE,
        )
        assert all(v > 0 for v in comparison.workload_gains.values())

    def test_outcomes_recorded_per_configuration(self, tiny_policies):
        comparison = compare_policies(
            "cg", SMALL_LOW, tiny_policies,
            seeds=(0, 1), iterations_scale=SCALE,
        )
        # 2 workload sets x 2 seeds.
        assert len(comparison.outcomes["default"]) == 4


class TestEvaluateScenario:
    def test_table_structure(self, tiny_policies):
        table = evaluate_scenario(
            STATIC_ISOLATED, ["cg", "ep"], tiny_policies,
            seeds=(0,), iterations_scale=SCALE,
        )
        assert [row.target for row in table.rows] == ["cg", "ep"]
        hmean = table.hmean()
        assert hmean["default"] == pytest.approx(1.0)
        text = table.format()
        assert "cg" in text and "hmean" in text


class TestFactories:
    def test_mixture_factory_fresh_instances(self, tiny_bundle,
                                             tiny_config):
        factory = mixture_factory(tiny_bundle, tiny_config)
        a, b = factory(), factory()
        assert a is not b
        assert a.selector is not b.selector

    def test_pretrained_state_loaded(self, tiny_bundle, tiny_config):
        factory = mixture_factory(tiny_bundle, tiny_config,
                                  pretrained=True)
        policy = factory()
        import numpy as np
        assert not np.allclose(policy.selector.hyperplanes, 0.0)

    def test_unpretrained_starts_even(self, tiny_bundle, tiny_config):
        factory = mixture_factory(tiny_bundle, tiny_config,
                                  pretrained=False)
        import numpy as np
        assert np.allclose(factory().selector.hyperplanes, 0.0)

    def test_cgo13_config_restrictions(self, tiny_config):
        restricted = cgo13_config(tiny_config)
        assert restricted.platform_names == ("xeon-l7555",)
        assert restricted.availability_levels == (1.0,)

    def test_standard_policies_names(self, tiny_config):
        policies = standard_policies(tiny_config)
        assert set(policies) == {
            "default", "online", "offline", "analytic", "mixture",
        }
        for factory in policies.values():
            policy = factory()
            assert hasattr(policy, "select")
