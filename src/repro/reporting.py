"""Plain-text reporting: tables and ASCII charts.

The paper's figures are bar charts and timelines; this repository
renders them as text.  These helpers are what the experiment drivers,
the CLI and the examples share.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence


def render_json(payload: object) -> str:
    """Serialise a report payload as JSON.

    The one JSON convention shared by every CLI surface (``repro lint
    --format json`` and friends): two-space indent, sorted keys, no
    trailing whitespace — so output is stable, diffable and greppable.
    """
    return json.dumps(payload, indent=2, sort_keys=True)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.2f}",
    min_width: int = 8,
) -> str:
    """A right-aligned text table (first column left-aligned)."""
    if not headers:
        raise ValueError("headers must not be empty")

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(min_width, len(header),
            *(len(row[i]) for row in text_rows)) if text_rows
        else max(min_width, len(header))
        for i, header in enumerate(headers)
    ]
    lines = []

    def fmt(row: Sequence[str]) -> str:
        first = row[0].ljust(widths[0])
        rest = "".join(
            value.rjust(widths[i] + 2)
            for i, value in enumerate(row) if i > 0
        )
        return first + rest

    lines.append(fmt(list(headers)))
    for row in text_rows:
        lines.append(fmt(row))
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    baseline: Optional[float] = None,
    unit: str = "x",
) -> str:
    """Horizontal ASCII bars, one per labelled value.

    With ``baseline`` given, a marker ``|`` is drawn at that value's
    position (e.g. the 1.0x default line of the speedup figures).
    """
    if not values:
        raise ValueError("values must not be empty")
    if width < 10:
        raise ValueError("width must be at least 10")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("values must contain something positive")
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        filled = max(0, int(round(width * value / peak)))
        bar = "#" * filled
        if baseline is not None and 0 < baseline <= peak:
            marker = int(round(width * baseline / peak))
            padded = list(bar.ljust(width))
            if 0 <= marker < width and padded[marker] == " ":
                padded[marker] = "|"
            bar = "".join(padded).rstrip()
        lines.append(
            f"{label.ljust(label_width)} "
            f"{value:6.2f}{unit} {bar}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line trend of a series (resampled to ``width`` buckets)."""
    ticks = " .:-=+*#%@"
    values = list(values)
    if not values:
        raise ValueError("values must not be empty")
    if width < 1:
        raise ValueError("width must be positive")
    # Resample by bucket means.
    buckets: List[float] = []
    per_bucket = max(1, len(values) // width)
    for start in range(0, len(values), per_bucket):
        chunk = values[start:start + per_bucket]
        buckets.append(sum(chunk) / len(chunk))
    buckets = buckets[:width]
    low, high = min(buckets), max(buckets)
    span = high - low
    if span <= 0:
        return ticks[len(ticks) // 2] * len(buckets)
    out = []
    for value in buckets:
        index = int((value - low) / span * (len(ticks) - 1))
        out.append(ticks[index])
    return "".join(out)


def timeline_chart(
    points: Sequence[tuple],
    width: int = 60,
    label: str = "",
) -> str:
    """Render (time, value) points as a labelled sparkline with range."""
    points = list(points)
    if not points:
        raise ValueError("points must not be empty")
    values = [value for _, value in points]
    spark = sparkline(values, width=width)
    lo, hi = min(values), max(values)
    t0, t1 = points[0][0], points[-1][0]
    prefix = f"{label} " if label else ""
    return (
        f"{prefix}[{t0:.0f}s..{t1:.0f}s] "
        f"min={lo:.1f} max={hi:.1f}  {spark}"
    )
