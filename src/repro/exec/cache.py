"""Content-addressed run memoisation.

Completed :class:`~repro.exec.request.RunSummary` objects are stored one
file per run fingerprint under ``$REPRO_CACHE_DIR/runs`` (default
``~/.cache/repro/runs``), next to the expert-bundle cache of
:mod:`repro.core.training`.  Because the fingerprint covers the full run
configuration *and* the simulator calibration constants, a hit is always
safe to replay — re-running a figure after an unrelated change is a pure
cache read.

The cache is tolerant by construction: a corrupted, truncated or
unreadable entry is treated as a miss, never an error.  The offending
file is *quarantined* — moved aside into ``<root>/quarantine/`` with a
one-time warning naming it — so the bad bytes survive for post-mortem
while the run is transparently recomputed.  Entries from an older
format version are simply deleted (expected churn, not corruption).
Writes are atomic (temp file + ``os.replace``) so a crashed or killed
run can corrupt at most its own in-flight entry.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Optional

from ..core.persistence import prune_quarantine
from .request import RunSummary

#: On-disk entry format version; bump to orphan all existing entries.
CACHE_ENTRY_VERSION = 1

_DISABLE_VALUES = ("0", "no", "off", "false")


def cache_enabled() -> bool:
    """Run memoisation is on unless ``REPRO_RUN_CACHE`` disables it."""
    return os.environ.get(
        "REPRO_RUN_CACHE", "1"
    ).strip().lower() not in _DISABLE_VALUES


def default_cache_root() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    base = Path(root) if root else Path.home() / ".cache" / "repro"
    return base / "runs"


class RunCache:
    """Fingerprint-keyed store of :class:`RunSummary` objects."""

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0
        self._warned_quarantine = False

    def path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.pkl"

    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def get(self, fingerprint: str) -> Optional[RunSummary]:
        """The cached summary, or ``None`` on miss/corruption."""
        path = self.path(fingerprint)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupted/truncated/unreadable entry: move it aside for
            # post-mortem and recompute.
            self._quarantine(path)
            self.misses += 1
            return None
        if not isinstance(entry, dict) or not isinstance(
            entry.get("summary"), RunSummary
        ):
            # Alien payload under our name: keep the evidence.
            self._quarantine(path)
            self.misses += 1
            return None
        if entry.get("version") != CACHE_ENTRY_VERSION:
            # Well-formed entry from another format version: routine
            # churn after an upgrade, delete silently.
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return entry["summary"]

    def put(self, fingerprint: str, summary: RunSummary) -> None:
        """Store ``summary``; failures are silent (cache is best-effort)."""
        path = self.path(fingerprint)
        entry = {"version": CACHE_ENTRY_VERSION, "summary": summary}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(entry, fh, protocol=4)
                os.replace(tmp, path)
            except BaseException:
                self._discard(Path(tmp))
                raise
        except OSError:
            return
        self.stores += 1

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry into ``quarantine/``; delete as a last
        resort so a bad entry can never be read twice."""
        target = self.quarantine_dir() / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            self._discard(path)
            return
        self.quarantined += 1
        # Post-mortem evidence, not an archive: a recurring corruption
        # source (bad disk, version skew) must not grow this directory
        # without bound.
        prune_quarantine(self.quarantine_dir())
        if not self._warned_quarantine:
            self._warned_quarantine = True
            warnings.warn(
                f"repro.exec: corrupt run-cache entry quarantined to "
                f"{target}; the run will be recomputed",
                stacklevel=4,
            )

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
