"""Content-addressed run memoisation.

Completed :class:`~repro.exec.request.RunSummary` objects are stored one
file per run fingerprint under ``$REPRO_CACHE_DIR/runs`` (default
``~/.cache/repro/runs``), next to the expert-bundle cache of
:mod:`repro.core.training`.  Because the fingerprint covers the full run
configuration *and* the simulator calibration constants, a hit is always
safe to replay — re-running a figure after an unrelated change is a pure
cache read.

The cache is tolerant by construction: a corrupted, truncated or
unreadable entry is treated as a miss (and deleted best-effort), never
an error.  Writes are atomic (temp file + ``os.replace``) so a crashed
or killed run can corrupt at most its own in-flight entry.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from .request import RunSummary

#: On-disk entry format version; bump to orphan all existing entries.
CACHE_ENTRY_VERSION = 1

_DISABLE_VALUES = ("0", "no", "off", "false")


def cache_enabled() -> bool:
    """Run memoisation is on unless ``REPRO_RUN_CACHE`` disables it."""
    return os.environ.get(
        "REPRO_RUN_CACHE", "1"
    ).strip().lower() not in _DISABLE_VALUES


def default_cache_root() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    base = Path(root) if root else Path.home() / ".cache" / "repro"
    return base / "runs"


class RunCache:
    """Fingerprint-keyed store of :class:`RunSummary` objects."""

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.pkl"

    def get(self, fingerprint: str) -> Optional[RunSummary]:
        """The cached summary, or ``None`` on miss/corruption."""
        path = self.path(fingerprint)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Corrupted/truncated/alien entry: drop it and recompute.
            self._discard(path)
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("version") != CACHE_ENTRY_VERSION
            or not isinstance(entry.get("summary"), RunSummary)
        ):
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return entry["summary"]

    def put(self, fingerprint: str, summary: RunSummary) -> None:
        """Store ``summary``; failures are silent (cache is best-effort)."""
        path = self.path(fingerprint)
        entry = {"version": CACHE_ENTRY_VERSION, "summary": summary}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(entry, fh, protocol=4)
                os.replace(tmp, path)
            except BaseException:
                self._discard(Path(tmp))
                raise
        except OSError:
            return
        self.stores += 1

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
