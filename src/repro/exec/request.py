"""Run requests: the full configuration of one co-execution simulation.

A :class:`RunRequest` captures everything a single simulated run depends
on — target program, policy factory spec, scenario, workload set, seed,
topology, iteration scale, tick size, time limit — as a picklable value.
That buys two things at once:

* **parallelism** — requests can be shipped to worker processes and
  executed concurrently (:mod:`repro.exec.executor`), because every run
  is independent given its request;
* **memoisation** — a request has a content fingerprint
  (:meth:`RunRequest.fingerprint`) combining its own configuration with
  the simulator calibration fingerprint from
  :func:`repro.core.training.simulator_fingerprint`, so completed runs
  can be cached on disk and replayed instantly
  (:mod:`repro.exec.cache`).

The result of executing a request is a slim :class:`RunSummary` — the
headline numbers plus the selection log, *not* the full tick timeline —
small enough to cache by the thousand and to send back over a pipe.
"""

from __future__ import annotations

import hashlib
import pickle
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

#: Bump whenever the semantics of executing a request change in a way
#: the simulator calibration fingerprint does not capture (e.g. job
#: naming, summary contents).  Part of every run fingerprint.
#: Version 2: requests gained the ``stepping`` mode and summaries are
#: produced without timeline sampling (they never stored timelines).
#: Version 3: workload specs carry ``start_times``/``restart`` (burst
#: storms) and summaries carry ``policy_fallbacks``; old entries lack
#: the new fields, so their fingerprints must never hit.
#: Version 4: summaries may be produced by the cross-run batched
#: execution path and transported through shared-memory SoA blocks
#: (:mod:`repro.exec.batch` / :mod:`repro.exec.shm`).  Both are
#: specified bit-identical to per-run pickled execution, but the bump
#: orphans every pre-batch cache entry so any assembly or transport
#: drift can never silently replay stale results.
RUN_FORMAT_VERSION = 4


def _stable_token(factory: Callable) -> Optional[str]:
    """Content digest of a policy factory, or ``None`` if unpicklable.

    cloudpickle serialises closures by value (code + captured cells), so
    the digest changes whenever the factory's behaviour-defining state
    changes — e.g. a retrained selector — and run-cache entries keyed on
    it go stale exactly when they should.
    """
    blob: Optional[bytes] = None
    try:
        import cloudpickle

        blob = cloudpickle.dumps(factory, protocol=4)
    except Exception:
        try:
            blob = pickle.dumps(factory, protocol=4)
        except Exception:
            return None
    return hashlib.sha256(blob).hexdigest()[:24]


#: (label, factory-name) pairs already warned about — one warning per
#: distinct unpicklable factory, not one per request.
_WARNED_UNTOKENED: set = set()


def _warn_untokened(label: str, factory: Callable) -> None:
    """Tell the user their runs silently skip memoisation, once."""
    name = (
        getattr(factory, "__qualname__", None)
        or getattr(factory, "__name__", None)
        or repr(factory)
    )
    key = (label, name)
    if key in _WARNED_UNTOKENED:
        return
    _WARNED_UNTOKENED.add(key)
    warnings.warn(
        f"repro.exec: policy factory {name!r} (label {label!r}) cannot "
        f"be pickled, so runs built from it get no content fingerprint "
        f"— they will execute but never be memoised (no run cache, no "
        f"checkpoint resume)",
        stacklevel=3,
    )


@dataclass(frozen=True)
class PolicySpec:
    """A picklable recipe for building fresh :class:`ThreadPolicy` objects.

    ``factory`` is invoked once per run (in the worker process for
    parallel execution); ``token`` is the content digest used in run
    fingerprints.  A spec with ``token=None`` still executes but is
    never memoised.
    """

    label: str
    factory: Callable = field(compare=False, repr=False)
    token: Optional[str] = None

    @classmethod
    def of(cls, factory: Callable, label: str = "") -> "PolicySpec":
        if isinstance(factory, PolicySpec):
            return factory if not label or factory.label == label else cls(
                label=label, factory=factory.factory, token=factory.token,
            )
        resolved_label = label or getattr(factory, "__name__", "policy")
        token = _stable_token(factory)
        if token is None:
            _warn_untokened(resolved_label, factory)
        return cls(
            label=resolved_label,
            factory=factory,
            token=token,
        )

    @classmethod
    def fixed(cls, threads: int) -> "PolicySpec":
        """Spec for a :class:`FixedPolicy` with a stable token."""
        from ..core.policies.fixed import FixedPolicy
        from functools import partial

        return cls(
            label=f"fixed-{threads}",
            factory=partial(FixedPolicy, threads),
            token=f"fixed:{threads}",
        )

    def build(self):
        return self.factory()


@dataclass(frozen=True)
class WorkloadSpec:
    """The co-running workload half of a request.

    ``program_names`` resolve through the program registry in the
    executing process; by default every workload job restarts until the
    target finishes (the paper's protocol) and runs a fresh policy
    built from ``policy``.  ``start_times`` staggers job arrivals (one
    entry per program, missing entries arrive at 0.0) and ``restart``
    can be disabled so a job runs once and leaves — together these
    express burst-storm workloads (:mod:`repro.chaos.workload`).
    """

    program_names: Tuple[str, ...]
    policy: PolicySpec
    name: str = ""
    start_times: Tuple[float, ...] = ()
    restart: bool = True

    @classmethod
    def from_set(cls, workload_set, policy: PolicySpec) -> "WorkloadSpec":
        """Adapt a :class:`repro.workload.spec.WorkloadSet`."""
        return cls(
            program_names=tuple(workload_set.program_names),
            policy=policy,
            name=workload_set.name,
        )

    def fingerprint_parts(self) -> tuple:
        return (
            self.program_names,
            self.policy.token,
            self.start_times,
            self.restart,
        )


@dataclass(frozen=True)
class RecordedSelection:
    """One recorded consultation of the target policy (``record`` runs).

    The feature vector is stored as a plain tuple so summaries compare
    and pickle deterministically; :mod:`repro.core.training` converts
    back to an array when harvesting samples.
    """

    time: float
    loop_name: str
    features: Tuple[float, ...]
    threads: int


@dataclass(frozen=True)
class RunSummary:
    """Slim outcome of one run: headline numbers + the selection log.

    Deliberately excludes the tick timeline and the policy object —
    experiments that interrogate those (Figure 2 timelines, the mixture
    decision-log analyses) keep using
    :func:`repro.experiments.runner.run_target` directly.
    """

    target: str
    policy: str
    target_time: float
    workload_throughput: float
    duration: float
    workload_runs: Tuple[Tuple[str, int], ...]
    selections: tuple
    records: Tuple[RecordedSelection, ...] = ()
    #: Times the target policy hit its degraded-input safe fallback
    #: (NaN/degenerate features — see ``docs/robustness.md``).  Zero on
    #: healthy runs; non-zero makes chaos-induced degradation visible
    #: without digging through selection logs.
    policy_fallbacks: int = 0


@dataclass(frozen=True)
class RunRequest:
    """Full configuration of one co-execution simulation.

    ``scenario`` is any object with ``name`` and
    ``availability(topology, seed=...)`` (duck-typed to avoid importing
    the experiments layer); ``None`` means a static machine, optionally
    restricted to ``processors`` cores — the training-run setting.
    ``record`` wraps the target policy in a
    :class:`~repro.core.policies.fixed.RecordingPolicy` and returns the
    recorded feature vectors in the summary.
    """

    target: str
    policy: PolicySpec
    scenario: Optional[object] = None
    workload: Optional[WorkloadSpec] = None
    seed: int = 0
    topology: Optional[object] = None  # Topology; None = XEON_L7555
    iterations_scale: float = 1.0
    dt: float = 0.1
    max_time: float = 3600.0
    processors: Optional[int] = None
    target_affinity: Optional[object] = None
    workload_affinity: Optional[object] = None
    record: bool = False
    #: Engine stepping mode: ``"event"`` (event-driven fast-forward) or
    #: ``"fixed"`` (the per-tick reference).  Part of the fingerprint, so
    #: runs from different modes never share cache entries.
    stepping: str = "event"

    def __post_init__(self) -> None:
        from ..runtime.engine import STEPPING_MODES

        if self.stepping not in STEPPING_MODES:
            raise ValueError(
                f"unknown stepping mode {self.stepping!r}; "
                f"expected one of {STEPPING_MODES}"
            )

    def resolved_topology(self):
        if self.topology is not None:
            return self.topology
        from ..machine.topology import XEON_L7555

        return XEON_L7555

    def fingerprint(self) -> Optional[str]:
        """Content hash of this request, or ``None`` if unfingerprintable.

        Includes the simulator calibration fingerprint so cached results
        are never replayed after the simulated physics change, and the
        policy/workload factory tokens so retrained or reconfigured
        policies miss the cache.
        """
        from ..core.training import simulator_fingerprint

        if self.policy.token is None:
            return None
        if self.workload is not None and self.workload.policy.token is None:
            return None
        parts = (
            RUN_FORMAT_VERSION,
            self.target,
            self.policy.token,
            repr(self.scenario),
            self.workload.fingerprint_parts() if self.workload else None,
            self.seed,
            repr(self.resolved_topology()),
            self.iterations_scale,
            self.dt,
            self.max_time,
            self.processors,
            repr(self.target_affinity),
            repr(self.workload_affinity),
            self.record,
            self.stepping,
            simulator_fingerprint(),
        )
        return hashlib.sha256(repr(parts).encode()).hexdigest()


def _availability(request: RunRequest, topology):
    from ..machine.availability import StaticAvailability

    if request.scenario is not None:
        return request.scenario.availability(topology, seed=request.seed)
    return StaticAvailability(request.processors or topology.cores)


def _build_simulation(request: RunRequest, stepping: str):
    """Build one ready-to-run engine for ``request`` with fresh policies.

    Returns ``(engine, recorder, base_policy)`` without running the
    engine, so callers can choose the drive mode: solo
    (:func:`_simulate` calls ``engine.run()``) or interleaved with
    other engines through the span-step generator
    (:mod:`repro.exec.batch`).
    """
    from ..core.policies.fixed import RecordingPolicy
    from ..core.training import scale_program
    from ..machine.machine import SimMachine
    from ..programs import registry
    from ..runtime.engine import CoExecutionEngine, JobSpec

    topology = request.resolved_topology()
    target = registry.get(request.target)
    if request.iterations_scale != 1.0:
        target = scale_program(target, request.iterations_scale)
    machine = SimMachine(
        topology=topology,
        availability=_availability(request, topology),
    )
    policy = request.policy.build()
    recorder: Optional["RecordingPolicy"] = None
    if request.record:
        recorder = RecordingPolicy(policy)
        policy = recorder
    jobs = [JobSpec(
        program=target,
        policy=policy,
        job_id="target",
        is_target=True,
        affinity=request.target_affinity,
    )]
    if request.workload is not None:
        starts = request.workload.start_times
        for index, name in enumerate(request.workload.program_names):
            program = registry.get(name)
            if request.iterations_scale != 1.0:
                program = scale_program(program, request.iterations_scale)
            jobs.append(JobSpec(
                program=program,
                policy=request.workload.policy.build(),
                job_id=f"w{index}-{program.name}",
                restart=request.workload.restart,
                start_time=starts[index] if index < len(starts) else 0.0,
                affinity=request.workload_affinity,
            ))
    # RunSummary never stores the timeline, and timeline sampling is
    # read-only physics-wise, so it is disabled outright — in event mode
    # the sampling grid would otherwise cap every fast-forward span at
    # one timeline period.
    engine = CoExecutionEngine(
        machine=machine, jobs=jobs,
        dt=request.dt, max_time=request.max_time,
        timeline_period=None,
        stepping=stepping,
    )
    base_policy = recorder.inner if recorder is not None else policy
    return engine, recorder, base_policy


def _simulate(request: RunRequest, stepping: str):
    """Build and run one engine for ``request`` with fresh policies.

    Returns ``(result, engine, recorder, base_policy)``; separate from
    :func:`execute_request` so the determinism cross-check can re-run
    the identical scenario under the other stepping mode with its own
    freshly-built (stateful) policy objects.
    """
    engine, recorder, base_policy = _build_simulation(request, stepping)
    result = engine.run()
    return result, engine, recorder, base_policy


def _sanitize_cross_check(request: RunRequest, engine) -> None:
    """Replay the run under the other stepping mode and compare digests.

    Under ``REPRO_SANITIZE=1`` every engine folds its decision-relevant
    event stream (consultations, completions, the final result) into a
    rolling state digest.  The event-driven and fixed-tick interleavings
    are specified to make identical decisions at identical simulated
    times, so differing digests mean hidden nondeterminism — unseeded
    state, iteration-order dependence, or a stepping-equivalence bug —
    and the run fails loudly instead of contaminating cached results.
    """
    from ..analysis.determinism import DeterminismError

    if engine.state_digest is None:
        return
    other = "fixed" if request.stepping == "event" else "event"
    _result, shadow, _recorder, _policy = _simulate(request, other)
    ours = engine.state_digest.hexdigest()
    theirs = shadow.state_digest.hexdigest()
    if ours != theirs:
        raise DeterminismError(
            f"stepping interleavings diverged for {request.target!r} "
            f"(seed={request.seed}): {request.stepping}-mode digest "
            f"{ours} != {other}-mode digest {theirs} after "
            f"{engine.state_digest.events} vs "
            f"{shadow.state_digest.events} events"
        )


def execute_request(request: RunRequest) -> RunSummary:
    """Run one simulation described by ``request`` in this process.

    Deterministic: the same request always yields an identical summary,
    which is what makes both memoisation and the serial/parallel
    equivalence guarantee of :class:`repro.exec.executor.Executor` hold.
    Under ``REPRO_SANITIZE=1`` the run is additionally replayed under
    the other stepping mode and the two engines' state digests are
    cross-checked (see :func:`_sanitize_cross_check`).
    """
    result, engine, recorder, base_policy = _simulate(
        request, request.stepping
    )
    _sanitize_cross_check(request, engine)
    return _summarize(request, result, recorder, base_policy)


def _summarize(request, result, recorder, base_policy) -> RunSummary:
    """Assemble the :class:`RunSummary` for one finished simulation.

    Shared by solo execution (:func:`execute_request`) and the batch
    driver (:mod:`repro.exec.batch`), so both produce byte-identical
    summaries from identical simulation results.
    """
    if result.target_time is None:
        scenario = getattr(request.scenario, "name", "static")
        raise RuntimeError(
            f"run timed out: {request.target} / {request.policy.label} / "
            f"{scenario} (seed={request.seed})"
        )
    records: Tuple[RecordedSelection, ...] = ()
    if recorder is not None:
        records = tuple(
            RecordedSelection(
                time=rec.time,
                loop_name=rec.loop_name,
                features=tuple(float(v) for v in rec.features),
                threads=rec.threads,
            )
            for rec in recorder.records
        )
    return RunSummary(
        target=request.target,
        policy=getattr(base_policy, "name", request.policy.label),
        target_time=result.target_time,
        workload_throughput=result.workload_throughput,
        duration=result.duration,
        workload_runs=tuple(result.workload_runs.items()),
        selections=tuple(result.selections),
        records=records,
        policy_fallbacks=int(
            getattr(base_policy, "fallback_count", 0) or 0
        ),
    )
