"""Fault-tolerance primitives for the experiment executor.

A grid of thousands of simulations must survive partial failure: a
worker process that segfaults or is OOM-killed, a run that hangs, a
cache entry truncated by a previous crash, a ``KeyboardInterrupt``
halfway through an overnight sweep.  This module supplies the pieces
the :class:`~repro.exec.executor.Executor` composes into that story:

* :class:`RetryPolicy` — bounded per-request retries with exponential
  backoff and *deterministic* jitter (hashed from the request key and
  attempt number, so reruns sleep identically and tests are stable);
* :class:`Checkpoint` — periodic on-disk snapshots of completed
  summaries keyed by run fingerprint, so an interrupted grid resumes
  from partial results instead of starting over;
* :class:`FailureReport` / :class:`RequestReport` /
  :class:`AttemptRecord` — the structured account of what every request
  went through (attempts, error classes, elapsed wall clock), threaded
  through the experiment drivers;
* :class:`RunTimeoutError` and :class:`SerialFallbackWarning` — typed
  failure surfaces, the warning carrying the triggering exception as
  its ``cause`` instead of swallowing it.

Environment knobs (all optional, resolved by the ``resolve_*``
helpers): ``REPRO_MAX_RETRIES``, ``REPRO_RUN_TIMEOUT``,
``REPRO_MAX_POOL_REBUILDS``, ``REPRO_CHECKPOINT``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..core.persistence import prune_quarantine
from .request import RunSummary

#: On-disk checkpoint format version; bump to orphan old checkpoints.
CHECKPOINT_VERSION = 1

#: Default number of retries after the first attempt fails.
DEFAULT_MAX_RETRIES = 2

#: Default number of pool rebuilds tolerated before degrading to serial.
DEFAULT_MAX_POOL_REBUILDS = 3


class RunTimeoutError(RuntimeError):
    """A run exceeded the configured per-run wall-clock timeout."""


class SerialFallbackWarning(UserWarning):
    """The executor degraded to in-process serial execution.

    ``cause`` holds the exception that triggered the fallback (pool
    creation failure, unserialisable request, repeated pool crashes) so
    callers can inspect it instead of parsing the message.
    """

    def __init__(self, message: str, cause: Optional[BaseException] = None):
        super().__init__(message)
        self.cause = cause


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        warnings.warn(f"ignoring non-numeric {name}={raw!r}", stacklevel=3)
        return None


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        warnings.warn(f"ignoring non-integer {name}={raw!r}", stacklevel=3)
        return None


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_retries`` counts retries *after* the first attempt, so a
    request is executed at most ``max_retries + 1`` times.  Backoff for
    retry ``attempt`` (1-based) is ``base_delay * 2**(attempt - 1)``
    capped at ``max_delay``, then jittered by up to ``±jitter`` of
    itself.  The jitter is hashed from ``(key, attempt)`` rather than
    drawn from a global RNG: the same grid rerun sleeps the same
    amounts, and nothing perturbs any simulation seed.
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays cannot be negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry ``attempt`` (1-based) of request ``key``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(self.max_delay, self.base_delay * 2.0 ** (attempt - 1))
        if self.jitter == 0.0 or base == 0.0:
            return base
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        frac = int.from_bytes(digest[:8], "big") / float(2 ** 64)
        return base * (1.0 + self.jitter * (2.0 * frac - 1.0))


def resolve_retry(retry=None) -> RetryPolicy:
    """Retry-policy resolution: argument > ``REPRO_MAX_RETRIES`` > default."""
    if isinstance(retry, RetryPolicy):
        return retry
    env = _env_int("REPRO_MAX_RETRIES")
    if env is not None:
        return RetryPolicy(max_retries=max(0, env))
    return RetryPolicy()


def resolve_run_timeout(timeout=None) -> Optional[float]:
    """Per-run timeout: argument > ``REPRO_RUN_TIMEOUT`` > None (off)."""
    if timeout is not None:
        value = float(timeout)
        if value <= 0:
            raise ValueError("run timeout must be positive")
        return value
    env = _env_float("REPRO_RUN_TIMEOUT")
    if env is not None and env > 0:
        return env
    return None


def resolve_max_pool_rebuilds(limit=None) -> int:
    """Pool-rebuild budget: argument > ``REPRO_MAX_POOL_REBUILDS`` > default."""
    if limit is not None:
        return max(0, int(limit))
    env = _env_int("REPRO_MAX_POOL_REBUILDS")
    if env is not None:
        return max(0, env)
    return DEFAULT_MAX_POOL_REBUILDS


@dataclass(frozen=True)
class AttemptRecord:
    """One execution attempt of one request."""

    attempt: int
    #: "ok", "error", "timeout", "pool-crash", "preempted" (the pool
    #: was killed because of *another* request's timeout; does not count
    #: against this request's retry budget), or "batch-error" (the run
    #: failed inside a cross-run batch; it degrades to the per-run path
    #: with its full retry budget intact).
    kind: str
    error: str = ""
    message: str = ""
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.kind == "ok"


@dataclass
class RequestReport:
    """Everything that happened to one request during a grid."""

    index: int
    target: str
    policy: str
    attempts: List[AttemptRecord] = field(default_factory=list)
    cached: bool = False
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return (
            self.cached or self.resumed
            or any(a.ok for a in self.attempts)
        )

    @property
    def retried(self) -> bool:
        return sum(1 for a in self.attempts if a.kind != "preempted") > 1

    @property
    def error_classes(self) -> List[str]:
        return [a.error for a in self.attempts if a.error]

    @property
    def elapsed(self) -> float:
        return sum(a.elapsed for a in self.attempts)


@dataclass
class FailureReport:
    """Structured account of one :meth:`Executor.run` invocation."""

    requests: List[RequestReport] = field(default_factory=list)
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    #: Human-readable cause of each serial fallback (mirrors
    #: :attr:`SerialFallbackWarning.cause`), in occurrence order.
    serial_fallback_causes: List[str] = field(default_factory=list)
    timeouts: int = 0
    quarantined: int = 0

    @property
    def executed(self) -> int:
        return sum(
            1 for r in self.requests if not (r.cached or r.resumed)
        )

    @property
    def retried(self) -> List[RequestReport]:
        return [r for r in self.requests if r.retried]

    @property
    def failures(self) -> List[RequestReport]:
        return [r for r in self.requests if not r.ok]

    @property
    def clean(self) -> bool:
        return (
            not self.failures and not self.retried
            and self.pool_rebuilds == 0 and self.timeouts == 0
            and self.quarantined == 0
        )

    def summary(self) -> str:
        """One-line human rendering for logs and experiment footers."""
        total = len(self.requests)
        parts = [
            f"{total} requests",
            f"{self.executed} executed",
            f"{sum(1 for r in self.requests if r.cached)} cached",
        ]
        resumed = sum(1 for r in self.requests if r.resumed)
        if resumed:
            parts.append(f"{resumed} resumed")
        if self.retried:
            parts.append(f"{len(self.retried)} retried")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.pool_rebuilds:
            parts.append(f"{self.pool_rebuilds} pool rebuilds")
        if self.serial_fallbacks:
            note = f"{self.serial_fallbacks} serial fallbacks"
            if self.serial_fallback_causes:
                note += (
                    " (cause: "
                    + "; ".join(self.serial_fallback_causes) + ")"
                )
            parts.append(note)
        if self.quarantined:
            parts.append(f"{self.quarantined} cache quarantines")
        if self.failures:
            parts.append(f"{len(self.failures)} FAILED")
        return "; ".join(parts)


class Checkpoint:
    """Periodic on-disk snapshot of completed run summaries.

    Entries are keyed by run fingerprint, so resuming works even when
    the follow-up grid orders or slices its requests differently — any
    request whose fingerprint is already checkpointed is satisfied
    without executing.  Writes are atomic (temp file + ``os.replace``),
    flushed every ``interval`` recorded summaries and again by the
    executor's ``finally`` when a grid ends or is interrupted.
    A corrupt checkpoint file is moved aside and treated as empty,
    never an error.
    """

    def __init__(self, path, interval: int = 10):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.path = Path(path)
        self.interval = interval
        self._entries: Dict[str, RunSummary] = {}
        self._unflushed = 0
        self._loaded = False

    def load(self) -> Dict[str, RunSummary]:
        """Entries from disk (merged into this checkpoint's state)."""
        try:
            with open(self.path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            payload = None
        except Exception:
            self._move_aside()
            payload = None
        if (
            isinstance(payload, dict)
            and payload.get("version") == CHECKPOINT_VERSION
            and isinstance(payload.get("entries"), dict)
        ):
            for fingerprint, summary in payload["entries"].items():
                if isinstance(summary, RunSummary):
                    self._entries.setdefault(fingerprint, summary)
        elif payload is not None:
            self._move_aside()
        self._loaded = True
        return dict(self._entries)

    def record(self, fingerprint: str, summary: RunSummary) -> None:
        """Add one completed summary; flushes every ``interval`` adds."""
        self._entries[fingerprint] = summary
        self._unflushed += 1
        if self._unflushed >= self.interval:
            self.flush()

    def flush(self) -> None:
        """Write all entries to disk atomically; failures are silent
        (checkpointing is best-effort and must never kill a grid)."""
        if self._unflushed == 0 and (self._loaded or not self._entries):
            if not self._entries:
                return
        payload = {
            "version": CHECKPOINT_VERSION,
            "entries": dict(self._entries),
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(payload, fh, protocol=4)
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self._unflushed = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _move_aside(self) -> None:
        """Quarantine the corrupt checkpoint with bounded retention.

        Each corrupt file gets a distinct name (the previous behaviour
        overwrote a single ``.corrupt`` file, destroying the evidence
        of repeated corruption), and the quarantine directory is pruned
        to the newest ``REPRO_QUARANTINE_KEEP`` files so a recurring
        corruption source cannot grow it without bound.
        """
        quarantine = self.path.parent / (self.path.name + ".quarantine")
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            serial = 0
            while True:
                target = quarantine / f"corrupt-{serial:04d}"
                if not target.exists():
                    break
                serial += 1
            os.replace(self.path, target)
        except OSError:
            return
        prune_quarantine(quarantine)
        warnings.warn(
            f"repro.exec: corrupt checkpoint moved aside to {target}; "
            f"starting fresh",
            stacklevel=3,
        )


class ShmLedger:
    """Tracks every shared-memory segment name an executor issued.

    Segment names are parent-assigned *before* a worker task is
    submitted, so the set of segments that could possibly exist is
    known here regardless of how the worker ends — clean return,
    application error, chaos kill, timeout reaping, pool crash.  The
    executor releases a name as soon as its result is consumed and
    sweeps the remainder in its ``finally``, which is what guarantees
    no segment survives an :meth:`Executor.run` call.
    """

    def __init__(self):
        self._outstanding: set = set()
        self._issued: set = set()

    def issue(self, name: str) -> str:
        self._outstanding.add(name)
        self._issued.add(name)
        return name

    def release(self, name: str) -> None:
        """Unlink ``name`` (best effort) and mark it consumed.

        The name stays on the lifetime ``issued`` record: when a pool
        breaks, a sibling worker can materialise its segment *after*
        the parent released the not-yet-existing name, so the final
        :meth:`sweep` must revisit released names too.
        """
        self._outstanding.discard(name)
        from . import shm

        shm.unlink(name)

    def sweep(self) -> int:
        """Unlink every segment ever issued; returns how many existed.

        Called after the worker pool is shut down, so nothing can
        create further segments under these names.
        """
        from . import shm

        removed = 0
        for name in list(self._issued):
            if shm.unlink(name):
                removed += 1
        self._issued.clear()
        self._outstanding.clear()
        return removed

    def __len__(self) -> int:
        return len(self._outstanding)


def resolve_checkpoint(checkpoint="default") -> Optional[Checkpoint]:
    """Checkpoint resolution: argument > ``REPRO_CHECKPOINT`` > None.

    Accepts a :class:`Checkpoint`, a path, ``None`` (off), or the
    ``"default"`` sentinel which honours the environment knob.
    """
    if checkpoint is None:
        return None
    if isinstance(checkpoint, Checkpoint):
        return checkpoint
    if checkpoint == "default":
        env = os.environ.get("REPRO_CHECKPOINT", "").strip()
        return Checkpoint(env) if env else None
    return Checkpoint(checkpoint)
