"""Parallel experiment execution with run memoisation and fault tolerance.

Every paper figure is a grid of *independent* co-execution simulations,
so the evaluation harness is embarrassingly parallel across runs.  The
:class:`Executor` fans a list of :class:`~repro.exec.request.RunRequest`
objects out over a ``ProcessPoolExecutor`` and returns summaries **in
request order**, falling back to in-process serial execution whenever
``jobs == 1``, a request cannot be serialised, or the platform refuses
to give us a worker pool (sandboxes without ``/dev/shm``, missing
``fork`` …).  Each simulation is deterministic given its request, so
serial and parallel execution return identical summaries.

Requests are memoised through :class:`~repro.exec.cache.RunCache` keyed
on :meth:`RunRequest.fingerprint`; cache hits never reach the pool.

A grid survives partial failure instead of dying wholesale:

* each request gets bounded retries with exponential backoff and
  deterministic jitter (:class:`~repro.exec.fault.RetryPolicy`);
* a crashed worker (``BrokenProcessPool`` — segfault, OOM kill, chaos
  injection) rebuilds the pool and re-submits the in-flight requests,
  degrading to serial execution after ``max_pool_rebuilds`` rebuilds;
* a per-run wall-clock timeout (pool execution only — an in-process
  serial run cannot be preempted) kills the pool, requeues the
  innocent in-flight victims without charging their retry budget, and
  counts a retry against the offender;
* completed summaries are periodically checkpointed so an interrupted
  grid (``KeyboardInterrupt``, machine death) resumes from partial
  results via ``REPRO_CHECKPOINT`` / ``checkpoint=``;
* everything that happened is recorded in a structured
  :class:`~repro.exec.fault.FailureReport` exposed as
  ``executor.last_report``.

Concurrency is picked from, in order: the ``jobs`` argument, the
``REPRO_JOBS`` environment variable, and a serial default of 1.
Fault-tolerance knobs resolve the same way: constructor argument, then
``REPRO_MAX_RETRIES`` / ``REPRO_RUN_TIMEOUT`` /
``REPRO_MAX_POOL_REBUILDS`` / ``REPRO_CHECKPOINT``, then defaults.
For chaos engineering, ``REPRO_CHAOS_WORKER_CRASH_RATE`` makes workers
randomly die before executing a request (see ``docs/robustness.md``).
"""

from __future__ import annotations

import os
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from . import shm
from .batch import plan_groups, run_group
from .cache import RunCache, cache_enabled
from .fault import (
    AttemptRecord,
    Checkpoint,
    FailureReport,
    RetryPolicy,
    RunTimeoutError,
    SerialFallbackWarning,
    ShmLedger,
    resolve_checkpoint,
    resolve_max_pool_rebuilds,
    resolve_retry,
    resolve_run_timeout,
)
from .request import RunRequest, RunSummary, execute_request

#: Exceptions that mean "the pool is unusable", not "the run failed".
#: Application errors (timeouts, bad policies) propagate unchanged.
_POOL_ERRORS: tuple = (OSError, ImportError)
try:  # pragma: no cover - import layout is version-dependent
    from concurrent.futures.process import BrokenProcessPool

    _POOL_ERRORS = _POOL_ERRORS + (BrokenProcessPool,)
except ImportError:  # pragma: no cover
    BrokenProcessPool = None  # type: ignore[assignment]


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-count resolution: argument > ``REPRO_JOBS`` > 1."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring non-integer REPRO_JOBS={env!r}", stacklevel=2
            )
    return 1


def resolve_batch(batch=None) -> str:
    """Batch-mode resolution: argument > ``REPRO_BATCH`` > off.

    Returns one of ``"off"``, ``"auto"`` (pick in-process or pool-of-
    groups from the machine at run time), ``"inproc"`` (coalesce
    groups in this process) or ``"pool"`` (ship whole groups to
    workers).  The per-run paths are untouched when off, which is the
    default — batching is opt-in via ``batch=`` or ``REPRO_BATCH=1``.
    """
    if batch is None or batch is False:
        return "off"
    if batch is True:
        return "auto"
    raw = str(batch).strip().lower()
    if raw == "default":
        raw = os.environ.get("REPRO_BATCH", "").strip().lower()
    if raw in ("", "0", "off", "false", "no"):
        return "off"
    if raw in ("1", "on", "auto", "true", "yes"):
        return "auto"
    if raw in ("inproc", "pool"):
        return raw
    warnings.warn(
        f"ignoring unknown batch mode {raw!r}; batching disabled",
        stacklevel=2,
    )
    return "off"


@dataclass
class ExecutionStats:
    """Process-wide run counters (read by the benchmark timing harness)."""

    executed: int = 0
    cache_hits: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    serial_fallbacks: int = 0
    #: Runs completed through the cross-run batched SoA path, and the
    #: number of groups they were coalesced into.
    batched_runs: int = 0
    batched_groups: int = 0
    #: Parent-side serialization cost of pool execution: bytes of
    #: pickled request blobs, wall seconds spent pickling them plus
    #: decoding results, and bytes moved through shared-memory SoA
    #: segments instead of the result pipe.
    pickled_bytes: int = 0
    serialize_seconds: float = 0.0
    shm_bytes: int = 0
    #: Cause of each serial fallback, in order.  Kept out of
    #: :meth:`snapshot` deliberately: the benchmark timing harness
    #: takes numeric deltas of the snapshot keys.
    serial_fallback_causes: list = field(default_factory=list)

    def snapshot(self) -> dict:
        return {
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallbacks": self.serial_fallbacks,
            "batched_runs": self.batched_runs,
            "batched_groups": self.batched_groups,
            "pickled_bytes": self.pickled_bytes,
            "serialize_seconds": self.serialize_seconds,
            "shm_bytes": self.shm_bytes,
        }


#: Global counters across all executors in this process.
STATS = ExecutionStats()


def _chaos_crash_rate() -> float:
    """Probability a worker dies before running a request (chaos knob)."""
    raw = os.environ.get("REPRO_CHAOS_WORKER_CRASH_RATE", "").strip()
    if not raw:
        return 0.0
    try:
        rate = float(raw)
    except ValueError:
        return 0.0
    return min(1.0, max(0.0, rate))


def _maybe_chaos_crash() -> None:
    """Hard-kill this worker with probability REPRO_CHAOS_WORKER_CRASH_RATE.

    Uses ``SystemRandom`` so forked workers do not inherit correlated
    RNG state, and ``os._exit`` so the death looks like a real segfault
    or OOM kill (no exception, no cleanup, pool goes broken).  Crashing
    *before* deserialising the request means a retried run replays
    identically — chaos never perturbs simulation determinism.
    """
    rate = _chaos_crash_rate()
    if rate <= 0.0:
        return
    import random

    if random.SystemRandom().random() < rate:
        os._exit(17)


def _execute_blob(blob: bytes) -> RunSummary:
    """Worker entry point: deserialise one request and run it."""
    import cloudpickle

    _maybe_chaos_crash()
    request = cloudpickle.loads(blob)
    return execute_request(request)


def _execute_blob_shm(blob: bytes, shm_name: str):
    """Worker entry point with shared-memory result transport.

    The summary's decision streams are written into the parent-assigned
    segment ``shm_name`` as SoA blocks; only the tiny descriptor tuple
    travels back through the result pipe.  If the segment cannot be
    written (exotic platform, size race) the summary falls back to the
    classic pickled return — the parent handles both shapes.
    """
    summary = _execute_blob(blob)
    try:
        nbytes = shm.encode_summaries([summary], shm_name)
    except Exception:
        return summary
    return ("shm", shm_name, 1, nbytes)


def _execute_group_blob(blob: bytes, shm_name: Optional[str]):
    """Worker entry point for one batched group of requests.

    Chaos exposure is charged once per member (a group of N runs the
    same worker-crash gauntlet N independent runs would).  Returns
    ``(transport, meta, payload)`` where ``meta`` lists
    ``(position, ok, error_class, error_message, elapsed)`` per member
    and the payload carries the successful summaries — through the
    shared-memory segment when possible, pickled otherwise.
    """
    import cloudpickle

    requests = cloudpickle.loads(blob)
    for _ in requests:
        _maybe_chaos_crash()
    outcomes = run_group(requests)
    meta = [
        (
            outcome.position,
            outcome.ok,
            type(outcome.error).__name__ if outcome.error else "",
            str(outcome.error)[:200] if outcome.error else "",
            outcome.elapsed,
        )
        for outcome in outcomes
    ]
    summaries = [o.summary for o in outcomes if o.ok]
    if shm_name and summaries:
        try:
            nbytes = shm.encode_summaries(summaries, shm_name)
        except Exception:
            pass
        else:
            return ("shm", meta, (shm_name, len(summaries), nbytes))
    return ("pickle", meta, summaries)


def _normalize_outcomes(outcomes) -> list:
    """Flatten in-process :class:`MemberOutcome`s to transport tuples."""
    return [
        (
            outcome.ok,
            outcome.summary,
            type(outcome.error).__name__ if outcome.error else "",
            str(outcome.error)[:200] if outcome.error else "",
            outcome.elapsed,
        )
        for outcome in outcomes
    ]


class _PoolBroken(Exception):
    """Internal marker: the current pool crashed; rebuild and resume."""

    def __init__(self, cause: BaseException):
        super().__init__(str(cause))
        self.cause = cause


@dataclass
class Executor:
    """Runs request batches, parallel when asked, memoised when possible.

    ``cache`` may be a :class:`RunCache`, ``None`` (no memoisation), or
    the default sentinel which honours ``REPRO_RUN_CACHE`` /
    ``REPRO_CACHE_DIR``.  ``retry``, ``run_timeout``, ``checkpoint``
    and ``max_pool_rebuilds`` accept explicit values, ``None`` (retry:
    env default; run_timeout/checkpoint: feature off), or the
    ``"default"`` sentinel which honours the matching ``REPRO_*``
    environment knob.
    """

    jobs: Optional[int] = None
    cache: Union[RunCache, None, str] = "default"
    retry: Union[RetryPolicy, None, str] = "default"
    run_timeout: Union[float, None, str] = "default"
    checkpoint: Union[Checkpoint, str, None] = "default"
    max_pool_rebuilds: Optional[int] = None
    #: Cross-run batching mode: ``"default"`` honours ``REPRO_BATCH``,
    #: else ``"off"``/``"auto"``/``"inproc"``/``"pool"`` (see
    #: :func:`resolve_batch`).  Physics is bit-identical in every mode.
    batch: Union[str, None, bool] = "default"
    last_report: Optional[FailureReport] = field(
        default=None, init=False, repr=False
    )
    _warned: bool = field(default=False, init=False, repr=False)
    _shm_ledger: ShmLedger = field(
        default_factory=ShmLedger, init=False, repr=False
    )

    def __post_init__(self) -> None:
        self.jobs = resolve_jobs(self.jobs)
        if self.cache == "default":
            self.cache = RunCache() if cache_enabled() else None
        if not isinstance(self.retry, RetryPolicy):
            self.retry = resolve_retry(None)
        if self.run_timeout == "default":
            self.run_timeout = resolve_run_timeout(None)
        elif self.run_timeout is not None:
            self.run_timeout = resolve_run_timeout(self.run_timeout)
        self.checkpoint = resolve_checkpoint(self.checkpoint)
        self.max_pool_rebuilds = resolve_max_pool_rebuilds(
            self.max_pool_rebuilds
        )
        self.batch = resolve_batch(self.batch)

    def run(self, requests: Sequence[RunRequest]) -> List[RunSummary]:
        """Execute ``requests``; summaries come back in request order."""
        requests = list(requests)
        report = FailureReport()
        self.last_report = report
        for index, request in enumerate(requests):
            report.requests.append(
                _request_report(index, request)
            )
        results: List[Optional[RunSummary]] = [None] * len(requests)
        fingerprints: List[Optional[str]] = [None] * len(requests)

        checkpoint = self.checkpoint
        resumed: Dict[str, RunSummary] = (
            checkpoint.load() if checkpoint is not None else {}
        )
        quarantined_before = (
            self.cache.quarantined if self.cache is not None else 0
        )

        pending: List[int] = []
        for index, request in enumerate(requests):
            fingerprint = None
            if self.cache is not None or checkpoint is not None:
                fingerprint = request.fingerprint()
            fingerprints[index] = fingerprint
            if fingerprint is not None and fingerprint in resumed:
                results[index] = resumed[fingerprint]
                report.requests[index].resumed = True
                continue
            cached = None
            if fingerprint is not None and self.cache is not None:
                cached = self.cache.get(fingerprint)
            if cached is not None:
                results[index] = cached
                report.requests[index].cached = True
                STATS.cache_hits += 1
            else:
                pending.append(index)

        try:
            if pending and self.batch != "off":
                pending = self._run_batched(
                    requests, pending, fingerprints, results, report
                )
            if pending:
                if self.jobs > 1 and len(pending) > 1:
                    self._run_parallel(
                        requests, pending, fingerprints, results, report
                    )
                else:
                    self._run_serial(
                        requests, pending, fingerprints, results, report
                    )
        finally:
            self._shm_ledger.sweep()
            if checkpoint is not None:
                checkpoint.flush()
            if self.cache is not None:
                report.quarantined = (
                    self.cache.quarantined - quarantined_before
                )
        return results  # type: ignore[return-value]

    # -- internals --------------------------------------------------------

    def _complete(
        self,
        index: int,
        summary: RunSummary,
        fingerprints: List[Optional[str]],
        results: List[Optional[RunSummary]],
    ) -> None:
        results[index] = summary
        STATS.executed += 1
        fingerprint = fingerprints[index]
        if fingerprint:
            if self.cache is not None:
                self.cache.put(fingerprint, summary)
            if self.checkpoint is not None:
                self.checkpoint.record(fingerprint, summary)

    def _run_serial(
        self,
        requests: List[RunRequest],
        pending: List[int],
        fingerprints: List[Optional[str]],
        results: List[Optional[RunSummary]],
        report: FailureReport,
    ) -> None:
        for index in pending:
            summary = self._run_one_with_retry(
                requests[index],
                report.requests[index],
                fingerprints[index] or f"#{index}",
            )
            self._complete(index, summary, fingerprints, results)

    # -- cross-run batching ------------------------------------------------

    def _batch_mode(self) -> str:
        """Concretise ``"auto"``: pool-of-groups only helps with real
        spare cores; on a single-CPU machine (or a serial executor) the
        in-process coalesced path is strictly better — no pool setup,
        no transport, same batched kernels."""
        if self.batch != "auto":
            return self.batch
        if self.jobs > 1 and (os.cpu_count() or 1) > 1:
            return "pool"
        return "inproc"

    def _run_batched(
        self, requests, pending, fingerprints, results, report,
    ) -> List[int]:
        """Run vectorizable groups through the batched SoA path.

        Returns the indices still pending afterwards: stragglers that
        never grouped plus any member whose batch attempt failed —
        those degrade (alone) to the proven per-run retry machinery.
        The batch attempt is recorded but never charged against the
        retry budget.
        """
        mode = self._batch_mode()
        max_group = None
        if mode == "pool":
            # Enough groups to occupy every worker, when the buckets
            # allow it.
            import math

            max_group = max(2, math.ceil(len(pending) / self.jobs))
        groups, stragglers = plan_groups(
            requests, pending, max_group=max_group
        )
        if not groups:
            return pending
        remaining = list(stragglers)
        STATS.batched_groups += len(groups)
        if mode == "pool":
            group_results = self._run_groups_pool(requests, groups)
        else:
            group_results = [
                (indices,
                 _normalize_outcomes(run_group(
                     [requests[i] for i in indices]
                 )))
                for indices in groups
            ]
        for indices, outcomes in group_results:
            if outcomes is None:
                # Whole-group transport/pool failure: every member
                # degrades to the per-run path, uncharged.
                remaining.extend(indices)
                continue
            for index, outcome in zip(indices, outcomes):
                ok, summary, error_class, error_message, elapsed = (
                    outcome
                )
                req_report = report.requests[index]
                if ok:
                    req_report.attempts.append(AttemptRecord(
                        attempt=1,
                        kind="ok",
                        message=f"batched group of {len(indices)}",
                        elapsed=elapsed,
                    ))
                    STATS.batched_runs += 1
                    self._complete(
                        index, summary, fingerprints, results
                    )
                else:
                    req_report.attempts.append(AttemptRecord(
                        attempt=1,
                        kind="batch-error",
                        error=error_class,
                        message=error_message,
                        elapsed=elapsed,
                    ))
                    remaining.append(index)
        remaining.sort()
        return remaining

    def _run_groups_pool(self, requests, groups):
        """Ship each group to a worker; one shm segment per group.

        Deliberately simpler than :meth:`_pump_pool`: any pool-level
        failure (crash, timeout, unserialisable group) degrades the
        affected groups wholesale to the per-run machinery — which owns
        rebuild budgets and per-run timeouts — instead of duplicating
        that logic here.  Returns ``(indices, outcomes-or-None)`` per
        group, where outcomes are normalized member tuples.
        """
        import multiprocessing
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures import ProcessPoolExecutor

        results = []
        use_shm = shm.shm_enabled()
        try:
            import cloudpickle

            started_pickle = time.perf_counter()
            blobs = []
            for indices in groups:
                blob = cloudpickle.dumps(
                    [requests[i] for i in indices], protocol=4
                )
                STATS.pickled_bytes += len(blob)
                blobs.append(blob)
            STATS.serialize_seconds += (
                time.perf_counter() - started_pickle
            )
            context = multiprocessing.get_context("fork")
        except Exception:
            return [(indices, None) for indices in groups]

        workers = min(self.jobs, len(groups))
        in_flight = {}
        outcome_map: Dict[int, Optional[list]] = {}
        try:
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                for position, indices in enumerate(groups):
                    name = None
                    if use_shm:
                        name = self._shm_ledger.issue(
                            shm.segment_name()
                        )
                    future = pool.submit(
                        _execute_group_blob, blobs[position], name
                    )
                    in_flight[future] = (
                        position, name, time.monotonic(),
                        len(groups[position]),
                    )
                while in_flight:
                    timeout = None
                    if self.run_timeout is not None:
                        deadline = min(
                            started + self.run_timeout * size
                            for _, _, started, size in in_flight.values()
                        )
                        timeout = max(0.0, deadline - time.monotonic())
                    done, _ = wait(
                        set(in_flight), timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    if not done:
                        # A group overran its collective deadline;
                        # degrade everything still in flight and let
                        # the per-run path enforce real timeouts.
                        break
                    for future in done:
                        position, name, _, _ = in_flight.pop(future)
                        outcome_map[position] = self._collect_group(
                            future, name
                        )
        except Exception:
            pass
        finally:
            for future, (position, name, _, _) in in_flight.items():
                future.cancel()
                if name is not None:
                    self._shm_ledger.release(name)
                outcome_map.setdefault(position, None)
        for position, indices in enumerate(groups):
            results.append((indices, outcome_map.get(position)))
        return results

    def _collect_group(self, future, name):
        """Decode one finished group future; ``None`` = degrade whole
        group."""
        try:
            transport, meta, payload = future.result()
            if transport == "shm":
                shm_name, count, nbytes = payload
                started = time.perf_counter()
                summaries = shm.decode_summaries(shm_name)
                STATS.serialize_seconds += (
                    time.perf_counter() - started
                )
                STATS.shm_bytes += nbytes
                if len(summaries) != count:
                    return None
            else:
                summaries = payload
        except Exception:
            return None
        finally:
            if name is not None:
                self._shm_ledger.release(name)
        outcomes = []
        cursor = 0
        for position, ok, error_class, error_message, elapsed in meta:
            summary = None
            if ok:
                summary = summaries[cursor]
                cursor += 1
            outcomes.append(
                (ok, summary, error_class, error_message, elapsed)
            )
        return outcomes

    def _run_one_with_retry(self, request, req_report, key: str):
        retry: RetryPolicy = self.retry  # type: ignore[assignment]
        attempt = 0
        while True:
            attempt += 1
            started = time.monotonic()
            try:
                summary = execute_request(request)
            except Exception as error:
                elapsed = time.monotonic() - started
                req_report.attempts.append(AttemptRecord(
                    attempt=attempt,
                    kind="error",
                    error=type(error).__name__,
                    message=str(error)[:200],
                    elapsed=elapsed,
                ))
                if attempt > retry.max_retries:
                    raise
                STATS.retries += 1
                delay = retry.delay(attempt, key)
                if delay > 0:
                    time.sleep(delay)
            else:
                req_report.attempts.append(AttemptRecord(
                    attempt=attempt,
                    kind="ok",
                    elapsed=time.monotonic() - started,
                ))
                return summary

    def _run_parallel(
        self,
        requests: List[RunRequest],
        pending: List[int],
        fingerprints: List[Optional[str]],
        results: List[Optional[RunSummary]],
        report: FailureReport,
    ) -> None:
        blobs: Dict[int, bytes] = {}
        try:
            import cloudpickle

            started = time.perf_counter()
            for index in pending:
                blob = cloudpickle.dumps(requests[index], protocol=4)
                STATS.pickled_bytes += len(blob)
                blobs[index] = blob
            STATS.serialize_seconds += time.perf_counter() - started
        except Exception as error:
            self._fall_back_serial(
                requests, pending, fingerprints, results, report,
                f"requests not serialisable ({error!r})", error,
            )
            return
        try:
            self._pump_pool(
                requests, pending, blobs, fingerprints, results, report
            )
        except _POOL_ERRORS as error:
            remaining = [i for i in pending if results[i] is None]
            self._fall_back_serial(
                requests, remaining, fingerprints, results, report,
                f"worker pool unavailable ({error!r})", error,
            )

    def _fall_back_serial(
        self, requests, pending, fingerprints, results, report,
        reason: str, cause: Optional[BaseException],
    ) -> None:
        self._warn_serial(reason, cause)
        STATS.serial_fallbacks += 1
        STATS.serial_fallback_causes.append(reason)
        report.serial_fallbacks += 1
        report.serial_fallback_causes.append(reason)
        self._run_serial(requests, pending, fingerprints, results, report)

    def _pump_pool(
        self,
        requests: List[RunRequest],
        pending: List[int],
        blobs: Dict[int, bytes],
        fingerprints: List[Optional[str]],
        results: List[Optional[RunSummary]],
        report: FailureReport,
    ) -> None:
        import multiprocessing
        from concurrent.futures import (
            FIRST_COMPLETED,
            ProcessPoolExecutor,
            wait,
        )

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = None
        workers = min(self.jobs, len(pending))
        retry: RetryPolicy = self.retry  # type: ignore[assignment]

        def make_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            )

        queue = deque(pending)
        use_shm = shm.shm_enabled()
        #: monotonic instant before which an index must not resubmit
        #: (retry backoff); absent means ready now.
        ready_at: Dict[int, float] = {}
        #: counted execution attempts per index ("preempted" re-runs
        #: caused by another request's timeout are not counted).
        attempts: Dict[int, int] = {index: 0 for index in pending}
        rebuilds = 0
        pool = make_pool()
        in_flight: Dict[object, tuple] = {}
        #: Every worker process ever observed, across rebuilds.  After
        #: a pool breaks, ``pool._processes`` may already be cleared by
        #: the manager thread, so teardown joins this snapshot instead:
        #: a dying worker must be *gone* before the shared-memory sweep
        #: runs, or it could materialise a segment after the sweep.
        worker_procs: Dict[int, object] = {}
        clean_exit = False
        try:
            while queue or in_flight:
                try:
                    current_procs = getattr(pool, "_processes", None)
                    if current_procs:
                        worker_procs.update(current_procs)
                    now = time.monotonic()
                    deferred = []
                    while queue and len(in_flight) < workers:
                        index = queue.popleft()
                        if ready_at.get(index, 0.0) > now:
                            deferred.append(index)
                            continue
                        attempts[index] += 1
                        shm_name = None
                        if use_shm:
                            shm_name = self._shm_ledger.issue(
                                shm.segment_name()
                            )
                        try:
                            if shm_name is not None:
                                future = pool.submit(
                                    _execute_blob_shm, blobs[index],
                                    shm_name,
                                )
                            else:
                                future = pool.submit(
                                    _execute_blob, blobs[index]
                                )
                        except _POOL_ERRORS as error:
                            # The pool broke between collections; the
                            # rejected submission is charged like a
                            # crashed future and the rebuild path takes
                            # over.
                            if shm_name is not None:
                                self._shm_ledger.release(shm_name)
                            queue.extend(deferred)
                            req_report = report.requests[index]
                            req_report.attempts.append(AttemptRecord(
                                attempt=attempts[index],
                                kind="pool-crash",
                                error=type(error).__name__,
                                message=str(error)[:200],
                            ))
                            self._retry_or_raise(
                                index, attempts, ready_at, queue,
                                error, req_report,
                            )
                            raise _PoolBroken(error) from error
                        in_flight[future] = (
                            index, time.monotonic(), shm_name
                        )
                    queue.extend(deferred)
                    # Workers spawn lazily inside submit(); re-snapshot
                    # after the submission loop so a pool that spawns
                    # and breaks within one iteration leaves no
                    # unobserved (hence unreapable) straggler.
                    current_procs = getattr(pool, "_processes", None)
                    if current_procs:
                        worker_procs.update(current_procs)

                    if not in_flight:
                        # Everything runnable is backing off; sleep
                        # until the earliest retry becomes ready.
                        soonest = min(
                            ready_at.get(index, 0.0) for index in queue
                        )
                        pause = soonest - time.monotonic()
                        if pause > 0:
                            time.sleep(pause)
                        continue

                    timeout = None
                    if self.run_timeout is not None:
                        deadline = min(
                            started + self.run_timeout
                            for _, started, _ in in_flight.values()
                        )
                        timeout = max(0.0, deadline - time.monotonic())
                    if queue and len(in_flight) < workers:
                        soonest = min(
                            ready_at.get(index, 0.0) for index in queue
                        )
                        wake = max(0.0, soonest - time.monotonic())
                        timeout = wake if timeout is None else min(
                            timeout, wake
                        )
                    done, _ = wait(
                        set(in_flight), timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )

                    for future in done:
                        index, started, shm_name = in_flight.pop(future)
                        self._collect(
                            future, index, started, shm_name, attempts,
                            ready_at, queue, fingerprints, results,
                            report,
                        )
                except _PoolBroken as broken:
                    current_procs = getattr(pool, "_processes", None)
                    if current_procs:
                        worker_procs.update(current_procs)
                    rebuilds += 1
                    STATS.pool_rebuilds += 1
                    report.pool_rebuilds += 1
                    self._requeue_crashed(
                        in_flight, attempts, ready_at, queue, report,
                        broken.cause,
                    )
                    self._kill_pool(pool)
                    self._reap_stragglers(worker_procs)
                    if rebuilds > self.max_pool_rebuilds:
                        remaining = [
                            i for i in pending if results[i] is None
                        ]
                        self._fall_back_serial(
                            requests, remaining, fingerprints, results,
                            report,
                            f"worker pool crashed {rebuilds} times "
                            f"({broken.cause!r})",
                            broken.cause,
                        )
                        clean_exit = True
                        return
                    pool = make_pool()
                    continue

                if self.run_timeout is not None and in_flight:
                    pool = self._reap_timeouts(
                        pool, make_pool, in_flight, attempts, ready_at,
                        queue, report, requests, retry,
                    )
            clean_exit = True
        finally:
            if clean_exit:
                pool.shutdown(wait=True)
            else:
                self._kill_pool(pool)
            self._reap_stragglers(worker_procs)

    def _collect(
        self, future, index, started, shm_name, attempts, ready_at,
        queue, fingerprints, results, report,
    ) -> None:
        """Fold one finished future into results / retry queue.

        Whatever the outcome — decoded summary, application error,
        pool crash about to be re-raised — the request's shared-memory
        segment is released: a resubmission always gets a fresh name.
        """
        try:
            self._collect_result(
                future, index, started, attempts, ready_at, queue,
                fingerprints, results, report,
            )
        finally:
            if shm_name is not None:
                self._shm_ledger.release(shm_name)

    def _collect_result(
        self, future, index, started, attempts, ready_at, queue,
        fingerprints, results, report,
    ) -> None:
        retry: RetryPolicy = self.retry  # type: ignore[assignment]
        elapsed = time.monotonic() - started
        req_report = report.requests[index]
        try:
            summary = future.result()
            if (
                isinstance(summary, tuple) and len(summary) == 4
                and summary[0] == "shm"
            ):
                _, name, _count, nbytes = summary
                decode_started = time.perf_counter()
                summary = shm.decode_summaries(name)[0]
                STATS.serialize_seconds += (
                    time.perf_counter() - decode_started
                )
                STATS.shm_bytes += nbytes
        except Exception as error:
            if BrokenProcessPool is not None and isinstance(
                error, BrokenProcessPool
            ):
                # The pool died under this future; hand the crash to
                # the rebuild path with this index still charged.
                req_report.attempts.append(AttemptRecord(
                    attempt=attempts[index],
                    kind="pool-crash",
                    error=type(error).__name__,
                    message=str(error)[:200],
                    elapsed=elapsed,
                ))
                self._retry_or_raise(
                    index, attempts, ready_at, queue, error, req_report
                )
                raise _PoolBroken(error) from error
            req_report.attempts.append(AttemptRecord(
                attempt=attempts[index],
                kind="error",
                error=type(error).__name__,
                message=str(error)[:200],
                elapsed=elapsed,
            ))
            self._retry_or_raise(
                index, attempts, ready_at, queue, error, req_report
            )
            return
        req_report.attempts.append(AttemptRecord(
            attempt=attempts[index], kind="ok", elapsed=elapsed,
        ))
        self._complete(index, summary, fingerprints, results)

    def _retry_or_raise(
        self, index, attempts, ready_at, queue, error, req_report
    ) -> None:
        retry: RetryPolicy = self.retry  # type: ignore[assignment]
        if attempts[index] > retry.max_retries:
            if BrokenProcessPool is not None and isinstance(
                error, BrokenProcessPool
            ):
                raise RuntimeError(
                    f"request {req_report.target}/{req_report.policy} "
                    f"crashed the worker pool on all "
                    f"{attempts[index]} attempts"
                ) from error
            raise error
        STATS.retries += 1
        ready_at[index] = time.monotonic() + retry.delay(
            attempts[index], f"#{index}"
        )
        queue.append(index)

    def _requeue_crashed(
        self, in_flight, attempts, ready_at, queue, report, cause
    ) -> None:
        """After a pool crash, recycle every in-flight request."""
        for future, (index, started, shm_name) in list(
            in_flight.items()
        ):
            if shm_name is not None:
                self._shm_ledger.release(shm_name)
            elapsed = time.monotonic() - started
            req_report = report.requests[index]
            req_report.attempts.append(AttemptRecord(
                attempt=attempts[index],
                kind="pool-crash",
                error=type(cause).__name__,
                message=str(cause)[:200],
                elapsed=elapsed,
            ))
            self._retry_or_raise(
                index, attempts, ready_at, queue, cause, req_report
            )
        in_flight.clear()

    def _reap_timeouts(
        self, pool, make_pool, in_flight, attempts, ready_at, queue,
        report, requests, retry,
    ):
        """Kill the pool if any in-flight run exceeded its deadline.

        Killing worker processes is the only way to preempt a hung
        simulation.  The timed-out requests burn one retry each; the
        other in-flight requests are innocent victims — requeued with
        a "preempted" attempt record that does not count against their
        budget.  The rebuild does not count toward
        ``max_pool_rebuilds`` either: the pool did not crash, we shot
        it.
        """
        now = time.monotonic()
        expired = {
            future: entry
            for future, entry in in_flight.items()
            if now - entry[1] >= self.run_timeout
        }
        if not expired:
            return pool
        for future, (index, started, shm_name) in expired.items():
            del in_flight[future]
            if shm_name is not None:
                self._shm_ledger.release(shm_name)
            elapsed = now - started
            req_report = report.requests[index]
            req_report.attempts.append(AttemptRecord(
                attempt=attempts[index],
                kind="timeout",
                error="RunTimeoutError",
                message=f"exceeded run_timeout={self.run_timeout:.3f}s",
                elapsed=elapsed,
            ))
            STATS.timeouts += 1
            report.timeouts += 1
            if attempts[index] > retry.max_retries:
                self._kill_pool(pool)
                raise RunTimeoutError(
                    f"request {req_report.target}/{req_report.policy} "
                    f"timed out after {elapsed:.3f}s on attempt "
                    f"{attempts[index]} "
                    f"(run_timeout={self.run_timeout:.3f}s)"
                )
            STATS.retries += 1
            ready_at[index] = time.monotonic() + retry.delay(
                attempts[index], f"#{index}"
            )
            queue.append(index)
        for future, (index, started, shm_name) in list(
            in_flight.items()
        ):
            if shm_name is not None:
                self._shm_ledger.release(shm_name)
            req_report = report.requests[index]
            req_report.attempts.append(AttemptRecord(
                attempt=attempts[index],
                kind="preempted",
                elapsed=now - started,
            ))
            attempts[index] -= 1  # not this request's fault
            queue.append(index)
        in_flight.clear()
        self._kill_pool(pool)
        return make_pool()

    @staticmethod
    def _reap_stragglers(
        procs: Dict[int, object], timeout: float = 5.0
    ) -> None:
        """SIGKILL any observed worker process still alive.

        When a pool breaks, ``pool._processes`` may already be cleared,
        so :meth:`_kill_pool` cannot reach the workers — and on a busy
        machine a descheduled straggler can outlive the whole run and
        materialise its shared-memory result segment *after* the
        ledger sweep.  Killing (not terminating: SIGKILL acts even on
        a descheduled process) every straggler and joining it makes
        the sweep that follows authoritative.
        """
        deadline = time.monotonic() + timeout
        stragglers = []
        for process in list(procs.values()):
            try:
                if not process.is_alive():
                    continue
                process.kill()
                stragglers.append(process)
            except Exception:  # pragma: no cover - racing process death
                pass
        for process in stragglers:
            try:
                process.join(timeout=max(0.0, deadline - time.monotonic()))
            except Exception:  # pragma: no cover - racing process death
                pass

    @staticmethod
    def _kill_pool(pool) -> None:
        """Terminate a pool's workers without waiting on hung tasks.

        After SIGTERM, each worker gets a short grace join so the
        shared-memory sweep that follows pool teardown cannot race a
        dying worker still materialising its result segment.
        """
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - racing process death
                pass
        for process in list(processes.values()):
            try:
                process.join(timeout=0.5)
            except Exception:  # pragma: no cover - racing process death
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - pool already broken
            pass

    def _warn_serial(
        self, reason: str, cause: Optional[BaseException] = None
    ) -> None:
        if not self._warned:
            self._warned = True
            warnings.warn(
                SerialFallbackWarning(
                    "repro.exec: falling back to serial execution: "
                    f"{reason}",
                    cause,
                ),
                stacklevel=3,
            )


def _request_report(index: int, request):
    from .fault import RequestReport

    policy = getattr(request, "policy", None)
    return RequestReport(
        index=index,
        target=str(getattr(request, "target", "?")),
        policy=str(getattr(policy, "label", policy)),
    )
