"""Parallel experiment execution with run memoisation.

Every paper figure is a grid of *independent* co-execution simulations,
so the evaluation harness is embarrassingly parallel across runs.  The
:class:`Executor` fans a list of :class:`~repro.exec.request.RunRequest`
objects out over a ``ProcessPoolExecutor`` and returns summaries **in
request order**, falling back to in-process serial execution whenever
``jobs == 1``, a request cannot be serialised, or the platform refuses
to give us a worker pool (sandboxes without ``/dev/shm``, missing
``fork`` …).  Each simulation is deterministic given its request, so
serial and parallel execution return identical summaries.

Requests are memoised through :class:`~repro.exec.cache.RunCache` keyed
on :meth:`RunRequest.fingerprint`; cache hits never reach the pool.

Concurrency is picked from, in order: the ``jobs`` argument, the
``REPRO_JOBS`` environment variable, and a serial default of 1.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from .cache import RunCache, cache_enabled
from .request import RunRequest, RunSummary, execute_request

#: Exceptions that mean "the pool is unusable", not "the run failed".
#: Application errors (timeouts, bad policies) propagate unchanged.
_POOL_ERRORS: tuple = (OSError, ImportError)
try:  # pragma: no cover - import layout is version-dependent
    from concurrent.futures.process import BrokenProcessPool

    _POOL_ERRORS = _POOL_ERRORS + (BrokenProcessPool,)
except ImportError:  # pragma: no cover
    pass


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker-count resolution: argument > ``REPRO_JOBS`` > 1."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring non-integer REPRO_JOBS={env!r}", stacklevel=2
            )
    return 1


@dataclass
class ExecutionStats:
    """Process-wide run counters (read by the benchmark timing harness)."""

    executed: int = 0
    cache_hits: int = 0

    def snapshot(self) -> dict:
        return {"executed": self.executed, "cache_hits": self.cache_hits}


#: Global counters across all executors in this process.
STATS = ExecutionStats()


def _execute_blob(blob: bytes) -> RunSummary:
    """Worker entry point: deserialise one request and run it."""
    import cloudpickle

    request = cloudpickle.loads(blob)
    return execute_request(request)


@dataclass
class Executor:
    """Runs request batches, parallel when asked, memoised when possible.

    ``cache`` may be a :class:`RunCache`, ``None`` (no memoisation), or
    the default sentinel which honours ``REPRO_RUN_CACHE`` /
    ``REPRO_CACHE_DIR``.
    """

    jobs: Optional[int] = None
    cache: Union[RunCache, None, str] = "default"
    _warned: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        self.jobs = resolve_jobs(self.jobs)
        if self.cache == "default":
            self.cache = RunCache() if cache_enabled() else None

    def run(self, requests: Sequence[RunRequest]) -> List[RunSummary]:
        """Execute ``requests``; summaries come back in request order."""
        requests = list(requests)
        results: List[Optional[RunSummary]] = [None] * len(requests)
        fingerprints: List[Optional[str]] = [None] * len(requests)
        pending: List[int] = []
        for index, request in enumerate(requests):
            cached = None
            if self.cache is not None:
                fingerprints[index] = request.fingerprint()
                if fingerprints[index] is not None:
                    cached = self.cache.get(fingerprints[index])
            if cached is not None:
                results[index] = cached
                STATS.cache_hits += 1
            else:
                pending.append(index)

        if pending:
            to_run = [requests[i] for i in pending]
            if self.jobs > 1 and len(to_run) > 1:
                summaries = self._run_parallel(to_run)
            else:
                summaries = [execute_request(r) for r in to_run]
            for index, summary in zip(pending, summaries):
                results[index] = summary
                STATS.executed += 1
                if self.cache is not None and fingerprints[index]:
                    self.cache.put(fingerprints[index], summary)
        return results  # type: ignore[return-value]

    # -- internals --------------------------------------------------------

    def _run_parallel(
        self, requests: List[RunRequest]
    ) -> List[RunSummary]:
        blobs = self._serialise(requests)
        if blobs is None:
            return [execute_request(r) for r in requests]
        try:
            return self._map_pool(blobs)
        except _POOL_ERRORS as error:
            self._warn_serial(f"worker pool unavailable ({error!r})")
            return [execute_request(r) for r in requests]

    def _serialise(
        self, requests: List[RunRequest]
    ) -> Optional[List[bytes]]:
        try:
            import cloudpickle

            return [cloudpickle.dumps(r, protocol=4) for r in requests]
        except Exception as error:
            self._warn_serial(f"requests not serialisable ({error!r})")
            return None

    def _map_pool(self, blobs: List[bytes]) -> List[RunSummary]:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = None
        workers = min(self.jobs, len(blobs))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = [pool.submit(_execute_blob, blob) for blob in blobs]
            return [future.result() for future in futures]

    def _warn_serial(self, reason: str) -> None:
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"repro.exec: falling back to serial execution: {reason}",
                stacklevel=3,
            )
