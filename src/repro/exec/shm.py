"""Shared-memory SoA transport for run summaries.

The classic process-pool result path pickles every
:class:`~repro.exec.request.RunSummary` in the worker and unpickles it
in the parent — byte-copied through a pipe, object-decoded twice.  The
bulk of a summary is its *decision streams* (the selection log and, on
recording runs, the feature records), which are homogeneous and pack
naturally into flat arrays.  This module writes them as
structure-of-arrays blocks in a ``multiprocessing.shared_memory``
segment instead: the worker lays the streams out once, the parent maps
the segment and reconstructs summaries from array views — no pipe
traffic proportional to the stream length, no second pickling pass.

Layout of a segment::

    [8-byte big-endian header length][pickled header][pad to 8][arrays]

The header carries the per-summary scalars verbatim (pickled, so types
round-trip exactly), the string vocabulary, the stream lengths and the
array descriptors ``(key, dtype, count, offset)``.  The streams store
``float64``/``int64`` columns plus vocabulary indices for the string
fields; ``float64`` round-trips every IEEE double bit-exactly, so a
decoded summary compares equal to the pickled original.

Naming and cleanup discipline: the **parent** assigns segment names
(:func:`segment_name`) *before* submitting work and tracks them in a
:class:`~repro.exec.fault.ShmLedger`; the worker creates the segment,
writes, and never unlinks.  Whatever happens to the worker — clean
return, exception, chaos kill, timeout reaping — the parent can always
sweep the names it issued (:func:`unlink`), so no segment outlives the
executor call.  Attach-side resource-tracker registration (a Python <
3.13 quirk that would otherwise double-unlink) is undone defensively.
"""

from __future__ import annotations

import os
import pickle
import struct
from typing import List, Optional, Sequence

import numpy as np

#: Bump when the segment layout changes; decoders reject other versions.
SHM_FORMAT_VERSION = 1

_HEADER_LEN = struct.Struct(">Q")


def shm_available() -> bool:
    """Whether POSIX shared memory actually works here (memoised).

    Sandboxes without ``/dev/shm`` raise on segment creation; probe
    once with a minimal segment instead of failing per run.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


_AVAILABLE: Optional[bool] = None


def shm_enabled() -> bool:
    """``REPRO_SHM`` knob (default on) AND platform support."""
    raw = os.environ.get("REPRO_SHM", "").strip().lower()
    if raw in ("0", "off", "false", "no"):
        return False
    return shm_available()


_COUNTER = 0


def segment_name() -> str:
    """A fresh parent-assigned segment name (``repro-<pid>-<n>``)."""
    global _COUNTER
    _COUNTER += 1
    return f"repro-{os.getpid()}-{_COUNTER}"


def _attach(name: str):
    """Attach to an existing segment without tracker double-counting.

    Python 3.13 made attachments register with the resource tracker by
    default (``track=True``), which would double-unlink here — the
    creator's registration, shared through the fork-inherited tracker
    process, is the one :func:`unlink` consumes.  Pass ``track=False``
    where supported; earlier versions never tracked attachments.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


def _unlink_raw(name: str) -> bool:
    """Remove segment ``name`` at the POSIX level, bypassing mmap.

    A worker killed between ``shm_open`` and ``ftruncate`` leaves a
    *torn* zero-byte segment that :class:`SharedMemory` cannot attach
    to (mapping an empty file raises), so the high-level unlink path
    would mistake it for a missing segment and leak it forever.
    """
    try:
        import _posixshmem
    except ImportError:  # pragma: no cover - non-POSIX platform
        return False
    try:
        _posixshmem.shm_unlink("/" + name)
    except FileNotFoundError:
        return False
    except Exception:  # pragma: no cover - permission races
        return False
    return True


def unlink(name: str) -> bool:
    """Best-effort removal of segment ``name``; True if it existed."""
    try:
        segment = _attach(name)
    except FileNotFoundError:
        return False
    except Exception:
        # Attach failures other than "no such segment" usually mean a
        # torn segment from a killed worker; remove it raw.
        return _unlink_raw(name)
    try:
        segment.unlink()
    except Exception:
        pass
    finally:
        try:
            segment.close()
        except Exception:
            pass
    return True


def _pack(summaries: Sequence) -> tuple:
    """Build the pickled header and the concatenated array section."""
    vocab: List[str] = []
    vocab_index = {}

    def intern(text: str) -> int:
        slot = vocab_index.get(text)
        if slot is None:
            slot = len(vocab)
            vocab_index[text] = slot
            vocab.append(text)
        return slot

    sel_time: List[float] = []
    sel_threads: List[int] = []
    sel_job: List[int] = []
    sel_loop: List[int] = []
    rec_time: List[float] = []
    rec_threads: List[int] = []
    rec_loop: List[int] = []
    rec_feat: List[float] = []
    rec_feat_off: List[int] = [0]
    entries = []
    for summary in summaries:
        entries.append({
            "target": summary.target,
            "policy": summary.policy,
            "target_time": summary.target_time,
            "workload_throughput": summary.workload_throughput,
            "duration": summary.duration,
            "workload_runs": summary.workload_runs,
            "policy_fallbacks": summary.policy_fallbacks,
            "n_selections": len(summary.selections),
            "n_records": len(summary.records),
        })
        for sel in summary.selections:
            sel_time.append(sel.time)
            sel_threads.append(sel.threads)
            sel_job.append(intern(sel.job_id))
            sel_loop.append(intern(sel.loop_name))
        for rec in summary.records:
            rec_time.append(rec.time)
            rec_threads.append(rec.threads)
            rec_loop.append(intern(rec.loop_name))
            rec_feat.extend(rec.features)
            rec_feat_off.append(len(rec_feat))

    arrays = {
        "sel_time": np.asarray(sel_time, dtype=np.float64),
        "sel_threads": np.asarray(sel_threads, dtype=np.int64),
        "sel_job": np.asarray(sel_job, dtype=np.int64),
        "sel_loop": np.asarray(sel_loop, dtype=np.int64),
        "rec_time": np.asarray(rec_time, dtype=np.float64),
        "rec_threads": np.asarray(rec_threads, dtype=np.int64),
        "rec_loop": np.asarray(rec_loop, dtype=np.int64),
        "rec_feat": np.asarray(rec_feat, dtype=np.float64),
        "rec_feat_off": np.asarray(rec_feat_off, dtype=np.int64),
    }
    descriptors = []
    offset = 0
    chunks = []
    for key, array in arrays.items():
        descriptors.append((key, str(array.dtype), int(array.size),
                            offset))
        chunks.append(array.tobytes())
        offset += array.nbytes
    header = pickle.dumps({
        "version": SHM_FORMAT_VERSION,
        "entries": entries,
        "vocab": vocab,
        "arrays": descriptors,
    }, protocol=4)
    return header, b"".join(chunks)


def encode_summaries(summaries: Sequence, name: str) -> int:
    """Write ``summaries`` into a fresh segment ``name``; returns bytes.

    Creates the segment (the name must be parent-assigned and fresh),
    copies the header + SoA blocks in, and closes the local mapping.
    The segment itself stays alive for the parent to decode and unlink.
    """
    from multiprocessing import shared_memory

    header, body = _pack(summaries)
    prefix = _HEADER_LEN.pack(len(header)) + header
    pad = (-len(prefix)) % 8
    prefix += b"\0" * pad
    total = len(prefix) + len(body)
    segment = shared_memory.SharedMemory(
        name=name, create=True, size=max(total, 1)
    )
    try:
        segment.buf[:len(prefix)] = prefix
        if body:
            segment.buf[len(prefix):total] = body
    finally:
        segment.close()
    return total


def decode_summaries(name: str) -> List:
    """Reconstruct the summary list from segment ``name`` (no unlink)."""
    from ..runtime.engine import Selection
    from .request import RecordedSelection, RunSummary

    segment = _attach(name)
    try:
        (header_len,) = _HEADER_LEN.unpack_from(segment.buf, 0)
        header = pickle.loads(
            bytes(segment.buf[8:8 + header_len])
        )
        if header.get("version") != SHM_FORMAT_VERSION:
            raise ValueError(
                f"shm segment {name!r} has format "
                f"{header.get('version')!r}, expected "
                f"{SHM_FORMAT_VERSION}"
            )
        base = 8 + header_len + ((-(8 + header_len)) % 8)
        arrays = {}
        for key, dtype, count, offset in header["arrays"]:
            view = np.frombuffer(
                segment.buf, dtype=np.dtype(dtype), count=count,
                offset=base + offset,
            )
            arrays[key] = view.copy()
            del view
    finally:
        segment.close()

    vocab = header["vocab"]
    summaries = []
    sel_cursor = 0
    rec_cursor = 0
    for entry in header["entries"]:
        selections = []
        for i in range(sel_cursor, sel_cursor + entry["n_selections"]):
            selections.append(Selection(
                time=float(arrays["sel_time"][i]),
                job_id=vocab[int(arrays["sel_job"][i])],
                loop_name=vocab[int(arrays["sel_loop"][i])],
                threads=int(arrays["sel_threads"][i]),
            ))
        sel_cursor += entry["n_selections"]
        records = []
        feat_off = arrays["rec_feat_off"]
        feat = arrays["rec_feat"]
        for i in range(rec_cursor, rec_cursor + entry["n_records"]):
            records.append(RecordedSelection(
                time=float(arrays["rec_time"][i]),
                loop_name=vocab[int(arrays["rec_loop"][i])],
                features=tuple(
                    float(v)
                    for v in feat[int(feat_off[i]):int(feat_off[i + 1])]
                ),
                threads=int(arrays["rec_threads"][i]),
            ))
        rec_cursor += entry["n_records"]
        summaries.append(RunSummary(
            target=entry["target"],
            policy=entry["policy"],
            target_time=entry["target_time"],
            workload_throughput=entry["workload_throughput"],
            duration=entry["duration"],
            workload_runs=entry["workload_runs"],
            selections=tuple(selections),
            records=tuple(records),
            policy_fallbacks=entry["policy_fallbacks"],
        ))
    return summaries
