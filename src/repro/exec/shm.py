"""Shared-memory SoA transport for run summaries.

The classic process-pool result path pickles every
:class:`~repro.exec.request.RunSummary` in the worker and unpickles it
in the parent — byte-copied through a pipe, object-decoded twice.  The
bulk of a summary is its *decision streams* (the selection log and, on
recording runs, the feature records), which are homogeneous and pack
naturally into flat arrays.  This module writes them as
structure-of-arrays blocks in a ``multiprocessing.shared_memory``
segment instead: the worker lays the streams out once, the parent maps
the segment and reconstructs summaries from array views — no pipe
traffic proportional to the stream length, no second pickling pass.

Layout of a segment::

    [8-byte big-endian header length][pickled header][pad to 8][arrays]

The header carries the per-summary scalars verbatim (pickled, so types
round-trip exactly), the string vocabulary, the stream lengths and the
array descriptors ``(key, dtype, count, offset)``.  The streams store
``float64``/``int64`` columns plus vocabulary indices for the string
fields; ``float64`` round-trips every IEEE double bit-exactly, so a
decoded summary compares equal to the pickled original.

Naming and cleanup discipline: the **parent** assigns segment names
(:func:`segment_name`) *before* submitting work and tracks them in a
:class:`~repro.exec.fault.ShmLedger`; the worker creates the segment,
writes, and never unlinks.  Whatever happens to the worker — clean
return, exception, chaos kill, timeout reaping — the parent can always
sweep the names it issued (:func:`unlink`), so no segment outlives the
executor call.  Attach-side resource-tracker registration (a Python <
3.13 quirk that would otherwise double-unlink) is undone defensively.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Bump when the segment layout changes; decoders reject other versions.
SHM_FORMAT_VERSION = 1

_HEADER_LEN = struct.Struct(">Q")


def shm_available() -> bool:
    """Whether POSIX shared memory actually works here (memoised).

    Sandboxes without ``/dev/shm`` raise on segment creation; probe
    once with a minimal segment instead of failing per run.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


_AVAILABLE: Optional[bool] = None


def shm_enabled() -> bool:
    """``REPRO_SHM`` knob (default on) AND platform support."""
    raw = os.environ.get("REPRO_SHM", "").strip().lower()
    if raw in ("0", "off", "false", "no"):
        return False
    return shm_available()


_COUNTER = 0

#: ``(pid, token)`` memo — recomputed after fork (pid changes).
_TOKEN: Optional[Tuple[int, str]] = None


def _process_token() -> str:
    """A per-process random-once token, deterministic per process.

    ``repro-<pid>-<n>`` alone collides once pids are reused: a fleet
    parent that inherits the pid of a crashed executor would assign
    names a leaked segment of the dead process already occupies, and
    segment *creation* (exclusive) would fail — or worse, a concurrent
    parent with the same recycled pid would sweep the other's segments.
    Hashing the pid together with the kernel's process start time
    (field 22 of ``/proc/<pid>/stat``, ticks since boot) yields a token
    that is stable within a process, differs across pid reuse, and
    needs no RNG state.  Forked children recompute (their pid differs).
    """
    global _TOKEN
    pid = os.getpid()
    if _TOKEN is not None and _TOKEN[0] == pid:
        return _TOKEN[1]
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read()
        # Field 2 (comm) is parenthesised and may contain spaces;
        # starttime is the 22nd field overall = 20th after the ')'.
        fields = stat[stat.rindex(b")") + 2:].split()
        starttime = fields[19].decode("ascii")
    except (OSError, ValueError, IndexError):  # pragma: no cover
        # No /proc (non-Linux): fall back to the pid-only discipline,
        # which is exactly the pre-token behaviour.
        starttime = "0"
    token = hashlib.sha256(
        f"{pid}:{starttime}".encode("ascii")
    ).hexdigest()[:8]
    _TOKEN = (pid, token)
    return token


def segment_name() -> str:
    """A fresh parent-assigned name (``repro-<pid>-<token>-<n>``)."""
    global _COUNTER
    _COUNTER += 1
    return f"repro-{os.getpid()}-{_process_token()}-{_COUNTER}"


def _attach(name: str):
    """Attach to an existing segment without tracker double-counting.

    Python 3.13 made attachments register with the resource tracker by
    default (``track=True``), which would double-unlink here — the
    creator's registration, shared through the fork-inherited tracker
    process, is the one :func:`unlink` consumes.  Pass ``track=False``
    where supported; earlier versions never tracked attachments.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        return shared_memory.SharedMemory(name=name)


def _unlink_raw(name: str) -> bool:
    """Remove segment ``name`` at the POSIX level, bypassing mmap.

    A worker killed between ``shm_open`` and ``ftruncate`` leaves a
    *torn* zero-byte segment that :class:`SharedMemory` cannot attach
    to (mapping an empty file raises), so the high-level unlink path
    would mistake it for a missing segment and leak it forever.
    """
    try:
        import _posixshmem
    except ImportError:  # pragma: no cover - non-POSIX platform
        return False
    try:
        _posixshmem.shm_unlink("/" + name)
    except FileNotFoundError:
        return False
    except Exception:  # pragma: no cover - permission races
        return False
    return True


def unlink(name: str) -> bool:
    """Best-effort removal of segment ``name``; True if it existed."""
    try:
        segment = _attach(name)
    except FileNotFoundError:
        return False
    except Exception:
        # Attach failures other than "no such segment" usually mean a
        # torn segment from a killed worker; remove it raw.
        return _unlink_raw(name)
    try:
        segment.unlink()
    except Exception:
        pass
    finally:
        try:
            segment.close()
        except Exception:
            pass
    return True


def pack_block(meta: dict, arrays: dict) -> bytes:
    """Serialize ``(meta, arrays)`` into the segment block layout.

    Same wire format as the summary segments — ``[8-byte BE header
    length][pickled header][pad to 8][concatenated arrays]`` — but
    generic: ``meta`` is any picklable dict of scalars, ``arrays`` a
    dict of 1-D numpy arrays.  ``float64`` columns round-trip IEEE
    doubles bit-exactly, which is what lets the fleet move feature
    vectors through shared memory without perturbing a single ulp.
    """
    descriptors = []
    offset = 0
    chunks = []
    for key, array in arrays.items():
        array = np.ascontiguousarray(array)
        if array.ndim != 1:
            raise ValueError(f"array {key!r} must be 1-D")
        descriptors.append((key, str(array.dtype), int(array.size),
                            offset))
        chunks.append(array.tobytes())
        offset += array.nbytes
    header = pickle.dumps({
        "version": SHM_FORMAT_VERSION,
        "meta": meta,
        "arrays": descriptors,
    }, protocol=4)
    prefix = _HEADER_LEN.pack(len(header)) + header
    prefix += b"\0" * ((-len(prefix)) % 8)
    return prefix + b"".join(chunks)


def unpack_block(buffer) -> Tuple[dict, dict]:
    """Inverse of :func:`pack_block`; arrays are copied out."""
    (header_len,) = _HEADER_LEN.unpack_from(buffer, 0)
    header = pickle.loads(bytes(buffer[8:8 + header_len]))
    if header.get("version") != SHM_FORMAT_VERSION:
        raise ValueError(
            f"block has format {header.get('version')!r}, expected "
            f"{SHM_FORMAT_VERSION}"
        )
    base = 8 + header_len + ((-(8 + header_len)) % 8)
    arrays = {}
    for key, dtype, count, offset in header["arrays"]:
        view = np.frombuffer(
            buffer, dtype=np.dtype(dtype), count=count,
            offset=base + offset,
        )
        arrays[key] = view.copy()
        del view
    return header["meta"], arrays


class ShmRing:
    """A fixed-slot shared-memory ring of SoA blocks.

    Bulk transport for the serving fleet: the parent writes request
    blocks into free slots and the shard worker writes decision blocks
    back — slot turnover is coordinated entirely out of band (the
    fleet's control pipes carry ``(slot, nbytes)`` doorbells), so the
    ring itself needs no locks or atomics.

    Lifetime follows the summary-segment discipline: the side told to
    ``create`` (the worker, so a worker killed mid-creation leaves at
    most a torn segment the raw unlink path handles) makes the segment
    under a parent-assigned, ledger-tracked name; the parent attaches
    and is the only side that ever unlinks.
    """

    def __init__(self, name: str, slots: int, slot_bytes: int,
                 create: bool = False):
        if slots < 1 or slot_bytes < 64:
            raise ValueError("need >= 1 slot of >= 64 bytes")
        from multiprocessing import shared_memory

        self.name = name
        self.slots = slots
        self.slot_bytes = slot_bytes
        if create:
            self._segment = shared_memory.SharedMemory(
                name=name, create=True, size=slots * slot_bytes
            )
        else:
            self._segment = _attach(name)
            if self._segment.size < slots * slot_bytes:
                self._segment.close()
                raise ValueError(
                    f"segment {name!r} smaller than "
                    f"{slots}x{slot_bytes} bytes"
                )

    def write(self, slot: int, meta: dict, arrays: dict) -> int:
        """Pack a block into ``slot``; returns the byte count to signal."""
        if not 0 <= slot < self.slots:
            raise IndexError(f"slot {slot} out of range")
        block = pack_block(meta, arrays)
        if len(block) > self.slot_bytes:
            raise ValueError(
                f"block of {len(block)} bytes exceeds slot capacity "
                f"{self.slot_bytes} (raise slot_bytes or lower "
                f"batch_max)"
            )
        base = slot * self.slot_bytes
        self._segment.buf[base:base + len(block)] = block
        return len(block)

    def read(self, slot: int, nbytes: int) -> Tuple[dict, dict]:
        """Decode the block a doorbell announced for ``slot``."""
        if not 0 <= slot < self.slots:
            raise IndexError(f"slot {slot} out of range")
        if nbytes > self.slot_bytes:
            raise ValueError("announced block larger than a slot")
        base = slot * self.slot_bytes
        return unpack_block(self._segment.buf[base:base + nbytes])

    def close(self) -> None:
        try:
            self._segment.close()
        except Exception:
            pass


def _pack(summaries: Sequence) -> tuple:
    """Build the pickled header and the concatenated array section."""
    vocab: List[str] = []
    vocab_index = {}

    def intern(text: str) -> int:
        slot = vocab_index.get(text)
        if slot is None:
            slot = len(vocab)
            vocab_index[text] = slot
            vocab.append(text)
        return slot

    sel_time: List[float] = []
    sel_threads: List[int] = []
    sel_job: List[int] = []
    sel_loop: List[int] = []
    rec_time: List[float] = []
    rec_threads: List[int] = []
    rec_loop: List[int] = []
    rec_feat: List[float] = []
    rec_feat_off: List[int] = [0]
    entries = []
    for summary in summaries:
        entries.append({
            "target": summary.target,
            "policy": summary.policy,
            "target_time": summary.target_time,
            "workload_throughput": summary.workload_throughput,
            "duration": summary.duration,
            "workload_runs": summary.workload_runs,
            "policy_fallbacks": summary.policy_fallbacks,
            "n_selections": len(summary.selections),
            "n_records": len(summary.records),
        })
        for sel in summary.selections:
            sel_time.append(sel.time)
            sel_threads.append(sel.threads)
            sel_job.append(intern(sel.job_id))
            sel_loop.append(intern(sel.loop_name))
        for rec in summary.records:
            rec_time.append(rec.time)
            rec_threads.append(rec.threads)
            rec_loop.append(intern(rec.loop_name))
            rec_feat.extend(rec.features)
            rec_feat_off.append(len(rec_feat))

    arrays = {
        "sel_time": np.asarray(sel_time, dtype=np.float64),
        "sel_threads": np.asarray(sel_threads, dtype=np.int64),
        "sel_job": np.asarray(sel_job, dtype=np.int64),
        "sel_loop": np.asarray(sel_loop, dtype=np.int64),
        "rec_time": np.asarray(rec_time, dtype=np.float64),
        "rec_threads": np.asarray(rec_threads, dtype=np.int64),
        "rec_loop": np.asarray(rec_loop, dtype=np.int64),
        "rec_feat": np.asarray(rec_feat, dtype=np.float64),
        "rec_feat_off": np.asarray(rec_feat_off, dtype=np.int64),
    }
    descriptors = []
    offset = 0
    chunks = []
    for key, array in arrays.items():
        descriptors.append((key, str(array.dtype), int(array.size),
                            offset))
        chunks.append(array.tobytes())
        offset += array.nbytes
    header = pickle.dumps({
        "version": SHM_FORMAT_VERSION,
        "entries": entries,
        "vocab": vocab,
        "arrays": descriptors,
    }, protocol=4)
    return header, b"".join(chunks)


def encode_summaries(summaries: Sequence, name: str) -> int:
    """Write ``summaries`` into a fresh segment ``name``; returns bytes.

    Creates the segment (the name must be parent-assigned and fresh),
    copies the header + SoA blocks in, and closes the local mapping.
    The segment itself stays alive for the parent to decode and unlink.
    """
    from multiprocessing import shared_memory

    header, body = _pack(summaries)
    prefix = _HEADER_LEN.pack(len(header)) + header
    pad = (-len(prefix)) % 8
    prefix += b"\0" * pad
    total = len(prefix) + len(body)
    segment = shared_memory.SharedMemory(
        name=name, create=True, size=max(total, 1)
    )
    try:
        segment.buf[:len(prefix)] = prefix
        if body:
            segment.buf[len(prefix):total] = body
    finally:
        segment.close()
    return total


def decode_summaries(name: str) -> List:
    """Reconstruct the summary list from segment ``name`` (no unlink)."""
    from ..runtime.engine import Selection
    from .request import RecordedSelection, RunSummary

    segment = _attach(name)
    try:
        (header_len,) = _HEADER_LEN.unpack_from(segment.buf, 0)
        header = pickle.loads(
            bytes(segment.buf[8:8 + header_len])
        )
        if header.get("version") != SHM_FORMAT_VERSION:
            raise ValueError(
                f"shm segment {name!r} has format "
                f"{header.get('version')!r}, expected "
                f"{SHM_FORMAT_VERSION}"
            )
        base = 8 + header_len + ((-(8 + header_len)) % 8)
        arrays = {}
        for key, dtype, count, offset in header["arrays"]:
            view = np.frombuffer(
                segment.buf, dtype=np.dtype(dtype), count=count,
                offset=base + offset,
            )
            arrays[key] = view.copy()
            del view
    finally:
        segment.close()

    vocab = header["vocab"]
    summaries = []
    sel_cursor = 0
    rec_cursor = 0
    for entry in header["entries"]:
        selections = []
        for i in range(sel_cursor, sel_cursor + entry["n_selections"]):
            selections.append(Selection(
                time=float(arrays["sel_time"][i]),
                job_id=vocab[int(arrays["sel_job"][i])],
                loop_name=vocab[int(arrays["sel_loop"][i])],
                threads=int(arrays["sel_threads"][i]),
            ))
        sel_cursor += entry["n_selections"]
        records = []
        feat_off = arrays["rec_feat_off"]
        feat = arrays["rec_feat"]
        for i in range(rec_cursor, rec_cursor + entry["n_records"]):
            records.append(RecordedSelection(
                time=float(arrays["rec_time"][i]),
                loop_name=vocab[int(arrays["rec_loop"][i])],
                features=tuple(
                    float(v)
                    for v in feat[int(feat_off[i]):int(feat_off[i + 1])]
                ),
                threads=int(arrays["rec_threads"][i]),
            ))
        rec_cursor += entry["n_records"]
        summaries.append(RunSummary(
            target=entry["target"],
            policy=entry["policy"],
            target_time=entry["target_time"],
            workload_throughput=entry["workload_throughput"],
            duration=entry["duration"],
            workload_runs=entry["workload_runs"],
            selections=tuple(selections),
            records=tuple(records),
            policy_fallbacks=entry["policy_fallbacks"],
        ))
    return summaries
