"""Cross-run batched SoA execution of compatible run requests.

A paper figure's request grid varies the *policy* and the *seed* far
more often than the scenario shape: hundreds of requests share one
(target program, workload set, scenario, topology, tick size) tuple.
Each of those simulations spends most of its wall clock inside the
event-free fast-forward spans the SoA kernels advance
(:mod:`repro.runtime.kernels`), and per-run execution pays the NumPy
dispatch overhead of every span once *per run*.

This module batches that work across runs.  :func:`plan_groups`
partitions a request list into vectorizable groups (same scenario
shape) and per-run stragglers; :func:`run_group` builds one engine per
member and drives their stepping generators in lock-step rounds:

1. every live member advances to its next event-free span point and
   yields a :class:`~repro.runtime.kernels.SpanPlan`;
2. the collected plans are applied through **one** batched kernel
   invocation (:func:`~repro.runtime.kernels.apply_span_plans`, a
   leading-batch-axis ``span_rates`` + ``apply_span`` pass);
3. members whose generator returned drop out with their result;
   members whose generator raised drop out with the error.

Because every kernel operation is elementwise, a member's simulated
state after a batched round is bit-identical to what solo execution
would have produced — the serial/parallel equivalence guarantee of the
executor extends to batching unchanged, and the ``REPRO_SANITIZE=1``
state-digest cross-check runs per member exactly as it does per run.

Failure isolation: a member that raises anywhere (engine construction,
stepping, summary assembly) is reported in its
:class:`MemberOutcome.error` and **does not** disturb the other
members; the executor degrades just that member to the proven per-run
retry path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime import kernels
from .request import (
    RunRequest,
    RunSummary,
    _build_simulation,
    _sanitize_cross_check,
    _summarize,
)

#: Smallest group worth batching; a singleton gains nothing over the
#: per-run path and would only add generator bookkeeping.
MIN_GROUP = 2


def group_key(request: RunRequest) -> tuple:
    """The scenario *shape* a request must share to join a batch.

    Everything physics-relevant except the target policy, the seed and
    ``record`` — exactly the axes a figure grid sweeps.  Members of a
    group still run fully independent engines (different seeds draw
    different availability traces); sharing the shape merely keeps the
    batch planes tightly packed and the members' span cadence similar.
    The workload *policy* is also excluded: it only affects the
    member's own decisions, never another member's arrays.
    """
    workload = None
    if request.workload is not None:
        workload = (
            request.workload.program_names,
            request.workload.start_times,
            request.workload.restart,
        )
    return (
        request.target,
        repr(request.scenario),
        workload,
        repr(request.resolved_topology()),
        request.iterations_scale,
        request.dt,
        request.max_time,
        request.processors,
        repr(request.target_affinity),
        repr(request.workload_affinity),
        request.stepping,
    )


def plan_groups(
    requests: Sequence[RunRequest],
    indices: Sequence[int],
    max_group: Optional[int] = None,
) -> Tuple[List[List[int]], List[int]]:
    """Partition ``indices`` into vectorizable groups and stragglers.

    Only event-stepping requests batch (the fixed-tick reference mode
    never fast-forwards, so there is nothing to coalesce).  Buckets
    smaller than :data:`MIN_GROUP` fall back to the per-run path;
    ``max_group`` optionally splits large buckets so a worker pool can
    spread groups across processes.  Index order is preserved within
    groups and stragglers, so execution remains deterministic.
    """
    buckets: Dict[tuple, List[int]] = {}
    stragglers: List[int] = []
    for index in indices:
        request = requests[index]
        if request.stepping != "event":
            stragglers.append(index)
            continue
        buckets.setdefault(group_key(request), []).append(index)
    groups: List[List[int]] = []
    for members in buckets.values():
        if len(members) < MIN_GROUP:
            stragglers.extend(members)
            continue
        if max_group is not None and max_group >= MIN_GROUP:
            for start in range(0, len(members), max_group):
                chunk = members[start:start + max_group]
                if len(chunk) < MIN_GROUP:
                    stragglers.extend(chunk)
                else:
                    groups.append(chunk)
        else:
            groups.append(members)
    stragglers.sort()
    return groups, stragglers


@dataclass
class MemberOutcome:
    """What happened to one member of a batched group."""

    position: int
    summary: Optional[RunSummary] = None
    error: Optional[BaseException] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and self.summary is not None


class _Member:
    """Live bookkeeping for one group member being stepped."""

    __slots__ = (
        "position", "request", "engine", "recorder", "base_policy",
        "gen", "result",
    )

    def __init__(self, position, request, engine, recorder, base_policy):
        self.position = position
        self.request = request
        self.engine = engine
        self.recorder = recorder
        self.base_policy = base_policy
        self.gen = engine.span_steps()
        self.result = None


def run_group(requests: Sequence[RunRequest]) -> List[MemberOutcome]:
    """Run a group of compatible requests through batched span kernels.

    Returns one :class:`MemberOutcome` per request, in order.  Per-
    member wall clock is accounted around that member's own generator
    steps (plus its share of setup and summary assembly), so attempt
    records stay meaningful.  Any member error is captured in its
    outcome; the rest of the group always runs to completion.
    """
    outcomes = [
        MemberOutcome(position=position)
        for position in range(len(requests))
    ]
    members: List[_Member] = []
    for position, request in enumerate(requests):
        started = time.monotonic()
        try:
            engine, recorder, base_policy = _build_simulation(
                request, request.stepping
            )
            members.append(_Member(
                position, request, engine, recorder, base_policy
            ))
        except Exception as error:
            outcomes[position].error = error
        outcomes[position].elapsed += time.monotonic() - started

    live = list(members)
    plans: List[kernels.SpanPlan] = []
    while live:
        plans.clear()
        finished: List[_Member] = []
        for member in live:
            started = time.monotonic()
            try:
                plans.append(next(member.gen))
            except StopIteration as stop:
                member.result = stop.value
                finished.append(member)
            except Exception as error:
                outcomes[member.position].error = error
                finished.append(member)
            finally:
                outcomes[member.position].elapsed += (
                    time.monotonic() - started
                )
        for member in finished:
            live.remove(member)
        # One SoA kernel invocation advances every live member's span.
        kernels.apply_span_plans(plans)

    for member in members:
        outcome = outcomes[member.position]
        if outcome.error is not None:
            continue
        started = time.monotonic()
        try:
            _sanitize_cross_check(member.request, member.engine)
            outcome.summary = _summarize(
                member.request, member.result, member.recorder,
                member.base_policy,
            )
        except Exception as error:
            outcome.error = error
        outcome.elapsed += time.monotonic() - started
    return outcomes
