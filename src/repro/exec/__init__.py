"""Parallel experiment execution layer.

``repro.exec`` turns the evaluation harness's embarrassing parallelism
into wall-clock speed: every simulation is described by a picklable
:class:`RunRequest`, executed by an :class:`Executor` over a process
pool (or serially, bit-identically), and memoised on disk through a
content-addressed :class:`RunCache`.  See ``docs/performance.md``.

The executor is fault-tolerant: per-request retries with backoff
(:class:`RetryPolicy`), per-run wall-clock timeouts, automatic pool
rebuild after worker crashes, corrupt-cache quarantine, and periodic
checkpointing of completed summaries (:class:`Checkpoint`) so an
interrupted grid resumes from partial results.  Each run is accounted
for in a structured :class:`FailureReport`.  See
``docs/robustness.md``.

Compatible requests can additionally be *batched*: grouped by scenario
shape and advanced through shared SoA kernel invocations
(:mod:`repro.exec.batch`, ``REPRO_BATCH``), with pool results
transported through shared-memory SoA segments instead of pickles
(:mod:`repro.exec.shm`, ``REPRO_SHM``).  Physics stays bit-identical
in every mode.  See ``docs/performance.md``.
"""

from .batch import MemberOutcome, group_key, plan_groups, run_group
from .cache import RunCache, cache_enabled, default_cache_root
from .executor import (
    STATS,
    ExecutionStats,
    Executor,
    resolve_batch,
    resolve_jobs,
)
from .fault import (
    AttemptRecord,
    Checkpoint,
    FailureReport,
    RequestReport,
    RetryPolicy,
    RunTimeoutError,
    SerialFallbackWarning,
    ShmLedger,
    resolve_checkpoint,
    resolve_max_pool_rebuilds,
    resolve_retry,
    resolve_run_timeout,
)
from .request import (
    PolicySpec,
    RecordedSelection,
    RunRequest,
    RunSummary,
    WorkloadSpec,
    execute_request,
)

__all__ = [
    "AttemptRecord",
    "Checkpoint",
    "ExecutionStats",
    "Executor",
    "FailureReport",
    "MemberOutcome",
    "PolicySpec",
    "RecordedSelection",
    "RequestReport",
    "RetryPolicy",
    "RunCache",
    "RunRequest",
    "RunSummary",
    "RunTimeoutError",
    "STATS",
    "SerialFallbackWarning",
    "ShmLedger",
    "WorkloadSpec",
    "cache_enabled",
    "default_cache_root",
    "execute_request",
    "group_key",
    "plan_groups",
    "resolve_batch",
    "resolve_checkpoint",
    "resolve_jobs",
    "resolve_max_pool_rebuilds",
    "resolve_retry",
    "resolve_run_timeout",
    "run_group",
]
