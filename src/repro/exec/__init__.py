"""Parallel experiment execution layer.

``repro.exec`` turns the evaluation harness's embarrassing parallelism
into wall-clock speed: every simulation is described by a picklable
:class:`RunRequest`, executed by an :class:`Executor` over a process
pool (or serially, bit-identically), and memoised on disk through a
content-addressed :class:`RunCache`.  See ``docs/performance.md``.
"""

from .cache import RunCache, cache_enabled, default_cache_root
from .executor import STATS, ExecutionStats, Executor, resolve_jobs
from .request import (
    PolicySpec,
    RecordedSelection,
    RunRequest,
    RunSummary,
    WorkloadSpec,
    execute_request,
)

__all__ = [
    "ExecutionStats",
    "Executor",
    "PolicySpec",
    "RecordedSelection",
    "RunCache",
    "RunRequest",
    "RunSummary",
    "STATS",
    "WorkloadSpec",
    "cache_enabled",
    "default_cache_root",
    "execute_request",
    "resolve_jobs",
]
