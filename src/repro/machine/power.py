"""Machine power model and run energy accounting.

The paper motivates hardware variation partly by power ("turning them
off for saving power") and its feedback-threading ancestor [30] is
explicitly power-aware.  This model makes the energy consequences of
thread selection measurable:

* a core consumes ``active_watts`` while running a thread (spinning
  included — busy-wait burns the same power as useful work, which is
  exactly why over-threading is expensive);
* every *available* core consumes ``idle_watts`` whether used or not;
* unavailable (offlined) cores consume nothing.

The engine's per-job CPU accounting (``SimulationResult.cpu_time``)
provides active core-seconds; the machine's availability schedule
provides the idle baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .topology import Topology


@dataclass(frozen=True)
class PowerModel:
    """First-order CPU power model for a topology."""

    topology: Topology
    #: Watts per core while executing (active power).
    active_watts: float = 8.0
    #: Watts per powered-on core while idle (static + idle clocking).
    idle_watts: float = 2.5

    def __post_init__(self) -> None:
        if self.active_watts <= 0 or self.idle_watts < 0:
            raise ValueError("power figures must be positive")
        if self.idle_watts > self.active_watts:
            raise ValueError("idle power cannot exceed active power")

    def energy_joules(
        self,
        active_core_seconds: float,
        duration: float,
        mean_available: float,
    ) -> float:
        """Total energy of a run.

        ``active_core_seconds`` is the sum of granted CPU time across
        jobs; ``mean_available`` the average powered-on core count.
        """
        if active_core_seconds < 0 or duration < 0:
            raise ValueError("times cannot be negative")
        if mean_available < 0:
            raise ValueError("mean_available cannot be negative")
        powered = mean_available * duration
        # ``mean_available`` usually comes from coarse timeline samples,
        # so allow a small sampling error before declaring the inputs
        # inconsistent; within the tolerance, clamp.
        if active_core_seconds > 1.05 * powered + 1e-6:
            raise ValueError(
                "more active core-seconds than powered core-seconds"
            )
        active = min(active_core_seconds, powered)
        dynamic = (self.active_watts - self.idle_watts)
        return dynamic * active + self.idle_watts * powered

    def run_energy(self, result, mean_available: float) -> float:
        """Energy of a :class:`~repro.runtime.engine.SimulationResult`."""
        active = sum(result.cpu_time.values())
        return self.energy_joules(
            active_core_seconds=active,
            duration=result.duration,
            mean_available=mean_available,
        )


def mean_availability(result) -> float:
    """Average powered-on core count over a run's timeline."""
    if not result.timeline:
        raise ValueError("result has no timeline samples")
    return sum(p.available for p in result.timeline) / len(
        result.timeline
    )


def energy_to_solution(
    result,
    model: PowerModel,
    job_id: str,
    work_done: float,
) -> float:
    """Joules per unit of useful work for one job.

    The headline energy metric: a policy that stops threads from
    spinning retires the same work with fewer active core-seconds.
    """
    if work_done <= 0:
        raise ValueError("work_done must be positive")
    available = mean_availability(result)
    cpu = result.cpu_time.get(job_id, 0.0)
    share = cpu / max(sum(result.cpu_time.values()), 1e-12)
    total = model.run_energy(result, available)
    return share * total / work_done
