"""The simulated machine: topology + availability + affinity."""

from __future__ import annotations

from dataclasses import dataclass, field

from .affinity import AffinityPolicy, NoAffinity
from .availability import AvailabilitySchedule, StaticAvailability
from .topology import Topology


@dataclass
class SimMachine:
    """A machine instance as seen by the scheduler and the policies.

    The availability schedule may grant fewer processors than the topology
    has (never more); affinity sets the default placement policy for jobs
    that do not override it.
    """

    topology: Topology
    availability: AvailabilitySchedule = None  # type: ignore[assignment]
    affinity: AffinityPolicy = field(default_factory=NoAffinity)

    def __post_init__(self) -> None:
        if self.availability is None:
            self.availability = StaticAvailability(self.topology.cores)

    def available(self, time: float) -> int:
        """Processors available at ``time``, clamped to the topology."""
        count = self.availability.available(time)
        return max(1, min(count, self.topology.cores))

    def next_change(self, time: float) -> float:
        """Earliest instant after ``time`` where availability may change.

        ``0.0`` (i.e. "no horizon") when the schedule does not implement
        the event protocol — see
        :func:`repro.machine.availability.next_availability_change`.
        """
        from .availability import next_availability_change

        return next_availability_change(self.availability, time)

    def locality(self, threads: int) -> float:
        """Locality factor of the machine's affinity policy."""
        return self.affinity.locality(threads, self.topology)

    def with_affinity(self, affinity: AffinityPolicy) -> "SimMachine":
        """A copy of this machine using a different affinity policy."""
        return SimMachine(
            topology=self.topology,
            availability=self.availability,
            affinity=affinity,
        )
