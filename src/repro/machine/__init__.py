"""Simulated hardware: topologies, availability schedules, affinity."""

from .topology import (
    HPC_SYSTEM,
    TRAINING_PLATFORMS,
    TWELVE_CORE,
    Topology,
    XEON_L7555,
)
from .availability import (
    AvailabilitySchedule,
    FailureWindow,
    HIGH_FREQUENCY_PERIOD,
    LOW_FREQUENCY_PERIOD,
    PeriodicAvailability,
    StaticAvailability,
    TraceAvailability,
)
from .affinity import (
    AffinityPolicy,
    CompactAffinity,
    NoAffinity,
    ScatterAffinity,
)
from .machine import SimMachine

__all__ = [
    "AffinityPolicy",
    "AvailabilitySchedule",
    "CompactAffinity",
    "FailureWindow",
    "HIGH_FREQUENCY_PERIOD",
    "HPC_SYSTEM",
    "LOW_FREQUENCY_PERIOD",
    "NoAffinity",
    "PeriodicAvailability",
    "ScatterAffinity",
    "SimMachine",
    "StaticAvailability",
    "Topology",
    "TraceAvailability",
    "TRAINING_PLATFORMS",
    "TWELVE_CORE",
    "XEON_L7555",
]
