"""Hardware topology descriptions.

Reproduces the platforms of the paper: the 32-core Xeon L7555 evaluation
machine (Table 2), the 12-core machine used for the motivation study and as
one of the two expert-training platforms (Sections 3, 5.1), and the large
HPC system whose activity log motivates Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Topology:
    """A shared-memory machine topology.

    ``llc_mb`` and ``mem_bandwidth_gbs`` parameterise the contention model
    in :mod:`repro.sched.scheduler`: more co-running memory-intensive
    threads than the LLC/bandwidth can absorb slows everyone down.
    """

    name: str
    sockets: int
    cores_per_socket: int
    smt: int = 1
    freq_ghz: float = 2.0
    llc_mb: float = 16.0
    ram_gb: float = 32.0
    mem_bandwidth_gbs: float = 40.0

    def __post_init__(self) -> None:
        if self.sockets < 1 or self.cores_per_socket < 1 or self.smt < 1:
            raise ValueError(f"degenerate topology: {self}")

    @property
    def cores(self) -> int:
        """Physical cores."""
        return self.sockets * self.cores_per_socket

    @property
    def hw_contexts(self) -> int:
        """Hardware thread contexts (cores × SMT ways)."""
        return self.cores * self.smt

    def socket_of(self, core: int) -> int:
        """Socket index owning physical core ``core``."""
        if not 0 <= core < self.cores:
            raise ValueError(
                f"core {core} out of range for {self.name} "
                f"({self.cores} cores)"
            )
        return core // self.cores_per_socket


#: Table 2 evaluation platform: 32-core Intel Xeon L7555 @ 1.87 GHz,
#: 4 one-socket nodes with 8 cores each, 64 GB RAM, 24 MB shared LLC.
XEON_L7555 = Topology(
    name="xeon-l7555",
    sockets=4,
    cores_per_socket=8,
    freq_ghz=1.87,
    llc_mb=24.0,
    ram_gb=64.0,
    mem_bandwidth_gbs=60.0,
)

#: The 12-core machine of the motivation study (Section 3) and the first
#: expert-training platform (Section 5.1).
TWELVE_CORE = Topology(
    name="twelve-core",
    sockets=2,
    cores_per_socket=6,
    freq_ghz=2.4,
    llc_mb=12.0,
    ram_gb=24.0,
    mem_bandwidth_gbs=30.0,
)

#: The live HPC system behind Figure 1: 2912 cores, 5824 hardware
#: contexts (2-way SMT), 24 GB RAM per node (we record the headline
#: figures; only the demand *shape* matters downstream).
HPC_SYSTEM = Topology(
    name="hpc-live",
    sockets=364,
    cores_per_socket=8,
    smt=2,
    freq_ghz=2.6,
    llc_mb=20.0,
    ram_gb=24.0,
    mem_bandwidth_gbs=50.0,
)

#: Platforms experts are trained on (Section 5.1): 12-core and 32-core.
TRAINING_PLATFORMS = (TWELVE_CORE, XEON_L7555)
