"""Thread-to-core affinity policies.

Section 7.6: "Associating threads to cores via affinity scheduling can
improve performance as it may reduce memory traffic."  In the simulator
an affinity policy determines how a job's threads spread over sockets;
the resulting *locality factor* scales the memory-contention penalty in
:mod:`repro.sched.scheduler` — compactly-placed threads share an LLC and
generate less cross-socket traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from .topology import Topology


class AffinityPolicy(Protocol):
    """Computes how well-localised ``threads`` threads are on ``topology``."""

    name: str

    def locality(self, threads: int, topology: Topology) -> float:
        """Locality factor in (0, 1]; 1.0 means perfectly local placement."""
        ...


def _sockets_spanned(threads: int, topology: Topology,
                     compact: bool) -> int:
    """Sockets touched by a placement of ``threads`` threads."""
    if threads <= 0:
        return 1
    if compact:
        # Fill sockets one at a time.
        return min(
            topology.sockets,
            max(1, math.ceil(threads / topology.cores_per_socket)),
        )
    # OS default scatters threads across all sockets for balance.
    return min(topology.sockets, max(1, threads))


@dataclass(frozen=True)
class NoAffinity:
    """Default OS placement: threads scatter across sockets.

    Locality degrades with every extra socket spanned: remote-socket
    traffic crosses the interconnect and misses the local LLC.
    """

    name: str = "none"
    cross_socket_penalty: float = 0.15

    def locality(self, threads: int, topology: Topology) -> float:
        spanned = _sockets_spanned(threads, topology, compact=False)
        return 1.0 / (1.0 + self.cross_socket_penalty * (spanned - 1))


@dataclass(frozen=True)
class CompactAffinity:
    """Pin threads socket-by-socket (``OMP_PROC_BIND=close`` style).

    Spans the minimum number of sockets, and pinned threads additionally
    avoid migration costs, giving a small bonus even within one socket.
    """

    name: str = "compact"
    cross_socket_penalty: float = 0.15
    pinning_bonus: float = 0.08

    def locality(self, threads: int, topology: Topology) -> float:
        spanned = _sockets_spanned(threads, topology, compact=True)
        base = 1.0 / (1.0 + self.cross_socket_penalty * (spanned - 1))
        return min(1.0, base * (1.0 + self.pinning_bonus))


@dataclass(frozen=True)
class ScatterAffinity:
    """Pin threads round-robin across sockets (``spread`` style).

    Maximises aggregate LLC and bandwidth for few threads, but pays the
    full cross-socket cost once thread counts grow.
    """

    name: str = "scatter"
    cross_socket_penalty: float = 0.15
    bandwidth_bonus: float = 0.05

    def locality(self, threads: int, topology: Topology) -> float:
        spanned = _sockets_spanned(threads, topology, compact=False)
        base = 1.0 / (1.0 + self.cross_socket_penalty * (spanned - 1))
        if threads <= topology.sockets:
            # Each thread gets a whole socket's LLC slice to itself.
            return min(1.0, base * (1.0 + self.bandwidth_bonus * threads))
        return base
