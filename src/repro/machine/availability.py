"""Processor-availability schedules.

Section 6.4 ("Hardware"): the number of available processors is varied
during program execution, at *low* frequency (a change every 20 s) or
*high* frequency (every 10 s), due to "hardware failures, assigning
more/less cores for other high/low priority jobs, turning them off for
saving power".  Section 7.5 additionally simulates a hardware failure that
removes half the processors for two hours.

A schedule maps simulated time to the number of processors currently
available; the scheduler (:mod:`repro.sched`) treats unavailable cores as
nonexistent for that tick.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Protocol, Sequence, Tuple

import numpy as np

#: Section 6.4 change periods, in simulated seconds.
LOW_FREQUENCY_PERIOD = 20.0
HIGH_FREQUENCY_PERIOD = 10.0


class AvailabilitySchedule(Protocol):
    """Maps simulated time to an available-processor count."""

    def available(self, time: float) -> int:
        """Number of processors available at simulated ``time``."""
        ...

    def next_change(self, time: float) -> float:
        """Earliest instant strictly after ``time`` where the count *may*
        differ from ``available(time)``; ``math.inf`` if it never can.

        The event-driven engine uses this to bound how far it may advance
        without re-querying availability.  Returning a boundary where the
        count happens to stay the same is allowed (the engine just takes
        a no-op step there); returning a time *later* than an actual
        change is not.
        """
        ...


@dataclass(frozen=True)
class StaticAvailability:
    """All ``processors`` available at all times (the static scenario)."""

    processors: int

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("need at least one processor")

    def available(self, time: float) -> int:
        return self.processors

    def next_change(self, time: float) -> float:
        return math.inf


@dataclass
class PeriodicAvailability:
    """Availability re-drawn every ``period`` seconds (Section 6.4).

    At each period boundary a new count is drawn uniformly from
    ``[min_processors, max_processors]``.  Draws are deterministic given
    the seed and depend only on the period index, so querying out of order
    or repeatedly gives identical answers.
    """

    max_processors: int
    period: float = LOW_FREQUENCY_PERIOD
    min_fraction: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_processors < 1:
            raise ValueError("need at least one processor")
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < self.min_fraction <= 1.0:
            raise ValueError("min_fraction must be in (0, 1]")

    @property
    def min_processors(self) -> int:
        return max(1, int(round(self.max_processors * self.min_fraction)))

    def available(self, time: float) -> int:
        if time < 0:
            raise ValueError("time must be non-negative")
        index = int(time // self.period)
        if index == 0:
            # Programs start with the full machine; changes begin after the
            # first period, matching the paper's timelines.
            return self.max_processors
        return _periodic_draw(
            self.seed, index, self.min_processors, self.max_processors
        )

    def next_change(self, time: float) -> float:
        """The next period boundary (every boundary is a fresh draw)."""
        if time < 0:
            raise ValueError("time must be non-negative")
        return (math.floor(time / self.period) + 1) * self.period


@lru_cache(maxsize=65536)
def _periodic_draw(
    seed: int, index: int, min_processors: int, max_processors: int
) -> int:
    """Memoised per-period draw: the engine queries availability every
    tick (hundreds of queries per period), but the draw depends only on
    (seed, period index, bounds)."""
    rng = np.random.default_rng([seed, index])
    return int(rng.integers(min_processors, max_processors + 1))


@dataclass(frozen=True)
class TraceAvailability:
    """Availability read from an explicit ``(time, count)`` step trace."""

    points: Tuple[Tuple[float, int], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("trace must contain at least one point")
        times = [t for t, _ in self.points]
        if times != sorted(times):
            raise ValueError("trace times must be non-decreasing")
        if any(count < 1 for _, count in self.points):
            raise ValueError("trace counts must be >= 1")

    @classmethod
    def from_pairs(
        cls, pairs: Sequence[Tuple[float, int]]
    ) -> "TraceAvailability":
        return cls(points=tuple((float(t), int(c)) for t, c in pairs))

    def available(self, time: float) -> int:
        times = [t for t, _ in self.points]
        index = bisect.bisect_right(times, time) - 1
        if index < 0:
            index = 0
        return self.points[index][1]

    def next_change(self, time: float) -> float:
        times = [t for t, _ in self.points]
        index = bisect.bisect_right(times, time)
        if index >= len(times):
            return math.inf
        return times[index]


@dataclass(frozen=True)
class FailureWindow:
    """Wraps a schedule, removing a fraction of processors in a window.

    Models the Section 7.5 case study: "there was a hardware failure such
    that half of the processors were unavailable for 2 hours".
    """

    base: AvailabilitySchedule
    start: float
    end: float
    surviving_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("failure window must have positive length")
        if not 0.0 < self.surviving_fraction <= 1.0:
            raise ValueError("surviving_fraction must be in (0, 1]")

    def available(self, time: float) -> int:
        count = self.base.available(time)
        if self.start <= time < self.end:
            return max(1, int(math.floor(count * self.surviving_fraction)))
        return count

    def next_change(self, time: float) -> float:
        candidates = [next_availability_change(self.base, time)]
        for edge in (self.start, self.end):
            if edge > time:
                candidates.append(edge)
        return min(candidates)


def next_availability_change(
    schedule: AvailabilitySchedule, time: float
) -> float:
    """``schedule.next_change(time)``, or ``0.0`` when unsupported.

    Schedules that do not implement the event-horizon protocol report a
    horizon of "now", which makes the event-driven engine fall back to
    per-tick availability queries — always correct, just not fast.
    """
    probe = getattr(schedule, "next_change", None)
    if probe is None:
        return 0.0
    return probe(time)
