"""Workload configurations (Table 3 of the paper).

A *workload set* is the list of benchmark programs co-executing with the
target.  Two sizes are evaluated, each with two concrete benchmark sets;
"All results are averaged over these different benchmark sets."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..programs import canonical_name, get
from ..programs.model import ProgramModel


@dataclass(frozen=True)
class WorkloadSet:
    """One concrete set of co-executing workload programs."""

    name: str
    size: str  # "small" | "large"
    program_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.size not in ("small", "large"):
            raise ValueError(f"unknown workload size {self.size!r}")
        if not self.program_names:
            raise ValueError(f"workload set {self.name!r} is empty")

    def programs(self) -> List[ProgramModel]:
        """Resolve to program models (paper aliases accepted)."""
        return [get(name) for name in self.program_names]

    @property
    def canonical_names(self) -> Tuple[str, ...]:
        return tuple(canonical_name(n) for n in self.program_names)


#: Table 3: workload benchmarks.  Aliases (fft, bscholes, fmine) are
#: resolved by the program registry.
SMALL_WORKLOADS = (
    WorkloadSet("small-i", "small", ("is", "cg")),
    WorkloadSet("small-ii", "small", ("ammp", "fft")),
)

LARGE_WORKLOADS = (
    WorkloadSet("large-i", "large",
                ("bt", "sp", "equake", "is", "cg", "art")),
    WorkloadSet("large-ii", "large",
                ("bscholes", "lu", "bt", "sp", "fmine", "art", "mg")),
)

WORKLOAD_SETS = {
    "small": SMALL_WORKLOADS,
    "large": LARGE_WORKLOADS,
}


def workload_sets(size: str) -> Tuple[WorkloadSet, ...]:
    """The Table 3 sets for one workload size."""
    try:
        return WORKLOAD_SETS[size]
    except KeyError:
        raise KeyError(
            f"unknown workload size {size!r}; expected 'small' or 'large'"
        ) from None
