"""Workload churn: jobs arriving over time (Figure 1's reality).

The paper's evaluation keeps a fixed workload set that restarts until
the target finishes.  Real shared systems — the Figure 1 log — see jobs
*arrive and depart*.  This module generates Poisson job arrivals from a
benchmark pool so experiments can study mapping under churn
(:func:`repro.experiments.extensions` uses it; the engine supports it
through :class:`~repro.runtime.engine.JobSpec` ``start_time``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.policies.base import ThreadPolicy
from ..programs import registry
from ..programs.model import ProgramModel


@dataclass(frozen=True)
class Arrival:
    """One arriving job: which program, when, how big."""

    program: str
    start_time: float
    iterations_scale: float

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise ValueError("start_time cannot be negative")
        if self.iterations_scale <= 0:
            raise ValueError("iterations_scale must be positive")


def generate_arrivals(
    pool: Sequence[str],
    rate: float,
    horizon: float,
    seed: int = 0,
    size_range: tuple = (0.2, 0.6),
) -> List[Arrival]:
    """Poisson arrivals over ``[0, horizon)`` from a benchmark pool.

    ``rate`` is arrivals per simulated second; each arrival picks a
    program uniformly from the pool and a length scale uniformly from
    ``size_range`` (short-to-medium jobs dominate real queues).
    """
    if not pool:
        raise ValueError("pool must not be empty")
    if rate <= 0:
        raise ValueError("rate must be positive")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    low, high = size_range
    if not 0.0 < low <= high:
        raise ValueError("bad size_range")
    for name in pool:
        registry.get(name)  # fail fast on unknown benchmarks

    rng = np.random.default_rng(seed)
    arrivals: List[Arrival] = []
    time = float(rng.exponential(1.0 / rate))
    while time < horizon:
        arrivals.append(Arrival(
            program=str(rng.choice(list(pool))),
            start_time=time,
            iterations_scale=float(rng.uniform(low, high)),
        ))
        time += float(rng.exponential(1.0 / rate))
    return arrivals


def next_start_time(start_times: Sequence[float], time: float) -> float:
    """Earliest pending arrival strictly after ``time`` (inf if none).

    The event-driven engine treats the next job arrival as an event
    horizon: jobs with ``start_time <= time`` have already arrived, so
    only strictly-future start times bound how far a span may advance.
    """
    pending = [s for s in start_times if s > time]
    return min(pending) if pending else float("inf")


def arrival_jobs(
    arrivals: Sequence[Arrival],
    policy_factory: Callable[[], ThreadPolicy],
    id_prefix: str = "arr",
):
    """Materialise arrivals into engine job specs (one-shot, no restart)."""
    from ..core.training import scale_program
    from ..runtime.engine import JobSpec

    jobs = []
    for index, arrival in enumerate(arrivals):
        program = scale_program(
            registry.get(arrival.program), arrival.iterations_scale,
        )
        jobs.append(JobSpec(
            program=program,
            policy=policy_factory(),
            job_id=f"{id_prefix}{index}-{arrival.program}",
            start_time=arrival.start_time,
        ))
    return jobs
