"""Workload configurations and live-system traces."""

from .spec import (
    LARGE_WORKLOADS,
    SMALL_WORKLOADS,
    WORKLOAD_SETS,
    WorkloadSet,
    workload_sets,
)
from .trace import FIFTY_HOURS, LiveTrace, generate_live_trace

__all__ = [
    "FIFTY_HOURS",
    "LARGE_WORKLOADS",
    "LiveTrace",
    "SMALL_WORKLOADS",
    "WORKLOAD_SETS",
    "WorkloadSet",
    "generate_live_trace",
    "workload_sets",
]
