"""Live-system activity traces (Figure 1 and Section 7.5).

Figure 1 shows "real workload behavior derived from a log over a period
of 50 hours activity in a high performance computing system (2912 cores,
5824 H/W contexts, 24GB RAM)".  We generate a synthetic trace with the
same structural features:

* a diurnal base load (two day/night cycles over 50 h);
* Poisson job arrivals with log-normal sizes and durations (bursts);
* occasional large spikes (batch-queue drains);
* optionally, a hardware-failure window during which half the
  processors disappear (the Section 7.5 case study).

Section 7.5's scale-down rule — "the number of workload threads was
scaled down in proportion with the maximum number of processors" —
is :meth:`LiveTrace.scale_down`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..machine.availability import TraceAvailability
from ..machine.topology import HPC_SYSTEM, Topology

#: 50 hours, in seconds.
FIFTY_HOURS = 50 * 3600.0


@dataclass(frozen=True)
class LiveTrace:
    """A (time, active threads) demand trace on a large system."""

    times: Tuple[float, ...]
    threads: Tuple[int, ...]
    system: Topology = HPC_SYSTEM

    def __post_init__(self) -> None:
        if len(self.times) != len(self.threads):
            raise ValueError("times and threads must have equal length")
        if not self.times:
            raise ValueError("trace is empty")

    def window(self, start: float, end: float) -> "LiveTrace":
        """The sub-trace with start <= time < end."""
        pairs = [
            (t, n) for t, n in zip(self.times, self.threads)
            if start <= t < end
        ]
        if not pairs:
            raise ValueError(f"window [{start}, {end}) is empty")
        times, threads = zip(*pairs)
        return LiveTrace(times=times, threads=threads, system=self.system)

    def scale_down(self, max_processors: int) -> List[Tuple[float, int]]:
        """Scale thread demand to a smaller machine (Section 7.5 rule).

        Threads are scaled in proportion to the ratio of the small
        machine's processors to the large system's hardware contexts,
        clamped to at least one thread whenever the big system is busy.
        """
        if max_processors < 1:
            raise ValueError("max_processors must be >= 1")
        ratio = max_processors / self.system.hw_contexts
        scaled = []
        for time, threads in zip(self.times, self.threads):
            small = int(round(threads * ratio))
            if threads > 0:
                small = max(1, small)
            scaled.append((time, min(small, 4 * max_processors)))
        return scaled

    def availability_from_failure(
        self, max_processors: int, failure_start: float,
        failure_end: float
    ) -> TraceAvailability:
        """Availability schedule for the scaled-down case study."""
        points = []
        step = max(1.0, (self.times[-1] - self.times[0]) / 2000.0)
        t = self.times[0]
        while t <= self.times[-1]:
            count = max_processors
            if failure_start <= t < failure_end:
                count = max(1, max_processors // 2)
            points.append((t - self.times[0], count))
            t += step
        return TraceAvailability.from_pairs(points)


def generate_live_trace(
    seed: int = 2015,
    duration: float = FIFTY_HOURS,
    sample_period: float = 60.0,
    system: Topology = HPC_SYSTEM,
) -> LiveTrace:
    """Generate the Figure 1 style synthetic activity log."""
    rng = np.random.default_rng(seed)
    n_samples = int(duration // sample_period) + 1
    times = np.arange(n_samples) * sample_period

    capacity = system.hw_contexts
    # Diurnal base: busier during the "day" halves of each 24 h cycle.
    phase = 2.0 * math.pi * times / (24 * 3600.0)
    base = 0.25 * capacity * (1.0 + 0.6 * np.sin(phase - math.pi / 2))

    # Poisson batch-job arrivals layered on top.
    demand = np.zeros(n_samples)
    arrival_rate = 1.0 / 600.0  # one job every ~10 minutes
    expected_jobs = duration * arrival_rate
    n_jobs = rng.poisson(expected_jobs)
    starts = rng.uniform(0.0, duration, size=n_jobs)
    sizes = np.minimum(
        rng.lognormal(mean=4.0, sigma=1.2, size=n_jobs), 0.4 * capacity
    )
    durations = rng.lognormal(mean=7.5, sigma=1.0, size=n_jobs)
    for start, size, job_duration in zip(starts, sizes, durations):
        lo = int(start // sample_period)
        hi = min(n_samples, int((start + job_duration) // sample_period) + 1)
        demand[lo:hi] += size

    # Rare queue-drain spikes.
    n_spikes = rng.poisson(6)
    for _ in range(n_spikes):
        at = int(rng.uniform(0, n_samples))
        width = int(rng.uniform(5, 40))
        demand[at:at + width] += rng.uniform(0.2, 0.5) * capacity

    total = np.clip(base + demand, 0, capacity).astype(int)
    return LiveTrace(
        times=tuple(float(t) for t in times),
        threads=tuple(int(v) for v in total),
        system=system,
    )
