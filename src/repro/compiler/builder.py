"""Fluent builder for constructing IR modules.

Benchmark program definitions in :mod:`repro.programs` use this builder to
write their kernels, e.g.::

    b = IRBuilder("cg")
    with b.function("conj_grad"):
        with b.parallel_loop("spmv", trip_count=75000,
                             access=AccessPattern.IRREGULAR):
            b.load("row"); b.load("col"); b.load("x")
            b.fmul(); b.fadd(); b.store("y")
            b.barrier()
    module = b.build()
"""

from __future__ import annotations

import contextlib
import itertools
from typing import Iterator, Optional

from .ir import (
    AccessPattern,
    Function,
    Instruction,
    Module,
    Opcode,
    ParallelLoop,
    Schedule,
)


class IRBuilderError(RuntimeError):
    """Raised on misuse of the builder (e.g. emitting outside a function)."""


class IRBuilder:
    """Incrementally constructs a :class:`~repro.compiler.ir.Module`."""

    def __init__(self, module_name: str):
        self._module = Module(name=module_name)
        self._function: Optional[Function] = None
        self._loop_stack: list[ParallelLoop] = []
        self._value_counter = itertools.count()

    # -- structure -------------------------------------------------------

    @contextlib.contextmanager
    def function(self, name: str) -> Iterator[Function]:
        """Open a function scope; instructions emitted inside belong to it."""
        if self._function is not None:
            raise IRBuilderError("functions cannot be nested")
        self._function = Function(name=name)
        try:
            yield self._function
        finally:
            self._module.functions.append(self._function)
            self._function = None

    @contextlib.contextmanager
    def parallel_loop(
        self,
        name: str,
        trip_count: int = 1,
        schedule: Schedule = Schedule.STATIC,
        access: AccessPattern = AccessPattern.REGULAR,
        reduction: bool = False,
    ) -> Iterator[ParallelLoop]:
        """Open a loop scope.

        At top level inside a function this creates a parallel loop; nested
        inside another loop it creates an inner (serial) loop whose counts
        are weighted by ``trip_count``.
        """
        if self._function is None:
            raise IRBuilderError("parallel_loop requires an open function")
        loop = ParallelLoop(
            name=name,
            trip_count=trip_count,
            schedule=schedule,
            access_pattern=access,
            has_reduction=reduction,
        )
        if self._loop_stack:
            self._loop_stack[-1].nested.append(loop)
        else:
            self._function.loops.append(loop)
        self._loop_stack.append(loop)
        try:
            yield loop
        finally:
            self._loop_stack.pop()

    def build(self, validate: bool = True, lint: bool = False) -> Module:
        """Finish construction and return the module.

        With ``lint=True`` the static-analysis rules of
        :mod:`repro.compiler.analysis` also run and any error-severity
        diagnostic (e.g. a racy store, rule R001) raises
        :class:`~repro.compiler.analysis.IRLintError`.
        """
        if self._function is not None:
            raise IRBuilderError("build() called with an open function")
        if validate:
            self._module.validate()
        if lint:
            from .analysis import IRLintError, Severity, lint_module

            diagnostics = lint_module(self._module)
            if any(d.severity is Severity.ERROR for d in diagnostics):
                raise IRLintError(diagnostics)
        return self._module

    # -- emission --------------------------------------------------------

    def emit(self, opcode: Opcode, *operands: str,
             result: Optional[str] = None) -> Instruction:
        """Emit one instruction into the innermost open scope."""
        if self._function is None:
            raise IRBuilderError("emit requires an open function")
        inst = Instruction(opcode=opcode, operands=tuple(operands),
                           result=result)
        if self._loop_stack:
            self._loop_stack[-1].body.append(inst)
        else:
            self._function.serial.append(inst)
        return inst

    def _fresh(self) -> str:
        return f"%v{next(self._value_counter)}"

    # Convenience emitters.  Each returns the emitted instruction; the
    # result name is synthesised so modules stay printable.

    def load(self, addr: str = "%mem") -> Instruction:
        return self.emit(Opcode.LOAD, addr, result=self._fresh())

    def store(self, addr: str = "%mem") -> Instruction:
        return self.emit(Opcode.STORE, addr)

    def gep(self, base: str = "%base") -> Instruction:
        return self.emit(Opcode.GEP, base, result=self._fresh())

    def add(self) -> Instruction:
        return self.emit(Opcode.ADD, result=self._fresh())

    def sub(self) -> Instruction:
        return self.emit(Opcode.SUB, result=self._fresh())

    def mul(self) -> Instruction:
        return self.emit(Opcode.MUL, result=self._fresh())

    def div(self) -> Instruction:
        return self.emit(Opcode.DIV, result=self._fresh())

    def fadd(self) -> Instruction:
        return self.emit(Opcode.FADD, result=self._fresh())

    def fsub(self) -> Instruction:
        return self.emit(Opcode.FSUB, result=self._fresh())

    def fmul(self) -> Instruction:
        return self.emit(Opcode.FMUL, result=self._fresh())

    def fdiv(self) -> Instruction:
        return self.emit(Opcode.FDIV, result=self._fresh())

    def fma(self) -> Instruction:
        return self.emit(Opcode.FMA, result=self._fresh())

    def sqrt(self) -> Instruction:
        return self.emit(Opcode.SQRT, result=self._fresh())

    def cmp(self) -> Instruction:
        return self.emit(Opcode.CMP, result=self._fresh())

    def branch(self) -> Instruction:
        return self.emit(Opcode.BRANCH)

    def cond_branch(self) -> Instruction:
        return self.emit(Opcode.COND_BRANCH)

    def call(self, callee: str = "f") -> Instruction:
        return self.emit(Opcode.CALL, callee, result=self._fresh())

    def barrier(self) -> Instruction:
        return self.emit(Opcode.BARRIER)

    def atomic(self) -> Instruction:
        return self.emit(Opcode.ATOMIC)

    def critical(self) -> Instruction:
        return self.emit(Opcode.CRITICAL)

    def reduce(self) -> Instruction:
        return self.emit(Opcode.REDUCE)
