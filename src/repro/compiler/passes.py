"""Analysis passes over the IR.

Mirrors the structure of a compiler pass pipeline: each pass consumes a
:class:`~repro.compiler.ir.Module` (or a single loop) and produces a named
analysis result.  The static feature extractor composes these passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable

from .ir import (
    AccessPattern,
    BRANCH_OPCODES,
    FLOAT_OPCODES,
    INT_OPCODES,
    MEMORY_OPCODES,
    Module,
    Opcode,
    ParallelLoop,
    Schedule,
    SYNC_OPCODES,
)


@dataclass(frozen=True)
class LoopAnalysis:
    """Per-parallel-loop analysis summary (dynamic, trip-count weighted)."""

    name: str
    total: int
    memory_ops: int
    loads: int
    stores: int
    branches: int
    float_ops: int
    int_ops: int
    sync_ops: int
    calls: int
    depth: int
    trip_count: int
    schedule: Schedule
    access_pattern: AccessPattern
    has_reduction: bool

    @property
    def memory_intensity(self) -> float:
        """Fraction of dynamic instructions that touch memory."""
        return self.memory_ops / self.total if self.total else 0.0

    @property
    def branch_intensity(self) -> float:
        return self.branches / self.total if self.total else 0.0

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per memory operation (the roofline-model x axis)."""
        if self.memory_ops == 0:
            return float(self.float_ops)
        return self.float_ops / self.memory_ops

    @property
    def sync_intensity(self) -> float:
        return self.sync_ops / self.total if self.total else 0.0


def analyze_loop(loop: ParallelLoop) -> LoopAnalysis:
    """Run all per-loop analyses and bundle the results."""

    def dyn(predicate: Callable) -> int:
        return loop.dynamic_count(predicate)

    total = loop.dynamic_count()
    return LoopAnalysis(
        name=loop.name,
        total=total,
        memory_ops=dyn(lambda i: i.opcode in MEMORY_OPCODES),
        loads=dyn(lambda i: i.opcode is Opcode.LOAD),
        stores=dyn(lambda i: i.opcode is Opcode.STORE),
        branches=dyn(lambda i: i.opcode in BRANCH_OPCODES),
        float_ops=dyn(lambda i: i.opcode in FLOAT_OPCODES),
        int_ops=dyn(lambda i: i.opcode in INT_OPCODES),
        sync_ops=dyn(lambda i: i.opcode in SYNC_OPCODES),
        calls=dyn(lambda i: i.opcode is Opcode.CALL),
        depth=loop.depth,
        trip_count=loop.trip_count,
        schedule=loop.schedule,
        access_pattern=loop.access_pattern,
        has_reduction=loop.has_reduction,
    )


@dataclass(frozen=True)
class ModuleAnalysis:
    """Whole-module analysis: totals plus per-loop summaries."""

    name: str
    total_instructions: int
    serial_instructions: int
    loops: Dict[str, LoopAnalysis]

    @property
    def parallel_instructions(self) -> int:
        return sum(loop.total for loop in self.loops.values())

    @property
    def parallel_fraction(self) -> float:
        """Static estimate of Amdahl's parallel fraction."""
        if self.total_instructions == 0:
            return 0.0
        return self.parallel_instructions / self.total_instructions


def analyze_module(module: Module) -> ModuleAnalysis:
    """Analyse every parallel loop plus the serial remainder."""
    loops: Dict[str, LoopAnalysis] = {}
    serial = 0
    for function in module.functions:
        serial += len(function.serial)
        for loop in function.loops:
            analysis = analyze_loop(loop)
            if analysis.name in loops:
                raise ValueError(
                    f"module {module.name!r}: duplicate loop name "
                    f"{analysis.name!r}"
                )
            loops[analysis.name] = analysis
    total = serial + sum(a.total for a in loops.values())
    return ModuleAnalysis(
        name=module.name,
        total_instructions=total,
        serial_instructions=serial,
        loops=loops,
    )


class PassManager:
    """Caches module analyses, mimicking a compiler analysis manager."""

    def __init__(self) -> None:
        self._cache: Dict[int, ModuleAnalysis] = {}

    def get(self, module: Module) -> ModuleAnalysis:
        key = id(module)
        if key not in self._cache:
            self._cache[key] = analyze_module(module)
        return self._cache[key]

    def invalidate(self, module: Module) -> None:
        self._cache.pop(id(module), None)

    def analyze_many(self, modules: Iterable[Module]) -> Dict[str, ModuleAnalysis]:
        return {m.name: self.get(m) for m in modules}
