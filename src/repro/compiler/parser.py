"""Textual IR parser: the inverse of :func:`repro.compiler.ir.format_module`.

Lets benchmark kernels be written (or dumped, hand-edited and re-read)
as text::

    module saxpy {
      func main() {
        %v0 = call init
        parallel_loop axpy [trip=1000, sched=static, access=regular] {
          %v1 = load %x
          %v2 = fmul
          store %y
        }
      }
    }

The grammar is line-oriented: one instruction or structural token per
line.  Loop headers carry the bracketed attribute list emitted by the
printer; all attributes are optional and default to the dataclass
defaults.  Parse errors carry line numbers.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .ir import (
    AccessPattern,
    Function,
    Instruction,
    Module,
    Opcode,
    ParallelLoop,
    Schedule,
)


class IRParseError(ValueError):
    """Raised on malformed textual IR, with a line number."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


_MODULE_RE = re.compile(r"^module\s+(\S+)\s*\{$")
_FUNC_RE = re.compile(r"^func\s+(\S+?)\(\)\s*\{$")
_LOOP_RE = re.compile(
    r"^parallel_loop\s+(\S+)\s*(?:\[(.*)\])?\s*\{$"
)
_INST_RE = re.compile(
    r"^(?:(%\S+)\s*=\s*)?([a-z_]+)\s*(.*)$"
)

_OPCODES_BY_NAME = {op.value: op for op in Opcode}


def _parse_loop_attrs(
    raw: str, line_number: int
) -> Tuple[int, Schedule, AccessPattern, bool]:
    trip = 1
    schedule = Schedule.STATIC
    access = AccessPattern.REGULAR
    reduction = False
    for part in filter(None, (p.strip() for p in raw.split(","))):
        if part == "reduction":
            reduction = True
            continue
        if "=" not in part:
            raise IRParseError(
                line_number, f"malformed loop attribute {part!r}"
            )
        key, _, value = part.partition("=")
        key, value = key.strip(), value.strip()
        try:
            if key == "trip":
                trip = int(value)
            elif key == "sched":
                schedule = Schedule(value)
            elif key == "access":
                access = AccessPattern(value)
            else:
                raise IRParseError(
                    line_number, f"unknown loop attribute {key!r}"
                )
        except ValueError as error:
            if isinstance(error, IRParseError):
                raise
            raise IRParseError(
                line_number, f"bad value for {key!r}: {value!r}"
            ) from None
    return trip, schedule, access, reduction


def _parse_instruction(line: str, line_number: int) -> Instruction:
    match = _INST_RE.match(line)
    if not match:
        raise IRParseError(line_number, f"malformed instruction {line!r}")
    result, opcode_name, operand_text = match.groups()
    opcode = _OPCODES_BY_NAME.get(opcode_name)
    if opcode is None:
        raise IRParseError(
            line_number, f"unknown opcode {opcode_name!r}"
        )
    operands = tuple(
        part.strip() for part in operand_text.split(",")
        if part.strip()
    ) if operand_text.strip() else ()
    return Instruction(opcode=opcode, operands=operands, result=result)


def parse_module(
    text: str, validate: bool = True, lint: bool = False
) -> Module:
    """Parse a textual module back into IR.

    Round-trip property: ``parse_module(format_module(m))`` equals ``m``
    structurally (checked by the test suite, including by hypothesis).

    With ``lint=True`` the static-analysis rules of
    :mod:`repro.compiler.analysis` run on the parsed module and any
    error-severity diagnostic raises
    :class:`~repro.compiler.analysis.IRLintError`.
    """
    module: Optional[Module] = None
    function: Optional[Function] = None
    loop_stack: List[ParallelLoop] = []
    closed = False

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if closed:
            raise IRParseError(line_number, "content after module end")

        if module is None:
            match = _MODULE_RE.match(line)
            if not match:
                raise IRParseError(
                    line_number, "expected 'module <name> {'"
                )
            module = Module(name=match.group(1))
            continue

        if line == "}":
            if loop_stack:
                loop_stack.pop()
            elif function is not None:
                module.functions.append(function)
                function = None
            else:
                closed = True
            continue

        match = _FUNC_RE.match(line)
        if match:
            if function is not None:
                raise IRParseError(line_number, "nested function")
            function = Function(name=match.group(1))
            continue

        match = _LOOP_RE.match(line)
        if match:
            if function is None:
                raise IRParseError(
                    line_number, "parallel_loop outside a function"
                )
            name, attrs = match.group(1), match.group(2) or ""
            trip, schedule, access, reduction = _parse_loop_attrs(
                attrs, line_number,
            )
            loop = ParallelLoop(
                name=name, trip_count=trip, schedule=schedule,
                access_pattern=access, has_reduction=reduction,
            )
            if loop_stack:
                loop_stack[-1].nested.append(loop)
            else:
                function.loops.append(loop)
            loop_stack.append(loop)
            continue

        # Otherwise: an instruction.
        if function is None:
            raise IRParseError(
                line_number, f"instruction outside a function: {line!r}"
            )
        inst = _parse_instruction(line, line_number)
        if loop_stack:
            loop_stack[-1].body.append(inst)
        else:
            function.serial.append(inst)

    if module is None:
        raise IRParseError(0, "empty input")
    if not closed:
        raise IRParseError(0, "unexpected end of input (missing '}')")
    if validate:
        module.validate()
    if lint:
        from .analysis import IRLintError, Severity, lint_module

        diagnostics = lint_module(module)
        if any(d.severity is Severity.ERROR for d in diagnostics):
            raise IRLintError(diagnostics)
    return module
