"""Mini compiler substrate: loop IR, builder, analysis passes, features.

Stands in for the paper's LLVM-based static feature extraction
(Section 5.2.2): benchmark programs are written as IR modules and every
static code feature used by the predictive models is computed from the IR.
"""

from .ir import (
    AccessPattern,
    Function,
    Instruction,
    IRValidationError,
    Module,
    Opcode,
    ParallelLoop,
    Schedule,
    format_module,
)
from .builder import IRBuilder, IRBuilderError
from .passes import (
    LoopAnalysis,
    ModuleAnalysis,
    PassManager,
    analyze_loop,
    analyze_module,
)
from .features import (
    CODE_FEATURE_NAMES,
    CodeFeatures,
    extract_code_features,
    extract_raw_loop_features,
    raw_code_feature_names,
)
from .analysis import (
    Diagnostic,
    IRLintError,
    Linter,
    LintRule,
    Location,
    Severity,
    all_rules,
    lint_module,
)

__all__ = [
    "AccessPattern",
    "CODE_FEATURE_NAMES",
    "CodeFeatures",
    "Diagnostic",
    "Function",
    "IRBuilder",
    "IRBuilderError",
    "IRLintError",
    "IRValidationError",
    "Instruction",
    "LintRule",
    "Linter",
    "Location",
    "LoopAnalysis",
    "Module",
    "ModuleAnalysis",
    "Opcode",
    "ParallelLoop",
    "PassManager",
    "Schedule",
    "Severity",
    "all_rules",
    "analyze_loop",
    "analyze_module",
    "extract_code_features",
    "extract_raw_loop_features",
    "format_module",
    "lint_module",
    "raw_code_feature_names",
]
