"""A miniature loop-oriented intermediate representation.

The paper extracts static code features "available within our LLVM-based
compiler".  We reproduce that pipeline with a small IR: benchmark programs
are *written as IR modules* (see :mod:`repro.programs`), and every static
code feature that reaches a predictive model is *computed* from the IR by
analysis passes (:mod:`repro.compiler.passes`) and the feature extractor
(:mod:`repro.compiler.features`), never hard-coded.

The IR is deliberately simple: a :class:`Module` contains
:class:`Function`'s, a function contains straight-line serial code and
:class:`ParallelLoop`'s, and a loop body is a flat list of
:class:`Instruction`'s plus optional nested loops.  This is the granularity
the paper's feature set needs (load/store, instruction and branch counts at
each parallel loop), with enough structure (nesting, schedules, access
patterns) for the richer raw feature set of Section 5.2.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple


class Opcode(enum.Enum):
    """Instruction opcodes, grouped loosely by LLVM's categories."""

    # Memory
    LOAD = "load"
    STORE = "store"
    GEP = "gep"  # address computation
    PREFETCH = "prefetch"
    # Integer arithmetic
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    SHIFT = "shift"
    BITOP = "bitop"
    # Floating point
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMA = "fma"
    SQRT = "sqrt"
    # Control
    BRANCH = "br"
    COND_BRANCH = "condbr"
    SWITCH = "switch"
    CALL = "call"
    RET = "ret"
    PHI = "phi"
    CMP = "cmp"
    SELECT = "select"
    # Parallel / synchronisation
    BARRIER = "barrier"
    ATOMIC = "atomic"
    CRITICAL = "critical"
    REDUCE = "reduce"


#: Opcodes counted as memory operations by the extractor.
MEMORY_OPCODES = frozenset(
    {Opcode.LOAD, Opcode.STORE, Opcode.GEP, Opcode.PREFETCH}
)

#: Opcodes counted as branches (f^3 in the paper).
BRANCH_OPCODES = frozenset(
    {Opcode.BRANCH, Opcode.COND_BRANCH, Opcode.SWITCH}
)

#: Opcodes counted as floating-point arithmetic.
FLOAT_OPCODES = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FMA,
     Opcode.SQRT}
)

#: Opcodes counted as integer arithmetic.
INT_OPCODES = frozenset(
    {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
     Opcode.SHIFT, Opcode.BITOP}
)

#: Opcodes that synchronise threads.
SYNC_OPCODES = frozenset(
    {Opcode.BARRIER, Opcode.ATOMIC, Opcode.CRITICAL, Opcode.REDUCE}
)


class AccessPattern(enum.Enum):
    """Dominant memory access pattern of a loop body.

    ``IRREGULAR`` marks the indirect/gather-style accesses the paper calls
    out for cg/mg/art ("irregular memory accesses and barriers").
    """

    REGULAR = "regular"
    STRIDED = "strided"
    IRREGULAR = "irregular"


class Schedule(enum.Enum):
    """OpenMP-style loop schedule."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


@dataclass(frozen=True)
class Instruction:
    """One IR instruction.

    Operands are opaque value names; the feature extractor only looks at
    opcodes, so operands exist to make modules readable and printable.
    """

    opcode: Opcode
    operands: Tuple[str, ...] = ()
    result: Optional[str] = None

    def __str__(self) -> str:
        ops = ", ".join(self.operands)
        if self.result is not None:
            return f"{self.result} = {self.opcode.value} {ops}".rstrip()
        return f"{self.opcode.value} {ops}".rstrip()

    @property
    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPCODES

    @property
    def is_branch(self) -> bool:
        return self.opcode in BRANCH_OPCODES

    @property
    def is_sync(self) -> bool:
        return self.opcode in SYNC_OPCODES


@dataclass
class ParallelLoop:
    """A parallel loop (an ``omp parallel for`` region).

    ``body`` holds the instructions of one iteration; ``trip_count`` is the
    compiler's (static) iteration-count estimate.  ``nested`` holds inner
    serial loops, whose instruction counts are weighted by their own trip
    counts when totals are computed.
    """

    name: str
    body: list[Instruction] = field(default_factory=list)
    trip_count: int = 1
    nested: list["ParallelLoop"] = field(default_factory=list)
    schedule: Schedule = Schedule.STATIC
    access_pattern: AccessPattern = AccessPattern.REGULAR
    has_reduction: bool = False

    def instructions(self) -> Iterator[Instruction]:
        """Yield all instructions, including nested loops', once each."""
        yield from self.body
        for inner in self.nested:
            yield from inner.instructions()

    def weighted_count(self, predicate=None) -> int:
        """Count dynamic instruction executions for one outer iteration.

        Nested loop bodies are multiplied by their trip counts.  With
        ``predicate`` given, only matching instructions are counted.
        """
        count = sum(
            1 for inst in self.body if predicate is None or predicate(inst)
        )
        for inner in self.nested:
            count += inner.trip_count * inner.weighted_count(predicate)
        return count

    def dynamic_count(self, predicate=None) -> int:
        """Count dynamic instruction executions across all iterations."""
        return self.trip_count * self.weighted_count(predicate)

    @property
    def depth(self) -> int:
        """Maximum loop-nest depth rooted at this loop."""
        if not self.nested:
            return 1
        return 1 + max(inner.depth for inner in self.nested)

    def validate(self) -> None:
        """Raise :class:`IRValidationError` if the loop is malformed."""
        if self.trip_count < 1:
            raise IRValidationError(
                f"loop {self.name!r}: trip_count must be >= 1, "
                f"got {self.trip_count}"
            )
        if not self.body and not self.nested:
            raise IRValidationError(f"loop {self.name!r} has an empty body")
        for inner in self.nested:
            inner.validate()


@dataclass
class Function:
    """A function: serial preamble instructions plus parallel loops."""

    name: str
    serial: list[Instruction] = field(default_factory=list)
    loops: list[ParallelLoop] = field(default_factory=list)

    def instructions(self) -> Iterator[Instruction]:
        yield from self.serial
        for loop in self.loops:
            yield from loop.instructions()

    def validate(self) -> None:
        for loop in self.loops:
            loop.validate()


@dataclass
class Module:
    """A whole program in IR form."""

    name: str
    functions: list[Function] = field(default_factory=list)

    def instructions(self) -> Iterator[Instruction]:
        for function in self.functions:
            yield from function.instructions()

    def parallel_loops(self) -> Iterator[ParallelLoop]:
        for function in self.functions:
            yield from function.loops

    def function(self, name: str) -> Function:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"module {self.name!r} has no function {name!r}")

    def validate(self, *, check_races: bool = False) -> None:
        """Validate the whole module; raise on malformed IR.

        With ``check_races=True`` the structural checks are followed by
        the dependence analysis of :mod:`repro.analysis.deps`: any
        top-level parallel loop whose :class:`ParallelSafety` verdict is
        ``RACY`` fails validation, with the confirmed/possible race
        dependences spelled out in the error message.  ``ORDERED``
        loops (constant-distance loop-carried dependences) pass — they
        are legal under sequential iteration order, which is the
        scheduler's call, not the IR's.
        """
        if not self.functions:
            raise IRValidationError(f"module {self.name!r} has no functions")
        seen: set[str] = set()
        loop_names: set[str] = set()

        def check_loop_names(loop: "ParallelLoop") -> None:
            # Loops are resolved by name module-wide (analysis passes,
            # extract_code_features), so names must be unique across
            # functions and nesting levels, not just within one list.
            if loop.name in loop_names:
                raise IRValidationError(
                    f"module {self.name!r}: duplicate parallel loop "
                    f"{loop.name!r}"
                )
            loop_names.add(loop.name)
            for inner in loop.nested:
                check_loop_names(inner)

        for function in self.functions:
            if function.name in seen:
                raise IRValidationError(
                    f"module {self.name!r}: duplicate function "
                    f"{function.name!r}"
                )
            seen.add(function.name)
            function.validate()
            for loop in function.loops:
                check_loop_names(loop)

        if check_races:
            self._check_races()

    def _check_races(self) -> None:
        # Imported lazily: repro.analysis.deps imports this module.
        from ..analysis.deps import ParallelSafety, analyze_dependences

        report = analyze_dependences(self)
        racy = sorted(
            name
            for name, loop in report.loops.items()
            if loop.verdict is ParallelSafety.RACY
        )
        if not racy:
            return
        witnesses = "; ".join(
            dep.describe()
            for dep in (
                report.confirmed_races() + report.possible_races()
            )
        )
        raise IRValidationError(
            f"module {self.name!r}: parallel loop(s) "
            f"{', '.join(repr(n) for n in racy)} are RACY: {witnesses}"
        )

    def __str__(self) -> str:
        return format_module(self)


class IRValidationError(ValueError):
    """Raised when a module violates IR structural invariants."""


def format_module(module: Module) -> str:
    """Pretty-print a module in a vaguely LLVM-ish textual form."""
    lines = [f"module {module.name} {{"]
    for function in module.functions:
        lines.append(f"  func {function.name}() {{")
        for inst in function.serial:
            lines.append(f"    {inst}")
        for loop in function.loops:
            lines.extend(_format_loop(loop, indent=4))
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def _format_loop(loop: ParallelLoop, indent: int) -> list[str]:
    pad = " " * indent
    header = (
        f"{pad}parallel_loop {loop.name} "
        f"[trip={loop.trip_count}, sched={loop.schedule.value}, "
        f"access={loop.access_pattern.value}"
        + (", reduction" if loop.has_reduction else "")
        + "] {"
    )
    lines = [header]
    for inst in loop.body:
        lines.append(f"{pad}  {inst}")
    for inner in loop.nested:
        lines.extend(_format_loop(inner, indent + 2))
    lines.append(f"{pad}}}")
    return lines


def count_instructions(
    items: Sequence[Instruction], predicate=None
) -> int:
    """Count instructions in a flat sequence, optionally filtered."""
    return sum(1 for inst in items if predicate is None or predicate(inst))
