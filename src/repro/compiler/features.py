"""Static code feature extraction.

The paper collects 134 raw features "comprising of many code (c) and
environment (e) parameters available within our LLVM-based compiler and
Linux", then selects 10 by information gain.  This module provides the
*code* half: per-parallel-loop raw features computed from the IR, and the
three canonical code features that survive selection:

* ``f1`` load/store count, ``f2`` instructions, ``f3`` branches —
  each **normalized to the total number of instructions in the program**
  (Section 5.2.2).

The environment half lives in :mod:`repro.sched.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .ir import Module, Opcode, ParallelLoop, Schedule, AccessPattern
from .passes import LoopAnalysis, ModuleAnalysis, analyze_loop, analyze_module

#: Names of the canonical code features (f^1..f^3 of Table 1).
CODE_FEATURE_NAMES = ("load_store_count", "instructions", "branches")


@dataclass(frozen=True)
class CodeFeatures:
    """The canonical 3 code features of a parallel loop.

    All three are normalized to the total dynamic instruction count of the
    enclosing program, so they are dimensionless and comparable across
    programs (the example vectors in Section 5.4 have code entries around
    0.01-0.2).
    """

    load_store_count: float
    instructions: float
    branches: float

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.load_store_count, self.instructions, self.branches)


def extract_code_features(
    module: Module, loop_name: str, analysis: ModuleAnalysis | None = None
) -> CodeFeatures:
    """Extract f1..f3 for one parallel loop of ``module``."""
    if analysis is None:
        analysis = analyze_module(module)
    try:
        loop = analysis.loops[loop_name]
    except KeyError:
        raise KeyError(
            f"module {module.name!r} has no parallel loop {loop_name!r}"
        ) from None
    total = max(analysis.total_instructions, 1)
    return CodeFeatures(
        load_store_count=(loop.loads + loop.stores) / total,
        instructions=loop.total / total,
        branches=loop.branches / total,
    )


def extract_raw_loop_features(
    module: Module, loop: ParallelLoop
) -> Dict[str, float]:
    """Extract the full raw static feature dictionary for one loop.

    These are the code-side candidates that enter information-gain
    selection (:mod:`repro.core.feature_selection`).  The union of these
    with the raw environment counters reproduces the paper's 134-feature
    candidate pool.
    """
    analysis = analyze_loop(loop)
    mod_analysis = analyze_module(module)
    total = max(analysis.total, 1)
    prog_total = max(mod_analysis.total_instructions, 1)

    features: Dict[str, float] = {
        # The canonical three (program-normalized).
        "code.load_store_count": (analysis.loads + analysis.stores) / prog_total,
        "code.instructions": analysis.total / prog_total,
        "code.branches": analysis.branches / prog_total,
        # Absolute dynamic counts.
        "code.raw.total": float(analysis.total),
        "code.raw.loads": float(analysis.loads),
        "code.raw.stores": float(analysis.stores),
        "code.raw.memory_ops": float(analysis.memory_ops),
        "code.raw.branches": float(analysis.branches),
        "code.raw.float_ops": float(analysis.float_ops),
        "code.raw.int_ops": float(analysis.int_ops),
        "code.raw.sync_ops": float(analysis.sync_ops),
        "code.raw.calls": float(analysis.calls),
        # Intensities (loop-normalized).
        "code.memory_intensity": analysis.memory_intensity,
        "code.branch_intensity": analysis.branch_intensity,
        "code.arithmetic_intensity": analysis.arithmetic_intensity,
        "code.sync_intensity": analysis.sync_intensity,
        "code.float_fraction": analysis.float_ops / total,
        "code.int_fraction": analysis.int_ops / total,
        "code.call_fraction": analysis.calls / total,
        "code.load_fraction": analysis.loads / total,
        "code.store_fraction": analysis.stores / total,
        "code.load_store_ratio": (
            analysis.loads / analysis.stores if analysis.stores else 0.0
        ),
        # Structure.
        "code.trip_count": float(analysis.trip_count),
        "code.loop_depth": float(analysis.depth),
        "code.body_size": float(loop.weighted_count()),
        "code.has_reduction": 1.0 if analysis.has_reduction else 0.0,
        "code.schedule_static": 1.0 if analysis.schedule is Schedule.STATIC else 0.0,
        "code.schedule_dynamic": 1.0 if analysis.schedule is Schedule.DYNAMIC else 0.0,
        "code.schedule_guided": 1.0 if analysis.schedule is Schedule.GUIDED else 0.0,
        "code.access_regular": (
            1.0 if analysis.access_pattern is AccessPattern.REGULAR else 0.0
        ),
        "code.access_strided": (
            1.0 if analysis.access_pattern is AccessPattern.STRIDED else 0.0
        ),
        "code.access_irregular": (
            1.0 if analysis.access_pattern is AccessPattern.IRREGULAR else 0.0
        ),
        # Module-level context.
        "code.module_parallel_fraction": mod_analysis.parallel_fraction,
        "code.module_total": float(mod_analysis.total_instructions),
        "code.module_serial": float(mod_analysis.serial_instructions),
        "code.module_num_loops": float(len(mod_analysis.loops)),
    }
    # Per-opcode dynamic counts, one feature each — this is where most of
    # the "many parameters" of the raw pool come from.
    for opcode in Opcode:
        features[f"code.opcount.{opcode.value}"] = float(
            loop.dynamic_count(lambda i, op=opcode: i.opcode is op)
        )
    return features


def raw_code_feature_names() -> list[str]:
    """Names of all raw code features, in deterministic order."""
    from .builder import IRBuilder  # local import to avoid cycle at import

    builder = IRBuilder("probe")
    with builder.function("f"):
        with builder.parallel_loop("l", trip_count=2):
            builder.load()
            builder.store()
            builder.fadd()
            builder.branch()
    module = builder.build()
    loop = next(module.parallel_loops())
    return sorted(extract_raw_loop_features(module, loop))
