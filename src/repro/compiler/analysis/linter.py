"""The :class:`Linter`: composes rule passes into one diagnostics run.

Library entry points::

    from repro.compiler.analysis import lint_module

    diagnostics = lint_module(module)            # all rules
    diagnostics = lint_module(module, select={"R001"})
    diagnostics = lint_module(module, ignore={"R005"})

Structural validation runs first: a module that fails
:meth:`~repro.compiler.ir.Module.validate` produces a single ``R000``
error diagnostic (rules assume a structurally valid module and are
skipped).  ``R000`` is therefore a pseudo-code: it cannot be selected
or ignored.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from ..ir import IRValidationError, Module
from .diagnostics import (
    Diagnostic,
    Location,
    Severity,
    is_failure,
    max_severity,
)
from .rules import LintRule, all_rules, get_rule

#: Pseudo rule code for structural validation failures.
VALIDATION_CODE = "R000"


class Linter:
    """Runs a (sub)set of the registered rules over modules."""

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ):
        """Restrict the rule set.

        ``select`` keeps only the listed rule codes; ``ignore`` drops
        the listed codes afterwards.  Unknown codes raise ``KeyError``
        immediately, so typos fail loudly rather than silently linting
        with the wrong rule set.
        """
        rules = all_rules()
        if select is not None:
            selected = {get_rule(code).code for code in select}
            rules = [r for r in rules if r.code in selected]
        if ignore is not None:
            ignored = {get_rule(code).code for code in ignore}
            rules = [r for r in rules if r.code not in ignored]
        self.rules: List[LintRule] = rules

    def lint(self, module: Module) -> List[Diagnostic]:
        """All diagnostics for one module, location-major order.

        Exact duplicates are dropped: independent rules backed by the
        same underlying analysis can legitimately derive the same
        finding, and reporting it twice adds noise without information.
        """
        try:
            module.validate()
        except IRValidationError as error:
            return [Diagnostic(
                code=VALIDATION_CODE,
                severity=Severity.ERROR,
                message=f"structural validation failed: {error}",
                location=Location(module.name),
            )]
        diagnostics: List[Diagnostic] = []
        for lint_rule in self.rules:
            diagnostics.extend(lint_rule.check(module))
        diagnostics = list(dict.fromkeys(diagnostics))
        diagnostics.sort(key=Diagnostic.sort_key)
        return diagnostics

    def lint_many(
        self, modules: Iterable[Module]
    ) -> Dict[str, List[Diagnostic]]:
        """Lint several modules; mapping preserves input order."""
        return {m.name: self.lint(m) for m in modules}


def lint_module(
    module: Module,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Diagnostic]:
    """Lint one module with the full (or a restricted) rule set."""
    return Linter(select=select, ignore=ignore).lint(module)


#: Issue-facing alias: "analyze_module(module) -> list[Diagnostic]".
#: Distinct from :func:`repro.compiler.passes.analyze_module`, which
#: computes instruction-count analyses; import from this package
#: explicitly when you want diagnostics.
analyze_module = lint_module


def summarize(
    results: Mapping[str, List[Diagnostic]], strict: bool = False
) -> Dict[str, int]:
    """Severity counts plus the gate verdict over a multi-module run."""
    flat = [d for diagnostics in results.values() for d in diagnostics]
    return {
        "modules": len(results),
        "errors": sum(
            1 for d in flat if d.severity is Severity.ERROR
        ),
        "warnings": sum(
            1 for d in flat if d.severity is Severity.WARNING
        ),
        "infos": sum(1 for d in flat if d.severity is Severity.INFO),
        "failed": sum(
            1 for diagnostics in results.values()
            if is_failure(diagnostics, strict=strict)
        ),
    }


__all__ = [
    "Linter",
    "VALIDATION_CODE",
    "analyze_module",
    "is_failure",
    "lint_module",
    "max_severity",
    "summarize",
]
