"""Rendering lint results as text or JSON.

Follows the conventions of :mod:`repro.reporting`: text output is a
stream of ``location: code severity: message`` lines plus a
:func:`~repro.reporting.render_table` summary; JSON output goes through
:func:`~repro.reporting.render_json` so every CLI surface serialises
identically.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ...reporting import render_json, render_table
from .diagnostics import Diagnostic, Severity
from .linter import is_failure, summarize


def render_diagnostics_text(
    results: Mapping[str, List[Diagnostic]], strict: bool = False
) -> str:
    """Human-readable lint report: one line per finding, then a table."""
    lines: List[str] = []
    for name, diagnostics in results.items():
        for diagnostic in diagnostics:
            lines.append(str(diagnostic))
    summary = summarize(results, strict=strict)
    rows = []
    for name, diagnostics in sorted(results.items()):
        errors = sum(1 for d in diagnostics
                     if d.severity is Severity.ERROR)
        warnings = sum(1 for d in diagnostics
                       if d.severity is Severity.WARNING)
        infos = sum(1 for d in diagnostics
                    if d.severity is Severity.INFO)
        verdict = "FAIL" if is_failure(diagnostics, strict=strict) else "ok"
        rows.append((name, errors, warnings, infos, verdict))
    if lines:
        lines.append("")
    lines.append(render_table(
        headers=("module", "errors", "warnings", "infos", "verdict"),
        rows=rows,
    ))
    lines.append(
        f"{summary['modules']} module(s): {summary['errors']} error(s), "
        f"{summary['warnings']} warning(s), {summary['infos']} info(s)"
        + (" [strict]" if strict else "")
    )
    return "\n".join(lines)


def diagnostics_payload(
    results: Mapping[str, List[Diagnostic]], strict: bool = False
) -> Dict[str, object]:
    """JSON-ready payload for a multi-module lint run."""
    return {
        "strict": strict,
        "modules": [
            {
                "module": name,
                "failed": is_failure(diagnostics, strict=strict),
                "diagnostics": [d.as_dict() for d in diagnostics],
            }
            for name, diagnostics in results.items()
        ],
        "summary": summarize(results, strict=strict),
    }


def render_diagnostics_json(
    results: Mapping[str, List[Diagnostic]], strict: bool = False
) -> str:
    """The JSON report (``repro lint --format json``)."""
    return render_json(diagnostics_payload(results, strict=strict))
