"""The built-in lint rule set (R001..R012).

Each rule is a generator ``(module) -> Iterator[Diagnostic]`` registered
with the :func:`rule` decorator.  Rules never mutate the module and are
independent of each other; the :class:`~repro.compiler.analysis.linter.
Linter` composes them.

Operand convention
------------------

The IR carries opaque operand names.  The rules interpret them with the
convention used throughout :mod:`repro.programs` and documented in
``docs/static_analysis.md``:

* operands starting with ``%`` are **thread-private**: virtual registers
  (``%v0``) or per-iteration memory handles (``%mem``, the builder's
  default address, which models a distinct element per iteration) —
  *unless* a reaching ``gep`` definition gives the register shared
  provenance (``%p = gep A`` makes ``%p`` an alias of ``A``);
* any other operand (``sum``, ``A[i]``, ``@hist``) names a **shared**
  memory location; subscripted operands follow the reference grammar of
  :mod:`repro.analysis.refs` (affine subscripts of the canonical
  induction variable ``i``, with ``n`` for the trip count).

The race rules R001/R011/R012 are backed by the cross-iteration
dependence analysis in :mod:`repro.analysis.deps` (reaching-definition
dataflow, may-alias base resolution, exact affine subscript tests):
R001 reports CONFIRMED races with a witness iteration pair, R011
reports POSSIBLE ones, and R012 reports constant-distance loop-carried
dependences that are safe only under ordered execution.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from ...analysis.deps import (
    AccessSite,
    Confidence,
    Dependence,
    LoopDependenceReport,
    Provenance,
    analyze_loop,
)
from ..ir import (
    Function,
    Instruction,
    Module,
    Opcode,
    ParallelLoop,
    AccessPattern,
    Schedule,
    SYNC_OPCODES,
)
from ..passes import analyze_module
from .diagnostics import Diagnostic, Location, Severity

RuleCheck = Callable[[Module], Iterator[Diagnostic]]

#: Operands matching this are virtual registers subject to def/use rules.
VREG_RE = re.compile(r"^%v\d+$")

#: Opcodes that protect the shared-memory update that follows them.
PROTECTING_OPCODES = frozenset({Opcode.ATOMIC, Opcode.CRITICAL})


def is_shared_operand(operand: str) -> bool:
    """Whether an operand names a shared memory location (see module doc)."""
    return not operand.startswith("%")


@dataclass(frozen=True)
class LintRule:
    """One registered rule: stable code, default severity, checker."""

    code: str
    name: str
    severity: Severity
    summary: str
    check: RuleCheck


_REGISTRY: Dict[str, LintRule] = {}


def rule(code: str, name: str, severity: Severity, summary: str):
    """Register a checker function as a lint rule."""

    def decorator(check: RuleCheck) -> RuleCheck:
        if code in _REGISTRY:
            raise ValueError(f"duplicate rule code {code!r}")
        _REGISTRY[code] = LintRule(
            code=code, name=name, severity=severity, summary=summary,
            check=check,
        )
        return check

    return decorator


def all_rules() -> List[LintRule]:
    """Every registered rule, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> LintRule:
    try:
        return _REGISTRY[code]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(
            f"unknown rule code {code!r}; known: {known}"
        ) from None


def _walk_loops(
    function: Function,
) -> Iterator[Tuple[ParallelLoop, str, ParallelLoop, int]]:
    """Yield ``(loop, dotted_path, top_level_loop, depth)`` for all loops."""

    def walk(loop: ParallelLoop, prefix: str, top: ParallelLoop,
             depth: int) -> Iterator[Tuple[ParallelLoop, str, ParallelLoop, int]]:
        path = f"{prefix}.{loop.name}" if prefix else loop.name
        yield loop, path, top, depth
        for inner in loop.nested:
            yield from walk(inner, path, top, depth + 1)

    for loop in function.loops:
        yield from walk(loop, "", loop, 1)


def _diag(registered_code: str, message: str, location: Location,
          severity: Optional[Severity] = None) -> Diagnostic:
    registered = _REGISTRY[registered_code]
    return Diagnostic(
        code=registered.code,
        severity=severity or registered.severity,
        message=message,
        location=location,
    )


# ---------------------------------------------------------------------------
# R001 / R011 / R012 — dependence-backed parallel-loop race detection
# ---------------------------------------------------------------------------

_SiteKey = Tuple[str, int, str]


def _loop_reports(
    module: Module,
) -> Iterator[Tuple[Function, ParallelLoop, LoopDependenceReport]]:
    """Yield the dependence report of every top-level parallel region."""
    for function in module.functions:
        for top in function.loops:
            yield function, top, analyze_loop(function, top)


def _confirmed_race_sites(
    report: LoopDependenceReport,
) -> Dict[_SiteKey, Tuple[AccessSite, Dependence]]:
    """The unprotected write sites carrying a CONFIRMED race.

    A CONFIRMED dependence with no constant distance is a race no
    iteration ordering repairs; each such write endpoint is flagged
    once (the first dependence in analysis order is the evidence).
    """
    flagged: Dict[_SiteKey, Tuple[AccessSite, Dependence]] = {}
    for dep in report.unprotected:
        if (dep.confidence is not Confidence.CONFIRMED
                or dep.distance is not None):
            continue
        for site in (dep.src, dep.dst):
            if site.is_write and not site.protected:
                key = (site.loop_path, site.index, site.ref.raw)
                flagged.setdefault(key, (site, dep))
    return flagged


@rule(
    "R001", "racy-store", Severity.ERROR,
    "confirmed cross-iteration data race on a shared location in a "
    "parallel loop",
)
def _racy_stores(module: Module) -> Iterator[Diagnostic]:
    """Report stores whose cross-iteration race the analysis *proved*.

    The dependence analysis (:mod:`repro.analysis.deps`) confirms a
    race when the affine subscript test finds two distinct iterations
    touching the same element of a shared base — scalar accumulators
    (``store sum``) being the degenerate every-iteration case — and no
    protection applies.  A store is protected when ``atomic`` or
    ``critical`` immediately precedes it (``#pragma omp atomic`` / a
    critical section around the update), or region-wide when the
    enclosing top-level loop is declared ``reduction`` and contains a
    ``reduce`` combine step.

    The diagnostic carries the witness iteration pair, and the loop's
    declared :class:`AccessPattern` is reported alongside: an irregular
    loop scattering into shared data is the classic race the paper's
    cg/mg/art codes must avoid.
    """
    for function, top, report in _loop_reports(module):
        for _key, (site, dep) in sorted(
            _confirmed_race_sites(report).items()
        ):
            assert dep.witness is not None  # CONFIRMED always has one
            yield _diag(
                "R001",
                f"store to shared location {site.ref.raw!r} in parallel "
                f"loop {top.name!r} "
                f"(access={top.access_pattern.value}) is a confirmed "
                f"{dep.kind.value} race: witness iterations "
                f"{dep.witness[0]} and {dep.witness[1]} touch "
                f"{dep.base!r} with no constant dependence distance and "
                f"no atomic/critical/reduction protection",
                Location(module.name, function.name, site.loop_path,
                         site.index),
            )


@rule(
    "R011", "possible-race", Severity.WARNING,
    "store that may race: opaque subscript or unresolvable pointer "
    "provenance",
)
def _possible_races(module: Module) -> Iterator[Diagnostic]:
    """Report unprotected stores whose race cannot be *disproved*.

    A dependence degrades to POSSIBLE when a subscript is not affine in
    the induction variable (``A[idx[i]]``) or when a base resolves to a
    pointer of unknown provenance that may alias any shared array.
    Sites already reported by R001 are skipped — the confirmed race
    subsumes the possible one.
    """
    for function, top, report in _loop_reports(module):
        confirmed = set(_confirmed_race_sites(report))
        flagged: Dict[_SiteKey, Tuple[AccessSite, Dependence]] = {}
        for dep in report.unprotected:
            if dep.confidence is not Confidence.POSSIBLE:
                continue
            for site in (dep.src, dep.dst):
                if not site.is_write or site.protected:
                    continue
                key = (site.loop_path, site.index, site.ref.raw)
                if key in confirmed:
                    continue
                flagged.setdefault(key, (site, dep))
        for _key, (site, dep) in sorted(flagged.items()):
            unknown = Provenance.UNKNOWN in (
                dep.src.provenance, dep.dst.provenance
            )
            reason = (
                "a pointer of unresolvable provenance may alias it"
                if unknown
                else "its subscript is not affine in the induction "
                     "variable"
            )
            yield _diag(
                "R011",
                f"store to {site.ref.raw!r} in parallel loop "
                f"{top.name!r} (access={top.access_pattern.value}) may "
                f"race on {dep.base!r}: {reason}; the dependence "
                f"cannot be disproved ({dep.src.describe()} vs "
                f"{dep.dst.describe()})",
                Location(module.name, function.name, site.loop_path,
                         site.index),
            )


@rule(
    "R012", "loop-carried-dependence", Severity.WARNING,
    "constant-distance loop-carried dependence: correct only under "
    "ordered execution",
)
def _loop_carried_dependences(module: Module) -> Iterator[Diagnostic]:
    """Report CONFIRMED dependences with a constant nonzero distance.

    These are not races in the R001 sense — iteration ``i`` and
    iteration ``i+d`` conflict for a fixed ``d``, so an ordered
    (sequential) schedule executes them correctly — but they make the
    loop illegal under any unordered parallel schedule.  This is the
    legality signal a schedule-kind policy dimension consumes: such a
    loop's verdict is ``ORDERED``, not ``SAFE``.
    """
    for function, top, report in _loop_reports(module):
        emitted: Set[Tuple[object, ...]] = set()
        for dep in report.unprotected:
            if (dep.confidence is not Confidence.CONFIRMED
                    or dep.distance is None):
                continue
            site = dep.src if dep.src.is_write else dep.dst
            key = (site.loop_path, site.index, dep.base, dep.kind,
                   dep.distance)
            if key in emitted:
                continue
            emitted.add(key)
            yield _diag(
                "R012",
                f"loop-carried {dep.kind.value} dependence on "
                f"{dep.base!r} in parallel loop {top.name!r}: "
                f"{dep.src.describe()} and {dep.dst.describe()} collide "
                f"at distance {dep.distance}; the loop is correct only "
                f"under ordered (sequential) iteration execution",
                Location(module.name, function.name, site.loop_path,
                         site.index),
            )


# ---------------------------------------------------------------------------
# R002 / R003 — reduction consistency
# ---------------------------------------------------------------------------

@rule(
    "R002", "undeclared-reduction", Severity.WARNING,
    "reduce instruction in a loop not declared as a reduction",
)
def _undeclared_reduction(module: Module) -> Iterator[Diagnostic]:
    for function in module.functions:
        for loop, path, top, _depth in _walk_loops(function):
            if top.has_reduction:
                continue
            for index, inst in enumerate(loop.body):
                if inst.opcode is Opcode.REDUCE:
                    yield _diag(
                        "R002",
                        f"loop {top.name!r} executes a reduce "
                        f"instruction but is not declared "
                        f"[reduction]; feature extraction and the "
                        f"scaling model will treat it as "
                        f"reduction-free",
                        Location(module.name, function.name, path, index),
                    )


@rule(
    "R003", "unrealized-reduction", Severity.INFO,
    "loop declared as a reduction contains no combining instruction",
)
def _unrealized_reduction(module: Module) -> Iterator[Diagnostic]:
    for function in module.functions:
        for loop in function.loops:
            if not loop.has_reduction:
                continue
            ops = {i.opcode for i in loop.instructions()}
            if not (ops & {Opcode.REDUCE, Opcode.ATOMIC, Opcode.CRITICAL}):
                yield _diag(
                    "R003",
                    f"loop {loop.name!r} is declared [reduction] but "
                    f"contains no reduce/atomic/critical instruction; "
                    f"the combine step is implicit",
                    Location(module.name, function.name, loop.name),
                )


# ---------------------------------------------------------------------------
# R004 / R005 — virtual-register def/use
# ---------------------------------------------------------------------------

def _scopes(function: Function):
    """Yield ``(loop_path_or_None, instruction_list)`` in program order."""
    yield None, function.serial
    for loop, path, _top, _depth in _walk_loops(function):
        yield path, loop.body


@rule(
    "R004", "use-before-def", Severity.ERROR,
    "virtual register used before (or without) a definition",
)
def _use_before_def(module: Module) -> Iterator[Diagnostic]:
    """Virtual registers (``%v<n>``) must be defined before use.

    Scopes are scanned in program order: serial code, then each loop
    region.  Operands that are not ``%v``-registers (memory handles
    like ``%mem``, symbols, callees) are exempt.
    """
    for function in module.functions:
        defined: set = set()
        for path, body in _scopes(function):
            for index, inst in enumerate(body):
                for operand in inst.operands:
                    if VREG_RE.match(operand) and operand not in defined:
                        yield _diag(
                            "R004",
                            f"virtual register {operand} used before "
                            f"definition",
                            Location(module.name, function.name, path,
                                     index),
                        )
                if inst.result is not None:
                    defined.add(inst.result)


@rule(
    "R005", "unused-register", Severity.INFO,
    "virtual registers defined but never read",
)
def _unused_registers(module: Module) -> Iterator[Diagnostic]:
    """Report dead ``%``-results, aggregated per scope.

    The IR builder synthesises result names for printability, so dead
    registers are pervasive and advisory only — one info diagnostic
    per scope, carrying the count.
    """
    for function in module.functions:
        used = {
            op for inst in function.instructions() for op in inst.operands
        }
        for path, body in _scopes(function):
            dead = [inst.result for inst in body
                    if inst.result is not None and inst.result not in used]
            if not dead:
                continue
            preview = ", ".join(dead[:3])
            if len(dead) > 3:
                preview += ", ..."
            where = f"loop {path!r}" if path else "serial code"
            yield _diag(
                "R005",
                f"{len(dead)} virtual register(s) defined but never "
                f"read in {where}: {preview}",
                Location(module.name, function.name, path),
            )


# ---------------------------------------------------------------------------
# R006 — barriers in hot inner loops
# ---------------------------------------------------------------------------

@rule(
    "R006", "barrier-in-inner-loop", Severity.WARNING,
    "barrier inside a nested loop synchronises once per inner iteration",
)
def _barrier_in_inner_loop(module: Module) -> Iterator[Diagnostic]:
    for function in module.functions:
        for loop, path, top, depth in _walk_loops(function):
            if depth == 1 or loop.trip_count <= 1:
                continue
            for index, inst in enumerate(loop.body):
                if inst.opcode is Opcode.BARRIER:
                    yield _diag(
                        "R006",
                        f"barrier inside nested loop {path!r} "
                        f"(trip={loop.trip_count}) synchronises "
                        f"{loop.trip_count}x per iteration of "
                        f"{top.name!r}; hoist it to the parallel loop "
                        f"body",
                        Location(module.name, function.name, path, index),
                    )


# ---------------------------------------------------------------------------
# R007 — degenerate loops
# ---------------------------------------------------------------------------

@rule(
    "R007", "degenerate-loop", Severity.WARNING,
    "parallel loop with no exploitable parallelism or no computation",
)
def _degenerate_loops(module: Module) -> Iterator[Diagnostic]:
    for function in module.functions:
        for loop in function.loops:
            if loop.trip_count == 1:
                yield _diag(
                    "R007",
                    f"parallel loop {loop.name!r} has trip_count=1; a "
                    f"single iteration cannot be distributed over "
                    f"threads",
                    Location(module.name, function.name, loop.name),
                )
            instructions = list(loop.instructions())
            if instructions and all(
                i.opcode in SYNC_OPCODES for i in instructions
            ):
                yield _diag(
                    "R007",
                    f"parallel loop {loop.name!r} contains only "
                    f"synchronisation instructions; it synchronises "
                    f"without computing",
                    Location(module.name, function.name, loop.name),
                )


# ---------------------------------------------------------------------------
# R008 — schedule / access-pattern consistency
# ---------------------------------------------------------------------------

@rule(
    "R008", "static-irregular-schedule", Severity.INFO,
    "irregular access with a static schedule is prone to load imbalance",
)
def _schedule_access(module: Module) -> Iterator[Diagnostic]:
    for function in module.functions:
        for loop in function.loops:
            if (loop.access_pattern is AccessPattern.IRREGULAR
                    and loop.schedule is Schedule.STATIC):
                yield _diag(
                    "R008",
                    f"loop {loop.name!r} declares irregular accesses "
                    f"with a static schedule; iteration costs will "
                    f"vary, consider sched=dynamic or sched=guided",
                    Location(module.name, function.name, loop.name),
                )


# ---------------------------------------------------------------------------
# R009 / R010 — feature-extraction sanity
# ---------------------------------------------------------------------------

@rule(
    "R009", "empty-module", Severity.ERROR,
    "module with zero dynamic instructions breaks feature normalization",
)
def _empty_module(module: Module) -> Iterator[Diagnostic]:
    analysis = analyze_module(module)
    if analysis.total_instructions == 0:
        yield _diag(
            "R009",
            f"module {module.name!r} has a total dynamic instruction "
            f"count of zero; the f1..f3 code features are normalized "
            f"by this total and would be meaningless",
            Location(module.name),
        )


@rule(
    "R010", "no-parallel-loops", Severity.WARNING,
    "module has no parallel loops to extract features from",
)
def _no_parallel_loops(module: Module) -> Iterator[Diagnostic]:
    if not any(True for _ in module.parallel_loops()):
        yield _diag(
            "R010",
            f"module {module.name!r} has no parallel loops; there is "
            f"nothing for the thread-selection models to map",
            Location(module.name),
        )
