"""Static analysis over the compiler IR: lint rules and diagnostics.

The feature-extraction pipeline (Section 5.2.2 of the paper) consumes
IR modules wholesale; this package is the safety net in front of it.
It follows the shape of a compiler diagnostics framework:

* :class:`Diagnostic` / :class:`Severity` / :class:`Location` — one
  finding of one rule, down to module/function/loop/instruction;
* :mod:`~repro.compiler.analysis.rules` — the built-in rule set
  (R001..R010): data races in parallel loops, reduction consistency,
  virtual-register def/use, barrier placement, degenerate loops,
  schedule/access consistency, feature-extraction sanity;
* :class:`Linter` / :func:`lint_module` — composes rule passes;
* ``repro lint`` (:mod:`repro.cli`) — the command-line surface, also
  run over the whole benchmark registry in CI.

See ``docs/static_analysis.md`` for the rule catalogue with offending
IR examples and fixes.
"""

from .diagnostics import (
    Diagnostic,
    IRLintError,
    Location,
    Severity,
    is_failure,
    max_severity,
)
from .linter import (
    Linter,
    VALIDATION_CODE,
    analyze_module,
    lint_module,
    summarize,
)
from .rules import LintRule, all_rules, get_rule, is_shared_operand
from .report import (
    diagnostics_payload,
    render_diagnostics_json,
    render_diagnostics_text,
)

__all__ = [
    "Diagnostic",
    "IRLintError",
    "LintRule",
    "Linter",
    "Location",
    "Severity",
    "VALIDATION_CODE",
    "all_rules",
    "analyze_module",
    "diagnostics_payload",
    "get_rule",
    "is_failure",
    "is_shared_operand",
    "lint_module",
    "max_severity",
    "render_diagnostics_json",
    "render_diagnostics_text",
    "summarize",
]
