"""Diagnostic model for the IR static-analysis framework.

A :class:`Diagnostic` is one finding of one lint rule: a stable rule
code (``R001``...), a :class:`Severity`, a human-readable message and a
:class:`Location` that points as deep into the IR as the rule can see —
module, function, (possibly nested) loop, instruction index.

Severities follow the usual compiler convention:

* ``error``   — the IR is wrong; feature extraction or parallel
  execution semantics would be corrupted (races, undefined values,
  division by zero in normalization).
* ``warning`` — the IR is suspicious and probably not what the
  benchmark author meant (undeclared reductions, degenerate loops,
  barriers in hot inner loops).
* ``info``    — stylistic or advisory observations (unused virtual
  registers, schedule hints).  Never affects exit codes, even under
  ``--strict``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..ir import IRValidationError


class Severity(enum.Enum):
    """Severity of a diagnostic, ordered ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank <= other.rank

    def __gt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank > other.rank

    def __ge__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank >= other.rank


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Location:
    """Where in the IR a diagnostic points.

    ``loop`` is a dotted path for nested loops (``outer.inner``);
    ``instruction`` is the index into the owning instruction list.
    Every field after ``module`` is optional: module-level findings
    (e.g. "no parallel loops") leave the rest unset.
    """

    module: str
    function: Optional[str] = None
    loop: Optional[str] = None
    instruction: Optional[int] = None

    def __str__(self) -> str:
        parts = [self.module]
        if self.function is not None:
            parts.append(self.function)
        if self.loop is not None:
            parts.append(self.loop)
        text = ":".join(parts)
        if self.instruction is not None:
            text += f"#{self.instruction}"
        return text

    def sort_key(self) -> tuple:
        return (
            self.module,
            self.function or "",
            self.loop or "",
            -1 if self.instruction is None else self.instruction,
        )


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one location."""

    code: str
    severity: Severity
    message: str
    location: Location

    def __str__(self) -> str:
        return (
            f"{self.location}: {self.code} "
            f"{self.severity.value}: {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by ``repro lint --format json``)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "module": self.location.module,
            "function": self.location.function,
            "loop": self.location.loop,
            "instruction": self.location.instruction,
        }

    def sort_key(self) -> tuple:
        """Location-major ordering: (file-like location, rule code).

        Diagnostics read like a compiler's output — grouped by where
        they point, not by how bad they are — and two runs over the
        same module produce byte-identical reports.  Severity is
        deliberately not part of the key; renderers that want the worst
        finding first can resort.
        """
        return (*self.location.sort_key(), self.code)


def max_severity(diagnostics: Sequence[Diagnostic]) -> Optional[Severity]:
    """The worst severity present, or None for a clean result."""
    if not diagnostics:
        return None
    return max((d.severity for d in diagnostics), key=lambda s: s.rank)


def is_failure(
    diagnostics: Sequence[Diagnostic], strict: bool = False
) -> bool:
    """Whether a lint result should fail a gate.

    Errors always fail; ``strict`` promotes warnings to failures.
    Info diagnostics never fail.
    """
    worst = max_severity(diagnostics)
    if worst is None:
        return False
    if strict:
        return worst >= Severity.WARNING
    return worst >= Severity.ERROR


class IRLintError(IRValidationError):
    """Raised by the opt-in lint hooks when a module has lint errors.

    Subclasses :class:`~repro.compiler.ir.IRValidationError` so callers
    that already guard module construction with that exception keep
    working when they turn linting on.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics = list(diagnostics)
        errors = [d for d in self.diagnostics
                  if d.severity is Severity.ERROR]
        summary = "; ".join(str(d) for d in errors[:3])
        if len(errors) > 3:
            summary += f"; ... ({len(errors) - 3} more)"
        super().__init__(f"module failed lint: {summary}")
