"""Command-line interface: regenerate any paper figure or table.

Examples::

    python -m repro fig8 --quick      # dynamic-environment summary
    python -m repro tab1              # expert weights table
    python -m repro fig15b            # expert selection frequency
    python -m repro list              # all available experiments
    python -m repro lint              # lint every benchmark's IR
    python -m repro lint cg mg --format json
    python -m repro lint --strict     # CI gate: warnings fail too
    python -m repro profile           # cProfile one simulation run
    python -m repro profile mg --scenario large-high --top 40
    python -m repro profile --stepping fixed --output run.pstats
    python -m repro serve-soak --tiny # chaos-soak the serving runtime
    python -m repro serve-soak --tiny --kill-at 5000 --verify-recovery
    python -m repro serve-fleet --tiny --shards 4   # sharded serving
    python -m repro serve-fleet --tiny --kill-at 5000 --verify-recovery
    python -m repro serve-resize --tiny --kill-at 5000 --verify-twin
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from .experiments import (
    DYNAMIC_SCENARIOS,
    EVALUATION_TARGETS,
    LARGE_HIGH,
    LARGE_LOW,
    QUICK_TARGETS,
    SMALL_HIGH,
    SMALL_LOW,
    run_adaptive_pairs,
    run_affinity,
    run_dynamic_scenario,
    run_dynamic_summary,
    run_env_accuracy,
    run_expert_weights,
    run_feature_impact,
    run_granularity,
    run_live_case_study,
    run_motivation,
    run_num_experts,
    run_selection_frequency,
    run_static_isolated,
    run_thread_distribution,
    run_workload_impact,
)
from .experiments.extensions import (
    run_churn,
    run_data_tradeoff,
    run_energy,
    run_model_comparison,
    run_portability,
    run_unseen_suite,
)
from .workload.trace import generate_live_trace


def _fig1(quick: bool) -> str:
    trace = generate_live_trace()
    lines = ["== Figure 1: live system activity (synthetic log) =="]
    lines.append(
        f"{len(trace.times)} samples over "
        f"{trace.times[-1] / 3600.0:.1f} hours on "
        f"{trace.system.hw_contexts} hardware contexts"
    )
    step = max(1, len(trace.times) // 24)
    for index in range(0, len(trace.times), step):
        t = trace.times[index]
        n = trace.threads[index]
        bar = "#" * max(1, int(60 * n / trace.system.hw_contexts))
        lines.append(f"{t / 3600.0:6.1f}h {n:6d} {bar}")
    return "\n".join(lines)


def _scale(quick: bool) -> float:
    return 0.3 if quick else 1.0


def _targets(quick: bool) -> Sequence[str]:
    return QUICK_TARGETS if quick else EVALUATION_TARGETS


#: Experiment registry: name -> (description, runner).
EXPERIMENTS: Dict[str, tuple] = {
    "fig1": ("live-system activity trace",
             lambda quick: _fig1(quick)),
    "fig2": ("motivation timelines (lu vs mg)",
             lambda quick: run_motivation(
                 iterations_scale=_scale(quick)).format()),
    "fig3": ("motivation speedups",
             lambda quick: run_motivation(
                 iterations_scale=_scale(quick)).format()),
    "tab1": ("expert model weights",
             lambda quick: run_expert_weights().format()),
    "fig6": ("feature impact",
             lambda quick: run_feature_impact().format()),
    "fig7": ("isolated static system",
             lambda quick: run_static_isolated(
                 targets=_targets(quick),
                 iterations_scale=_scale(quick)).format()),
    "fig8": ("dynamic-environment summary",
             lambda quick: run_dynamic_summary(
                 targets=_targets(quick),
                 iterations_scale=_scale(quick),
                 seeds=(0,) if quick else (0, 1)).format()),
    "fig9": ("small workload, low frequency",
             lambda quick: run_dynamic_scenario(
                 SMALL_LOW, targets=_targets(quick),
                 iterations_scale=_scale(quick),
                 seeds=(0,) if quick else (0, 1)).format()),
    "fig10": ("small workload, high frequency",
              lambda quick: run_dynamic_scenario(
                  SMALL_HIGH, targets=_targets(quick),
                  iterations_scale=_scale(quick),
                  seeds=(0,) if quick else (0, 1)).format()),
    "fig11": ("large workload, low frequency",
              lambda quick: run_dynamic_scenario(
                  LARGE_LOW, targets=_targets(quick),
                  iterations_scale=_scale(quick),
                  seeds=(0,) if quick else (0, 1)).format()),
    "fig12": ("large workload, high frequency",
              lambda quick: run_dynamic_scenario(
                  LARGE_HIGH, targets=_targets(quick),
                  iterations_scale=_scale(quick),
                  seeds=(0,) if quick else (0, 1)).format()),
    "fig13a": ("impact on workloads",
               lambda quick: run_workload_impact(
                   targets=_targets(quick),
                   scenarios=DYNAMIC_SCENARIOS[:1 if quick else 4],
                   iterations_scale=_scale(quick)).format()),
    "fig13b": ("adaptive workload pairs",
               lambda quick: run_adaptive_pairs(
                   pairs=(("lu", "mg"), ("cg", "ep")),
                   iterations_scale=_scale(quick)).format()),
    "fig14a": ("live-system case study",
               lambda quick: run_live_case_study(
                   targets=_targets(quick),
                   iterations_scale=_scale(quick)).format()),
    "fig14b": ("affinity scheduling",
               lambda quick: run_affinity(
                   targets=_targets(quick),
                   iterations_scale=_scale(quick)).format()),
    "fig14c": ("monolithic vs mixture",
               lambda quick: run_granularity(
                   targets=_targets(quick), granularities=(1, 4),
                   iterations_scale=_scale(quick)).format()),
    "fig15a": ("environment predictor accuracy",
               lambda quick: run_env_accuracy(
                   targets=_targets(quick),
                   scenarios=DYNAMIC_SCENARIOS[:1 if quick else 4],
                   iterations_scale=_scale(quick)).format()),
    "fig15b": ("expert selection frequency",
               lambda quick: run_selection_frequency(
                   targets=_targets(quick),
                   iterations_scale=_scale(quick)).format()),
    "fig15c": ("number of experts",
               lambda quick: run_num_experts(
                   targets=_targets(quick),
                   iterations_scale=_scale(quick)).format()),
    "fig16": ("expert granularity (1/4/8)",
              lambda quick: run_granularity(
                  targets=_targets(quick), granularities=(1, 4, 8),
                  iterations_scale=_scale(quick)).format()),
    "fig17": ("thread number distribution",
              lambda quick: run_thread_distribution(
                  targets=_targets(quick),
                  iterations_scale=_scale(quick)).format()),
    "ext-svm": ("Section 9: SVM-style experts",
                lambda quick: run_model_comparison(
                    iterations_scale=_scale(quick)).format()),
    "ext-data": ("Section 9: experts vs training-data size",
                 lambda quick: run_data_tradeoff(
                     iterations_scale=_scale(quick)).format()),
    "ext-port": ("Section 9: portability to a 48-core machine",
                 lambda quick: run_portability(
                     iterations_scale=_scale(quick)).format()),
    "ext-churn": ("extension: mapping under job churn",
                  lambda quick: run_churn(
                      iterations_scale=_scale(quick)).format()),
    "ext-rodinia": ("extension: unseen suite (Rodinia)",
                    lambda quick: run_unseen_suite(
                        iterations_scale=_scale(quick)).format()),
    "ext-energy": ("extension: energy to solution",
                   lambda quick: run_energy(
                       iterations_scale=_scale(quick)).format()),
}


def _parse_rule_codes(values: Optional[Sequence[str]]) -> Optional[List[str]]:
    """Flatten repeated / comma-separated ``--select``/``--ignore`` values."""
    if not values:
        return None
    codes: List[str] = []
    for value in values:
        codes.extend(c.strip() for c in value.split(",") if c.strip())
    return codes or None


def _resolve_lint_targets(parser: argparse.ArgumentParser,
                          targets: Sequence[str]):
    """Resolve lint targets to an ordered ``{label: module}`` mapping.

    A target is a registered program name (or paper alias), a suite
    name (``nas``, ``spec``, ``parsec``, ``rodinia``), or a path to a
    textual-IR file.  No targets means the entire benchmark registry —
    the CI gate.  Files are parsed without validation so structural
    problems surface as R000 diagnostics instead of a crash.
    """
    from .compiler.parser import IRParseError, parse_module
    from .programs import registry

    modules: Dict[str, object] = {}

    def add(label: str, module) -> None:
        if label in modules:
            parser.error(f"duplicate lint target {label!r}")
        modules[label] = module

    if not targets:
        for program in registry.all_programs():
            add(program.name, program.module)
        return modules

    suite_names = set(registry.suites())
    for target in targets:
        if os.path.sep in target or os.path.isfile(target):
            try:
                with open(target, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as error:
                parser.error(f"cannot read {target!r}: {error}")
            try:
                module = parse_module(text, validate=False)
            except IRParseError as error:
                parser.error(f"{target}: {error}")
            add(target, module)
        elif target in suite_names:
            for program in registry.suite(target):
                add(program.name, program.module)
        else:
            try:
                program = registry.get(target)
            except KeyError as error:
                parser.error(str(error.args[0]))
            add(program.name, program.module)
    return modules


def _lint_sarif(results) -> str:
    """Render lint diagnostics as a SARIF 2.1.0 document.

    IR modules have no source files, so registry targets get synthetic
    ``ir/<module>.ir`` artifact URIs (file targets keep their path) and
    the precise IR location rides in the message text.
    """
    from .analysis.sarif import LEVELS, SarifResult, render_sarif_json
    from .compiler.analysis import VALIDATION_CODE, all_rules

    sarif_results = []
    for label, diagnostics in results.items():
        uri = label if os.path.isfile(label) else f"ir/{label}.ir"
        for d in diagnostics:
            instruction = d.location.instruction
            sarif_results.append(SarifResult(
                rule_id=d.code,
                level=LEVELS[d.severity.value],
                message=f"[{d.location}] {d.message}",
                uri=uri,
                line=1 if instruction is None else instruction + 1,
            ))
    rules = {
        r.code: {
            "name": r.name,
            "summary": r.summary,
            "level": LEVELS[r.severity.value],
        }
        for r in all_rules()
    }
    rules[VALIDATION_CODE] = {
        "name": "validation-failure",
        "summary": "structural IR validation failed",
        "level": "error",
    }
    return render_sarif_json(sarif_results, "repro-lint", rules)


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro lint``: run the IR static analysis and report findings."""
    from .compiler.analysis import (
        Linter,
        all_rules,
        is_failure,
        render_diagnostics_json,
        render_diagnostics_text,
    )

    rule_lines = "\n".join(
        f"  {r.code}  {r.name:26s} [{r.severity.value}] {r.summary}"
        for r in all_rules()
    )
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Static analysis (lint) over benchmark IR modules.",
        epilog=f"rules:\n{rule_lines}",
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="program name, paper alias, suite name (nas/spec/parsec/"
             "rodinia), or a textual-IR file; default: every "
             "registered benchmark",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="promote warnings to failures (info never fails)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); 'sarif' emits a SARIF "
             "2.1.0 document for code-scanning upload",
    )
    parser.add_argument(
        "--select", action="append", metavar="CODES",
        help="run only these rule codes (comma-separated, repeatable)",
    )
    parser.add_argument(
        "--ignore", action="append", metavar="CODES",
        help="skip these rule codes (comma-separated, repeatable)",
    )
    args = parser.parse_args(argv)

    try:
        linter = Linter(
            select=_parse_rule_codes(args.select),
            ignore=_parse_rule_codes(args.ignore),
        )
    except KeyError as error:
        parser.error(str(error.args[0]))

    modules = _resolve_lint_targets(parser, args.targets)
    results = {
        label: linter.lint(module) for label, module in modules.items()
    }
    if args.format == "json":
        print(render_diagnostics_json(results, strict=args.strict))
    elif args.format == "sarif":
        print(_lint_sarif(results))
    else:
        print(render_diagnostics_text(results, strict=args.strict))
    failed = any(
        is_failure(diagnostics, strict=args.strict)
        for diagnostics in results.values()
    )
    return 1 if failed else 0


def sanitize_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro sanitize``: determinism self-lint over Python sources.

    Scans for the determinism hazards catalogued in
    :mod:`repro.analysis.sanitize` — unseeded RNG, wall-clock reads in
    fingerprinted paths, non-atomic writes in persistence paths,
    iteration-order leaks — and reports them like a compiler.  With no
    paths it scans the installed :mod:`repro` package itself: the
    repo's own gate is ``repro sanitize --strict``.
    """
    import json as json_module
    from pathlib import Path

    from .analysis.sanitize import (
        SanitizeFinding,
        all_sanitize_rules,
        sanitize_findings_failed,
        sanitize_path,
        sanitize_tree,
    )
    from .analysis.sarif import LEVELS, SarifResult, render_sarif_json

    rule_lines = "\n".join(
        f"  {r.code}  {r.name:22s} [{r.severity}] {r.summary}"
        for r in all_sanitize_rules()
    )
    parser = argparse.ArgumentParser(
        prog="repro sanitize",
        description="Determinism sanitizer (AST self-lint) over Python "
                    "sources.",
        epilog=(
            f"rules:\n{rule_lines}\n\n"
            "suppress a finding with '# sanitize: ok [CODES]' on the "
            "flagged line or the line above"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to scan (default: the installed "
             "repro package)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="warnings fail the gate too (errors always fail)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text); 'sarif' emits a SARIF "
             "2.1.0 document for code-scanning upload",
    )
    args = parser.parse_args(argv)

    targets = args.paths or [str(Path(__file__).resolve().parent)]
    findings: List[SanitizeFinding] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            findings.extend(sanitize_tree(path))
        elif path.is_file():
            findings.extend(sanitize_path(path))
        else:
            parser.error(f"no such file or directory: {target!r}")
    findings = list(dict.fromkeys(findings))
    findings.sort(key=SanitizeFinding.sort_key)

    failed = sanitize_findings_failed(findings, strict=args.strict)
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    if args.format == "json":
        payload = {
            "findings": [f.as_dict() for f in findings],
            "summary": {
                "errors": errors,
                "warnings": warnings,
                "failed": failed,
                "strict": args.strict,
            },
        }
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        results = [
            SarifResult(
                rule_id=f.code,
                level=LEVELS[f.severity],
                message=f.message,
                uri=f.path,
                line=f.line,
                column=f.column,
            )
            for f in findings
        ]
        rules = {
            r.code: {
                "name": r.name,
                "summary": r.summary,
                "level": LEVELS[r.severity],
            }
            for r in all_sanitize_rules()
        }
        print(render_sarif_json(results, "repro-sanitize", rules))
    else:
        for finding in findings:
            print(finding)
        verdict = "FAIL" if failed else "PASS"
        print(
            f"sanitize: {errors} error(s), {warnings} warning(s) — "
            f"verdict {verdict}"
        )
    return 1 if failed else 0


def profile_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro profile``: cProfile one simulation run.

    Executes a single :class:`~repro.exec.request.RunRequest` (the unit
    every experiment fans out over) under :mod:`cProfile` and prints the
    top functions by cumulative time — the first stop when the engine's
    wall clock regresses.
    """
    import cProfile
    import pstats

    from .core.policies import DefaultPolicy
    from .exec.request import PolicySpec, RunRequest, WorkloadSpec
    from .experiments.scenarios import ALL_SCENARIOS
    from .runtime.engine import STEPPING_MODES
    from .workload.spec import workload_sets

    scenarios = {s.name: s for s in ALL_SCENARIOS}
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Profile one co-execution simulation with cProfile.",
    )
    parser.add_argument(
        "target", nargs="?", default="cg",
        help="target benchmark to simulate (default: cg)",
    )
    parser.add_argument(
        "--scenario", choices=sorted(scenarios), default="small-low",
        help="evaluation scenario (default: small-low)",
    )
    parser.add_argument(
        "--threads", type=int, default=8, metavar="N",
        help="fixed thread policy for the target (default: 8)",
    )
    parser.add_argument(
        "--stepping", choices=STEPPING_MODES, default="event",
        help="engine stepping mode (default: event)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="scenario seed (default: 0)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.3, metavar="FRACTION",
        help="iterations scale of the simulated programs (default: 0.3)",
    )
    parser.add_argument(
        "--top", type=int, default=25, metavar="N",
        help="functions to print, by cumulative time (default: 25)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="also dump raw pstats data to FILE (snakeviz-compatible)",
    )
    args = parser.parse_args(argv)
    if args.threads < 1:
        parser.error("--threads must be >= 1")
    if args.top < 1:
        parser.error("--top must be >= 1")
    if not 0.0 < args.scale <= 1.0:
        parser.error("--scale must be in (0, 1]")

    scenario = scenarios[args.scenario]
    workload = None
    if scenario.workload_size is not None:
        workload = WorkloadSpec.from_set(
            workload_sets(scenario.workload_size)[0],
            PolicySpec.of(DefaultPolicy, "default"),
        )
    request = RunRequest(
        target=args.target,
        policy=PolicySpec.fixed(args.threads),
        scenario=scenario,
        workload=workload,
        seed=args.seed,
        iterations_scale=args.scale,
        stepping=args.stepping,
    )

    from .exec.request import execute_request

    # Warm the process-global memos (program registry, code features,
    # expert bundles) outside the profile so the report shows steady-
    # state engine cost, not one-time setup.
    execute_request(request)

    profiler = cProfile.Profile()
    profiler.enable()
    summary = execute_request(request)
    profiler.disable()

    print(
        f"profiled {args.target} / fixed-{args.threads} / "
        f"{scenario.name} (seed={args.seed}, scale={args.scale}, "
        f"stepping={args.stepping}): target_time="
        f"{summary.target_time:.2f}s simulated"
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    stats.print_stats(args.top)
    if args.output:
        stats.dump_stats(args.output)
        print(f"raw profile written to {args.output}")
    return 0


def serve_soak_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro serve-soak``: soak the policy-serving runtime under chaos.

    Drives a :class:`~repro.serve.server.PolicyServer` through a long
    synthetic request stream with composed chaos (sensor faults inside
    a window, availability flapping, burst arrivals), asserting the
    serving invariants; optionally kills the server mid-run and
    verifies the restarted server resumes learning losslessly.
    See the "Serving failure model" section of docs/robustness.md.
    """
    import json as json_module

    from .chaos import SENSOR_FAULT_MODES, SensorFaultSpec
    from .core.training import default_experts
    from .serve import (
        ServeConfig,
        SoakInvariantError,
        SoakSpec,
        run_soak,
        tiny_training_config,
        verify_recovery,
    )
    from .serve.breaker import BreakerConfig

    parser = argparse.ArgumentParser(
        prog="repro serve-soak",
        description="Soak the resilient policy-serving runtime under "
                    "composed chaos injection.",
    )
    parser.add_argument(
        "--requests", type=int, default=10_000, metavar="N",
        help="length of the request stream (default: 10000)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="stream seed (default: 0)",
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="serve experts trained on the miniature configuration "
             "(seconds to train, disk-cached) instead of the full one",
    )
    parser.add_argument(
        "--sensor", choices=SENSOR_FAULT_MODES, default=None,
        help="sensor fault mode injected inside the fault window "
             "(default: none)",
    )
    parser.add_argument(
        "--sensor-rate", type=float, default=1.0, metavar="P",
        help="per-request sensor fault probability inside the window "
             "(default: 1.0)",
    )
    parser.add_argument(
        "--fault-window", type=float, nargs=2, default=(0.3, 0.6),
        metavar=("LO", "HI"),
        help="sensor-fault window as fractions of the stream "
             "(default: 0.3 0.6)",
    )
    parser.add_argument(
        "--flap-period", type=float, default=40.0, metavar="SECONDS",
        help="availability flapping period in simulated seconds "
             "(default: 40)",
    )
    parser.add_argument(
        "--burst-period", type=int, default=97, metavar="N",
        help="every N-th request opens a burst batch (default: 97)",
    )
    parser.add_argument(
        "--burst-size", type=int, default=12, metavar="N",
        help="requests per burst batch (default: 12)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=64, metavar="N",
        help="admission queue capacity per batch (default: 64)",
    )
    parser.add_argument(
        "--deadline", type=float, default=0.050, metavar="SECONDS",
        help="per-decision wall-clock budget (default: 0.050)",
    )
    parser.add_argument(
        "--snapshot-interval", type=int, default=256, metavar="N",
        help="requests between full-state snapshots (default: 256)",
    )
    parser.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="journal/snapshot directory (default: a temporary "
             "directory, removed afterwards)",
    )
    parser.add_argument(
        "--kill-at", type=int, default=None, metavar="INDEX",
        help="kill the server before serving request INDEX, then "
             "restart it from its journal and finish the stream",
    )
    parser.add_argument(
        "--verify-recovery", action="store_true",
        help="with --kill-at: also run an uninterrupted twin and fail "
             "unless the restarted server's learning state and "
             "decisions are bit-identical to it",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    args = parser.parse_args(argv)
    if args.requests < 1:
        parser.error("--requests must be >= 1")
    if not 0.0 <= args.sensor_rate <= 1.0:
        parser.error("--sensor-rate must be in [0, 1]")
    if args.verify_recovery and args.kill_at is None:
        parser.error("--verify-recovery requires --kill-at")
    if args.kill_at is not None and not 0 < args.kill_at < args.requests:
        parser.error("--kill-at must fall inside the stream")

    sensor = None
    if args.sensor is not None:
        sensor = SensorFaultSpec(
            mode=args.sensor, rate=args.sensor_rate, seed=args.seed,
        )
    spec = SoakSpec(
        requests=args.requests,
        seed=args.seed,
        sensor=sensor,
        fault_window=tuple(args.fault_window),
        flap_period=args.flap_period,
        burst_period=args.burst_period,
        burst_size=args.burst_size,
    )
    config = ServeConfig(
        queue_capacity=args.queue_capacity,
        deadline_s=args.deadline,
        breaker=BreakerConfig(),
        snapshot_interval=args.snapshot_interval,
    )
    if args.tiny:
        bundle = default_experts(tiny_training_config())
    else:
        bundle = default_experts()

    import tempfile as tempfile_module
    from pathlib import Path

    def run(state_dir) -> int:
        state_dir = Path(state_dir)
        try:
            if args.verify_recovery:
                outcome = verify_recovery(
                    spec, bundle, kill_at=args.kill_at,
                    state_dir=state_dir / "verify", config=config,
                )
                report, _ = run_soak(
                    spec, bundle, state_dir=state_dir / "soak",
                    config=config,
                )
            else:
                outcome = None
                if args.kill_at is not None:
                    run_soak(spec, bundle,
                             state_dir=state_dir / "soak",
                             config=config, kill_at=args.kill_at)
                report, _ = run_soak(
                    spec, bundle, state_dir=state_dir / "soak",
                    config=config,
                )
        except SoakInvariantError as error:
            print(f"SOAK FAILED: {error}", file=sys.stderr)
            return 1
        if args.format == "json":
            payload = report.to_jsonable()
            if outcome is not None:
                payload["recovery"] = outcome
            print(json_module.dumps(payload, indent=2))
        else:
            print(report.format())
            if outcome is not None:
                print(
                    "recovery: killed before request "
                    "{kill_at}, resumed at {resumed_from}, "
                    "{compared_decisions} post-restart decisions "
                    "bit-identical to the uninterrupted twin".format(
                        **outcome
                    )
                )
        return 0

    if args.state_dir is not None:
        return run(args.state_dir)
    with tempfile_module.TemporaryDirectory() as tmp:
        return run(tmp)


def serve_fleet_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro serve-fleet``: drive the sharded serving fleet.

    Routes a synthetic request stream across a consistent-hash ring of
    shard processes (micro-batched into the vectorized decision path,
    transported over shared-memory rings), asserting the fleet
    invariants; optionally SIGKILLs the shard owning a chosen request
    mid-stream and verifies lossless failover against an uninterrupted
    inline twin.  See the "Serving fleet" section of
    docs/performance.md and the failover notes in docs/robustness.md.
    """
    import json as json_module

    from .chaos import SENSOR_FAULT_MODES, SensorFaultSpec
    from .core.training import default_experts
    from .serve import (
        FleetConfig,
        ServeConfig,
        SoakInvariantError,
        SoakSpec,
        run_fleet_soak,
        tiny_training_config,
        verify_fleet_recovery,
    )

    parser = argparse.ArgumentParser(
        prog="repro serve-fleet",
        description="Drive the sharded policy-serving fleet over a "
                    "synthetic request stream.",
    )
    parser.add_argument(
        "--requests", type=int, default=10_000, metavar="N",
        help="length of the request stream (default: 10000)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="stream seed (default: 0)",
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="serve experts trained on the miniature configuration",
    )
    parser.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="shard processes on the consistent-hash ring (default: 2)",
    )
    parser.add_argument(
        "--batch-max", type=int, default=32, metavar="N",
        help="micro-batch flush threshold (default: 32)",
    )
    parser.add_argument(
        "--batch-linger", type=float, default=0.002, metavar="SECONDS",
        help="micro-batch flush deadline (default: 0.002)",
    )
    parser.add_argument(
        "--ring-slots", type=int, default=4, metavar="N",
        help="shared-memory ring slots per direction (default: 4)",
    )
    parser.add_argument(
        "--slot-bytes", type=int, default=1 << 16, metavar="BYTES",
        help="bytes per ring slot (default: 65536)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=64, metavar="N",
        help="per-shard admission queue capacity (default: 64)",
    )
    parser.add_argument(
        "--deadline", type=float, default=0.050, metavar="SECONDS",
        help="per-decision wall-clock budget (default: 0.050)",
    )
    parser.add_argument(
        "--snapshot-interval", type=int, default=256, metavar="N",
        help="requests between full-state snapshots (default: 256)",
    )
    parser.add_argument(
        "--sensor", choices=SENSOR_FAULT_MODES, default=None,
        help="sensor fault mode injected inside the fault window",
    )
    parser.add_argument(
        "--fault-window", type=float, nargs=2, default=(0.3, 0.6),
        metavar=("LO", "HI"),
        help="sensor-fault window as stream fractions (default: 0.3 0.6)",
    )
    parser.add_argument(
        "--inline", action="store_true",
        help="serve every shard on the caller's thread (deterministic, "
             "no processes, no shared memory; decisions are identical)",
    )
    parser.add_argument(
        "--state-root", metavar="DIR", default=None,
        help="root of the per-shard journal/snapshot directories "
             "(default: a temporary directory, removed afterwards)",
    )
    parser.add_argument(
        "--kill-at", type=int, default=None, metavar="INDEX",
        help="SIGKILL the shard owning request INDEX just before it "
             "is submitted (process mode only)",
    )
    parser.add_argument(
        "--verify-recovery", action="store_true",
        help="with --kill-at: also run an uninterrupted inline twin "
             "and fail unless every shard's learning state and every "
             "served decision are bit-identical to it",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    args = parser.parse_args(argv)
    if args.requests < 1:
        parser.error("--requests must be >= 1")
    if args.verify_recovery and args.kill_at is None:
        parser.error("--verify-recovery requires --kill-at")
    if args.kill_at is not None and not 0 < args.kill_at < args.requests:
        parser.error("--kill-at must fall inside the stream")
    if args.kill_at is not None and args.inline:
        parser.error("--kill-at requires process mode (drop --inline)")
    if args.batch_max > args.queue_capacity:
        parser.error("--batch-max cannot exceed --queue-capacity "
                     "(full flushes must always fit the admission "
                     "queue, or decisions depend on flush timing)")

    sensor = None
    if args.sensor is not None:
        sensor = SensorFaultSpec(mode=args.sensor, seed=args.seed)
    spec = SoakSpec(
        requests=args.requests,
        seed=args.seed,
        sensor=sensor,
        fault_window=tuple(args.fault_window),
    )
    config = FleetConfig(
        shards=args.shards,
        batch_max=args.batch_max,
        batch_linger_s=args.batch_linger,
        ring_slots=args.ring_slots,
        slot_bytes=args.slot_bytes,
        serve=ServeConfig(
            queue_capacity=args.queue_capacity,
            deadline_s=args.deadline,
            snapshot_interval=args.snapshot_interval,
        ),
    )
    if args.tiny:
        bundle = default_experts(tiny_training_config())
    else:
        bundle = default_experts()

    import tempfile as tempfile_module
    from pathlib import Path

    def run(state_root) -> int:
        state_root = Path(state_root)
        try:
            if args.verify_recovery:
                outcome = verify_fleet_recovery(
                    spec, bundle, kill_at=args.kill_at,
                    state_root=state_root / "verify", config=config,
                )
            else:
                outcome = None
            report, _, _ = run_fleet_soak(
                spec, bundle, config=config,
                state_root=state_root / "fleet",
                processes=not args.inline,
                kill_at=None if args.verify_recovery else args.kill_at,
            )
        except SoakInvariantError as error:
            print(f"FLEET SOAK FAILED: {error}", file=sys.stderr)
            return 1
        if args.format == "json":
            payload = report.to_jsonable()
            if outcome is not None:
                payload["recovery"] = outcome
            print(json_module.dumps(payload, indent=2))
        else:
            print(report.format())
            if outcome is not None:
                print(
                    "failover: shard killed before request {kill_at}, "
                    "{failovers} failovers, {recovered} re-deliveries "
                    "deduplicated, {compared_decisions} served "
                    "decisions bit-identical to the inline twin".format(
                        **outcome
                    )
                )
        return 0

    if args.state_root is not None:
        return run(args.state_root)
    with tempfile_module.TemporaryDirectory() as tmp:
        return run(tmp)


def serve_resize_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro serve-resize``: chaos-soak live elastic resharding.

    Drives the sharded fleet over a synthetic request stream while a
    churn schedule live-resizes it (drain barrier → staged state
    shipping → atomic topology-epoch swap) under a supervising
    controller, optionally SIGKILLing one shard mid-soak; with
    ``--verify-twin`` the whole run must be bit-identical to an
    uninterrupted, never-resized inline twin.  See the "Live
    resharding & supervision" section of docs/robustness.md.
    """
    import json as json_module

    from .chaos import (
        SENSOR_FAULT_MODES,
        SensorFaultSpec,
        churn_resize_map,
        parse_churn_schedule,
    )
    from .core.training import default_experts
    from .serve import (
        FleetConfig,
        ServeConfig,
        SoakInvariantError,
        SoakSpec,
        run_fleet_soak,
        tiny_training_config,
        verify_resize,
    )

    parser = argparse.ArgumentParser(
        prog="repro serve-resize",
        description="Live-reshard the policy-serving fleet mid-stream "
                    "and prove the migration lossless.",
    )
    parser.add_argument(
        "--requests", type=int, default=10_000, metavar="N",
        help="length of the request stream (default: 10000)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="stream seed (default: 0)",
    )
    parser.add_argument(
        "--tiny", action="store_true",
        help="serve experts trained on the miniature configuration",
    )
    parser.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="initial shard processes on the ring (default: 2)",
    )
    parser.add_argument(
        "--resize-at", metavar="IDX:SHARDS,...", default=None,
        help="churn schedule: resize to SHARDS just before request IDX "
             "(default: the canonical 2x growth then -1 shrink at the "
             "stream's third points, e.g. 2→4→3)",
    )
    parser.add_argument(
        "--kill-at", type=int, default=None, metavar="INDEX",
        help="SIGKILL the shard owning request INDEX just before it "
             "is submitted (the supervisor must restart or evacuate)",
    )
    parser.add_argument(
        "--batch-max", type=int, default=32, metavar="N",
        help="micro-batch flush threshold (default: 32)",
    )
    parser.add_argument(
        "--batch-linger", type=float, default=0.002, metavar="SECONDS",
        help="micro-batch flush deadline (default: 0.002)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=64, metavar="N",
        help="per-shard admission queue capacity (default: 64)",
    )
    parser.add_argument(
        "--snapshot-interval", type=int, default=256, metavar="N",
        help="requests between full-state snapshots (default: 256)",
    )
    parser.add_argument(
        "--sensor", choices=SENSOR_FAULT_MODES, default=None,
        help="sensor fault mode injected inside the fault window",
    )
    parser.add_argument(
        "--state-root", metavar="DIR", default=None,
        help="root of the per-shard journal/snapshot directories "
             "(default: a temporary directory, removed afterwards)",
    )
    parser.add_argument(
        "--no-supervise", action="store_true",
        help="run without the supervising controller (losses then use "
             "the plain restart-forever failover path)",
    )
    parser.add_argument(
        "--verify-twin", action="store_true",
        help="also run an uninterrupted, never-resized inline twin and "
             "fail unless every stream's learning state and every "
             "served decision are bit-identical to it",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    args = parser.parse_args(argv)
    if args.requests < 1:
        parser.error("--requests must be >= 1")
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.kill_at is not None and not 0 < args.kill_at < args.requests:
        parser.error("--kill-at must fall inside the stream")

    if args.resize_at is None:
        resize_at = {
            args.requests // 3: args.shards * 2,
            (2 * args.requests) // 3: args.shards * 2 - 1,
        }
    else:
        try:
            resize_at = churn_resize_map(
                parse_churn_schedule(args.resize_at))
        except ValueError as error:
            parser.error(str(error))
    for index in resize_at:
        if not 0 <= index < args.requests:
            parser.error(f"resize at {index} falls outside the stream")

    sensor = None
    if args.sensor is not None:
        sensor = SensorFaultSpec(mode=args.sensor, seed=args.seed)
    spec = SoakSpec(requests=args.requests, seed=args.seed, sensor=sensor)
    config = FleetConfig(
        shards=args.shards,
        batch_max=args.batch_max,
        batch_linger_s=args.batch_linger,
        serve=ServeConfig(
            queue_capacity=args.queue_capacity,
            snapshot_interval=args.snapshot_interval,
        ),
    )
    if args.tiny:
        bundle = default_experts(tiny_training_config())
    else:
        bundle = default_experts()

    import tempfile as tempfile_module
    from pathlib import Path

    def run(state_root) -> int:
        state_root = Path(state_root)
        try:
            if args.verify_twin:
                outcome = verify_resize(
                    spec, bundle, resize_at,
                    state_root / "verify",
                    kill_at=args.kill_at, config=config,
                )
                report = None
            else:
                outcome = None
                report, _, _ = run_fleet_soak(
                    spec, bundle, config=config,
                    state_root=state_root / "fleet",
                    processes=True, kill_at=args.kill_at,
                    resize_at=resize_at,
                    supervise=not args.no_supervise,
                )
        except SoakInvariantError as error:
            print(f"RESIZE SOAK FAILED: {error}", file=sys.stderr)
            return 1
        if args.format == "json":
            payload = report.to_jsonable() if report is not None else {}
            if outcome is not None:
                payload["resize_verification"] = outcome
            print(json_module.dumps(payload, indent=2))
        elif report is not None:
            print(report.format())
        else:
            schedule = ", ".join(
                f"{index}→{shards} shards"
                for index, shards in sorted(resize_at.items())
            )
            print(
                "resize twin check passed: resized [{schedule}]{killed}"
                ", {resizes} resizes over {epochs} epochs, "
                "{streams_migrated} stream migrations, {failovers} "
                "failovers, {recovered} re-deliveries deduplicated, "
                "{compared_decisions} served decisions and {streams} "
                "stream states bit-identical to the uninterrupted "
                "twin".format(
                    schedule=schedule,
                    killed=(f" with shard kill at {args.kill_at}"
                            if args.kill_at is not None else ""),
                    **outcome,
                )
            )
        return 0

    if args.state_root is not None:
        return run(args.state_root)
    with tempfile_module.TemporaryDirectory() as tmp:
        return run(tmp)


def _format_bytes(count: int) -> str:
    """Human-scale byte count (``512 B`` / ``3.4 KiB`` / ``1.2 MiB``)."""
    if count < 1024:
        return f"{count} B"
    if count < 1024 * 1024:
        return f"{count / 1024:.1f} KiB"
    return f"{count / (1024 * 1024):.1f} MiB"


def _exec_footer(before: dict) -> str:
    """Fault-tolerance and transport footer for one experiment.

    Renders the pool-rebuild and serial-fallback activity (with the
    triggering causes) plus the batching and result-serialization
    traffic that :class:`~repro.exec.executor.ExecutionStats`
    accumulated since ``before`` — empty when the run was clean and
    nothing was serialized, so quiet experiments stay quiet.
    """
    from .exec.executor import STATS

    after = STATS.snapshot()

    def delta(key: str):
        return after[key] - before.get(key, 0)

    parts = []
    rebuilds = delta("pool_rebuilds")
    if rebuilds:
        parts.append(f"{rebuilds} pool rebuilds")
    fallbacks = delta("serial_fallbacks")
    if fallbacks:
        causes = STATS.serial_fallback_causes[-fallbacks:]
        note = f"{fallbacks} serial fallbacks"
        if causes:
            note += " (cause: " + "; ".join(causes) + ")"
        parts.append(note)
    batched = delta("batched_runs")
    if batched:
        groups = delta("batched_groups")
        parts.append(
            f"{batched} runs batched into {groups} "
            f"group{'s' if groups != 1 else ''}"
        )
    pickled = delta("pickled_bytes")
    shm = delta("shm_bytes")
    if pickled or shm:
        seconds = delta("serialize_seconds")
        transport = []
        if pickled:
            transport.append(f"{_format_bytes(pickled)} pickled")
        if shm:
            transport.append(f"{_format_bytes(shm)} via shm")
        parts.append(
            f"{' + '.join(transport)} in {seconds * 1000:.0f} ms"
        )
    if not parts:
        return ""
    return f"[exec: {'; '.join(parts)}]"


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "sanitize":
        return sanitize_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "serve-soak":
        return serve_soak_main(argv[1:])
    if argv and argv[0] == "serve-fleet":
        return serve_fleet_main(argv[1:])
    if argv and argv[0] == "serve-resize":
        return serve_resize_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's figures and tables, or lint "
                    "the benchmark IR ('repro lint --help').",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig1..fig17, tab1), 'list' / 'all', or the "
             "'lint' / 'sanitize' / 'profile' / 'serve-soak' / "
             "'serve-fleet' / 'serve-resize' subcommands",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller target set and shorter programs",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="run simulations over N worker processes (default: "
             "$REPRO_JOBS, else serial)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="retry each failed/crashed simulation up to N times "
             "(default: $REPRO_MAX_RETRIES, else 2)",
    )
    parser.add_argument(
        "--run-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry any single simulation exceeding SECONDS of "
             "wall clock (pool execution only; default: "
             "$REPRO_RUN_TIMEOUT, else unlimited)",
    )
    parser.add_argument(
        "--resume", nargs="?", const="repro-checkpoint.pkl",
        default=None, metavar="FILE",
        help="checkpoint completed runs to FILE (default "
             "repro-checkpoint.pkl) and resume from it after an "
             "interrupted grid (also: $REPRO_CHECKPOINT)",
    )
    parser.add_argument(
        "--batch", nargs="?", const="auto", default=None,
        choices=["auto", "inproc", "pool", "off"], metavar="MODE",
        help="batch compatible runs through shared SoA kernel "
             "invocations: auto, inproc, pool, or off "
             "(default: $REPRO_BATCH, else off; bare --batch means "
             "auto; physics stays bit-identical)",
    )
    args = parser.parse_args(argv)

    if args.jobs is not None:
        if args.jobs < 1:
            parser.error("--jobs must be >= 1")
        # Experiment drivers read REPRO_JOBS through
        # repro.exec.resolve_jobs, so one env var reaches all of them.
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.max_retries is not None:
        if args.max_retries < 0:
            parser.error("--max-retries cannot be negative")
        # The fault-tolerance knobs travel the same way: executors
        # resolve them from the environment (repro.exec.fault).
        os.environ["REPRO_MAX_RETRIES"] = str(args.max_retries)
    if args.run_timeout is not None:
        if args.run_timeout <= 0:
            parser.error("--run-timeout must be positive")
        os.environ["REPRO_RUN_TIMEOUT"] = str(args.run_timeout)
    if args.resume is not None:
        os.environ["REPRO_CHECKPOINT"] = args.resume
    if args.batch is not None:
        # Executors resolve the batching mode from the environment
        # (repro.exec.resolve_batch), same as the other knobs.
        os.environ["REPRO_BATCH"] = args.batch

    if args.experiment == "list":
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name:8s} {description}")
        print(f"{'lint':8s} static IR diagnostics over the benchmark "
              f"registry ('repro lint --help')")
        print(f"{'sanitize':8s} determinism self-lint over the repro "
              f"sources ('repro sanitize --help')")
        print(f"{'profile':8s} cProfile one simulation run "
              f"('repro profile --help')")
        print(f"{'serve-soak':8s} chaos-soak the resilient policy-serving "
              f"runtime ('repro serve-soak --help')")
        print(f"{'serve-fleet':8s} drive the sharded policy-serving fleet "
              f"('repro serve-fleet --help')")
        print(f"{'serve-resize':8s} live-reshard the fleet mid-stream, "
              f"supervised ('repro serve-resize --help')")
        return 0

    names = (
        list(EXPERIMENTS) if args.experiment == "all"
        else [args.experiment]
    )
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {name!r}; try 'list'"
            )
        description, runner = EXPERIMENTS[name]
        from .exec.executor import STATS

        exec_before = STATS.snapshot()
        started = time.time()
        print(runner(args.quick))
        print(f"[{name}: {description} — {time.time() - started:.1f}s]")
        footer = _exec_footer(exec_before)
        if footer:
            print(footer)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
