"""System-statistics sampling: the environment features.

Produces the environment half of the paper's feature vector
(Section 5.2.2, Table 1):

====  =======================  ==============================
f^4   workload threads         threads of co-running jobs
f^5   processors               currently available processors
f^6   runq-sz                  runnable tasks (``sar -q``)
f^7   ldavg-1                  1-minute load average
f^8   ldavg-5                  5-minute load average
f^9   cached memory            page cache, GB
f^10  pages free list rate     ``pgfree/s``-style churn, kpages/s
====  =======================  ==============================

The paper "use[s] *environment* to describe dynamic workloads/hardware
resources" — the world *external* to the program being mapped.  Samples
are therefore taken from a perspective: the observer's own threads are
excluded from the run-queue length and subtracted from the load
averages (per-job load averages are tracked alongside the system-wide
ones).  This matters for the mixture-of-experts proxy: if the
environment included the observer's own threads, an expert would score
well merely by being in control (its own thread choice dominating the
signal it is judged on), and the selector would reward incumbency
instead of insight.

"In this paper, the environment is formalized as the norm of the runtime
features in this feature set (f^4 to f^10)."  We use the RMS norm
(L2 / sqrt(dim)) so the magnitude is comparable to individual features.

The sampler also exposes a *raw* environment feature dictionary — the
candidate pool the information-gain selection draws from, together with
the raw code features of :mod:`repro.compiler.features`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..machine.topology import Topology
from .loadavg import LoadAverages
from .memory import PageCacheModel
from .runqueue import RunQueueStats
from .scheduler import JobDemand, TickAllocation

#: Canonical environment feature names, order matching Table 1 (f^4..f^10).
ENV_FEATURE_NAMES = (
    "workload_threads",
    "processors",
    "runq_sz",
    "ldavg_1",
    "ldavg_5",
    "cached_memory",
    "pages_free_rate",
)


def environment_norm(vector: Sequence[float]) -> float:
    """RMS norm of an environment vector (see module docstring)."""
    arr = np.asarray(vector, dtype=float)
    if arr.size == 0:
        raise ValueError("environment vector is empty")
    # ndarray.mean() is the same reduction np.mean dispatches to, and
    # IEEE-754 sqrt is correctly rounded in both math and numpy, so
    # this is bit-identical to sqrt(mean(...)) while skipping two
    # dispatch layers — this runs on every tick sample.
    return math.sqrt(float((arr * arr).mean()))


@dataclass(frozen=True)
class EnvironmentSample:
    """One observation of the environment, from one job's perspective."""

    time: float
    workload_threads: float
    processors: float
    runq_sz: float
    ldavg_1: float
    ldavg_5: float
    cached_memory: float
    pages_free_rate: float
    raw: Dict[str, float] = field(default_factory=dict, compare=False)

    def as_vector(self) -> np.ndarray:
        """The 7-dimensional environment vector e (order of Table 1)."""
        return np.array(
            [
                self.workload_threads,
                self.processors,
                self.runq_sz,
                self.ldavg_1,
                self.ldavg_5,
                self.cached_memory,
                self.pages_free_rate,
            ],
            dtype=float,
        )

    @property
    def norm(self) -> float:
        """The scalar ‖e‖ the expert selector compares against."""
        return environment_norm(self.as_vector())


class SystemStatsSampler:
    """Accumulates OS statistics across ticks and produces samples.

    Usage: call :meth:`update` once per scheduler tick with the demands
    and the tick allocation, then :meth:`sample` from the perspective of
    any job.  The perspective job's own threads are excluded from the
    run queue and subtracted from the load averages (see module
    docstring).
    """

    def __init__(self, topology: Topology):
        self._topology = topology
        self._loadavg = LoadAverages()
        self._job_loadavg: Dict[str, LoadAverages] = {}
        self._memory = PageCacheModel(ram_gb=topology.ram_gb)
        self._time = 0.0
        self._last_threads: Dict[str, int] = {}
        self._last_runqueue: Optional[RunQueueStats] = None
        self._last_saturation = 0.0
        self._last_traffic = 0.0
        self._ticks = 0

    @property
    def time(self) -> float:
        return self._time

    def prime(self, active_load: float) -> None:
        """Warm-start the system load averages (systems are rarely cold)."""
        self._loadavg.prime(active_load)

    def update(
        self,
        time: float,
        dt: float,
        demands: Sequence[JobDemand],
        allocation: TickAllocation,
    ) -> None:
        """Advance all statistics by one tick."""
        self._time = time
        self._last_threads = {d.job_id: d.threads for d in demands}
        self._last_runqueue = allocation.runqueue
        self._last_saturation = allocation.bandwidth_saturation
        self._last_traffic = allocation.memory_traffic
        self._loadavg.update(float(allocation.runqueue.runnable), dt)
        for demand in demands:
            tracker = self._job_loadavg.get(demand.job_id)
            if tracker is None:
                tracker = LoadAverages()
                self._job_loadavg[demand.job_id] = tracker
            tracker.update(float(demand.threads), dt)
        self._memory.update(allocation.memory_traffic, dt)
        self._ticks += 1

    def sample(
        self, perspective_job_id: Optional[str] = None
    ) -> EnvironmentSample:
        """Current environment from ``perspective_job_id``'s viewpoint."""
        if self._last_runqueue is None:
            raise RuntimeError("sample() before the first update()")
        own = self._last_threads.get(perspective_job_id, 0)
        total = sum(self._last_threads.values())
        own_load = self._job_loadavg.get(perspective_job_id)
        own_ld1 = own_load.ldavg_1 if own_load is not None else 0.0
        own_ld5 = own_load.ldavg_5 if own_load is not None else 0.0
        runqueue = self._last_runqueue
        external = max(0, total - own)
        return EnvironmentSample(
            time=self._time,
            workload_threads=float(external),
            processors=float(runqueue.processors),
            runq_sz=float(max(0, runqueue.runq_sz - own)),
            ldavg_1=max(0.0, self._loadavg.ldavg_1 - own_ld1),
            ldavg_5=max(0.0, self._loadavg.ldavg_5 - own_ld5),
            cached_memory=self._memory.cached_gb,
            pages_free_rate=self._memory.pages_free_rate,
            raw=self._raw_features(external, own, runqueue),
        )

    def sample_norm(
        self, perspective_job_id: Optional[str] = None
    ) -> float:
        """``sample(...).norm`` without building the full sample.

        Timeline bookkeeping only needs the scalar ‖e‖ once per
        timeline period; this computes exactly the seven values
        :meth:`sample` would put in the vector (same expressions, same
        order) and skips the raw-feature dictionary.
        """
        if self._last_runqueue is None:
            raise RuntimeError("sample() before the first update()")
        own = self._last_threads.get(perspective_job_id, 0)
        total = sum(self._last_threads.values())
        own_load = self._job_loadavg.get(perspective_job_id)
        own_ld1 = own_load.ldavg_1 if own_load is not None else 0.0
        own_ld5 = own_load.ldavg_5 if own_load is not None else 0.0
        runqueue = self._last_runqueue
        return environment_norm((
            float(max(0, total - own)),
            float(runqueue.processors),
            float(max(0, runqueue.runq_sz - own)),
            max(0.0, self._loadavg.ldavg_1 - own_ld1),
            max(0.0, self._loadavg.ldavg_5 - own_ld5),
            self._memory.cached_gb,
            self._memory.pages_free_rate,
        ))

    def _raw_features(
        self, workload_threads: int, own: int, runqueue: RunQueueStats
    ) -> Dict[str, float]:
        """The raw environment candidate pool (env side of the 134)."""
        utilization = runqueue.utilization
        oversub = runqueue.oversubscription
        raw = {
            "env.workload_threads": float(workload_threads),
            "env.processors": float(runqueue.processors),
            "env.runq_sz": float(max(0, runqueue.runq_sz - own)),
            "env.ldavg_1": max(0.0, self._loadavg.ldavg_1 - own),
            "env.ldavg_5": self._loadavg.ldavg_5,
            "env.cached_memory": self._memory.cached_gb,
            "env.pages_free_rate": self._memory.pages_free_rate,
            "env.runq_sz_total": float(runqueue.runq_sz),
            "env.own_threads": float(own),
            "env.waiting_tasks": float(runqueue.waiting),
            "env.utilization": utilization,
            "env.idle_pct": 100.0 * (1.0 - utilization),
            "env.oversubscription": oversub,
            "env.bandwidth_saturation": self._last_saturation,
            "env.memory_traffic": self._last_traffic,
            "env.cached_fraction": self._memory.cached_fraction,
            "env.free_memory": self._topology.ram_gb - self._memory.cached_gb,
            "env.total_cores": float(self._topology.cores),
            "env.offline_cores": float(
                self._topology.cores - runqueue.processors
            ),
            "env.ctx_switch_rate": 1000.0 * max(0.0, oversub - 1.0),
            "env.load_trend": self._loadavg.ldavg_1 - self._loadavg.ldavg_5,
            "env.threads_per_core": (
                float(runqueue.runq_sz) / runqueue.processors
            ),
        }
        # Simple nonlinear expansions, as a profiler exporting derived
        # counters would provide.
        for name in ("env.ldavg_1", "env.runq_sz", "env.workload_threads"):
            raw[f"{name}.sq"] = raw[name] ** 2
            raw[f"{name}.log1p"] = math.log1p(max(0.0, raw[name]))
        return raw
