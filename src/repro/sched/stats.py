"""System-statistics sampling: the environment features.

Produces the environment half of the paper's feature vector
(Section 5.2.2, Table 1):

====  =======================  ==============================
f^4   workload threads         threads of co-running jobs
f^5   processors               currently available processors
f^6   runq-sz                  runnable tasks (``sar -q``)
f^7   ldavg-1                  1-minute load average
f^8   ldavg-5                  5-minute load average
f^9   cached memory            page cache, GB
f^10  pages free list rate     ``pgfree/s``-style churn, kpages/s
====  =======================  ==============================

The paper "use[s] *environment* to describe dynamic workloads/hardware
resources" — the world *external* to the program being mapped.  Samples
are therefore taken from a perspective: the observer's own threads are
excluded from the run-queue length and subtracted from the load
averages (per-job load averages are tracked alongside the system-wide
ones).  This matters for the mixture-of-experts proxy: if the
environment included the observer's own threads, an expert would score
well merely by being in control (its own thread choice dominating the
signal it is judged on), and the selector would reward incumbency
instead of insight.

"In this paper, the environment is formalized as the norm of the runtime
features in this feature set (f^4 to f^10)."  We use the RMS norm
(L2 / sqrt(dim)) so the magnitude is comparable to individual features.

The sampler also exposes a *raw* environment feature dictionary — the
candidate pool the information-gain selection draws from, together with
the raw code features of :mod:`repro.compiler.features`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..machine.topology import Topology
from .loadavg import LoadAverages
from .memory import PageCacheModel
from .runqueue import RunQueueStats
from .scheduler import JobDemand, TickAllocation

#: Canonical environment feature names, order matching Table 1 (f^4..f^10).
ENV_FEATURE_NAMES = (
    "workload_threads",
    "processors",
    "runq_sz",
    "ldavg_1",
    "ldavg_5",
    "cached_memory",
    "pages_free_rate",
)


def environment_norm(vector: Sequence[float]) -> float:
    """RMS norm of an environment vector (see module docstring)."""
    arr = np.asarray(vector, dtype=float)
    if arr.size == 0:
        raise ValueError("environment vector is empty")
    # ndarray.mean() is the same reduction np.mean dispatches to, and
    # IEEE-754 sqrt is correctly rounded in both math and numpy, so
    # this is bit-identical to sqrt(mean(...)) while skipping two
    # dispatch layers — this runs on every tick sample.
    return math.sqrt(float((arr * arr).mean()))


@dataclass(frozen=True)
class EnvironmentSample:
    """One observation of the environment, from one job's perspective."""

    time: float
    workload_threads: float
    processors: float
    runq_sz: float
    ldavg_1: float
    ldavg_5: float
    cached_memory: float
    pages_free_rate: float
    #: Thunk producing the raw feature dictionary.  The raw pool is only
    #: read by offline feature selection and tests — never on the
    #: engine's consult path — so it is materialised lazily on first
    #: :attr:`raw` access.  The sampler captures every input eagerly, so
    #: the dictionary reflects sampler state *at sampling time* no
    #: matter when it is built.
    raw_factory: Optional[Callable[[], Dict[str, float]]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def raw(self) -> Dict[str, float]:
        """Raw environment candidate features (lazily built, cached)."""
        cached = self.__dict__.get("_raw_cache")
        if cached is None:
            factory = self.raw_factory
            cached = {} if factory is None else factory()
            self.__dict__["_raw_cache"] = cached
        return cached

    def as_vector(self) -> np.ndarray:
        """The 7-dimensional environment vector e (order of Table 1)."""
        return np.array(
            [
                self.workload_threads,
                self.processors,
                self.runq_sz,
                self.ldavg_1,
                self.ldavg_5,
                self.cached_memory,
                self.pages_free_rate,
            ],
            dtype=float,
        )

    @property
    def norm(self) -> float:
        """The scalar ‖e‖ the expert selector compares against."""
        return environment_norm(self.as_vector())

    def is_finite(self) -> bool:
        """Whether every environment reading is a finite number.

        False for samples corrupted by sensor faults (NaN/inf
        injection, :mod:`repro.chaos.sensors`); the policy hardening
        treats such samples as unobservable rather than learnable.
        """
        return bool(np.isfinite(self.as_vector()).all())


class SystemStatsSampler:
    """Accumulates OS statistics across ticks and produces samples.

    Usage: call :meth:`update` once per scheduler tick with the demands
    and the tick allocation, then :meth:`sample` from the perspective of
    any job.  The perspective job's own threads are excluded from the
    run queue and subtracted from the load averages (see module
    docstring).
    """

    def __init__(self, topology: Topology):
        self._topology = topology
        self._loadavg = LoadAverages()
        self._job_loadavg: Dict[str, LoadAverages] = {}
        self._memory = PageCacheModel(ram_gb=topology.ram_gb)
        self._time = 0.0
        self._last_threads: Dict[str, int] = {}
        self._last_runqueue: Optional[RunQueueStats] = None
        self._last_saturation = 0.0
        self._last_traffic = 0.0
        self._ticks = 0
        # Identity of the last demands sequence, plus the matching
        # (tracker, threads) pairs: the engine passes the *same* list
        # object for as long as the demand mix holds, so the per-job
        # dict lookups collapse to one `is` check on those ticks.
        self._last_demands: Optional[Sequence[JobDemand]] = None
        self._tracker_pairs: list = []

    @property
    def time(self) -> float:
        return self._time

    def prime(self, active_load: float) -> None:
        """Warm-start the system load averages (systems are rarely cold)."""
        self._loadavg.prime(active_load)

    def update(
        self,
        time: float,
        dt: float,
        demands: Sequence[JobDemand],
        allocation: TickAllocation,
    ) -> None:
        """Advance all statistics by one tick."""
        self._time = time
        if demands is not self._last_demands:
            self._last_demands = demands
            self._last_threads = {d.job_id: d.threads for d in demands}
            pairs = []
            for demand in demands:
                tracker = self._job_loadavg.get(demand.job_id)
                if tracker is None:
                    tracker = LoadAverages()
                    self._job_loadavg[demand.job_id] = tracker
                pairs.append((tracker, float(demand.threads)))
            self._tracker_pairs = pairs
        self._last_runqueue = allocation.runqueue
        self._last_saturation = allocation.bandwidth_saturation
        self._last_traffic = allocation.memory_traffic
        self._loadavg.update(float(allocation.runqueue.runnable), dt)
        # Per-job EMA pair, inlined one level deeper than
        # LoadAverages.update (this loop runs once per job per executed
        # tick); the slow path delegates to keep the decay memos right.
        for tracker, threads in self._tracker_pairs:
            one = tracker.one
            five = tracker.five
            if dt != one._decay_dt or dt != five._decay_dt:
                tracker.update(threads, dt)
                continue
            decay = one._decay
            one.value = one.value * decay + threads * (1.0 - decay)
            decay = five._decay
            five.value = five.value * decay + threads * (1.0 - decay)
        self._memory.update(allocation.memory_traffic, dt)
        self._ticks += 1

    def advance_span(self, time: float, dt: float, ticks: int) -> None:
        """Closed-form equivalent of ``ticks`` consecutive :meth:`update`
        calls with the *same* demands and allocation as the last one.

        The event-driven engine calls this for event-free spans: while
        no job changes phase and availability holds, the runnable count,
        per-job thread counts and memory traffic are all constant, so
        every damped average has a one-``pow`` closed form
        (:meth:`LoadAverage.advance`, :meth:`PageCacheModel.advance`).
        ``time`` is the tick timestamp the final iterated update would
        have carried.  The caller must not have changed demands or the
        allocation since the last :meth:`update`.
        """
        if self._last_runqueue is None:
            raise RuntimeError("advance_span() before the first update()")
        if ticks < 1:
            return
        self._time = time
        runnable = float(self._last_runqueue.runnable)
        one = self._loadavg.one
        five = self._loadavg.five
        pairs = self._tracker_pairs
        if (
            ticks < 2 or dt != one._decay_dt or dt != five._decay_dt
            or any(
                dt != t.one._decay_dt or dt != t.five._decay_dt
                for t, _ in pairs
            )
        ):
            # Slow path (first span, or a dt change): delegate so every
            # decay memo is validated and refreshed.
            self._loadavg.advance(runnable, dt, ticks)
            for tracker, threads in pairs:
                tracker.advance(threads, dt, ticks)
        else:
            # Every tracker shares the same two windows, so the two
            # ``pow``s are computed once and reused for the whole fleet
            # (each tracker's own ``_decay`` holds identical bits — it
            # is ``exp(-dt/period)`` of the same dt and period).
            decay1 = one._decay ** ticks
            decay5 = five._decay ** ticks
            gain1 = 1.0 - decay1
            gain5 = 1.0 - decay5
            one.value = one.value * decay1 + runnable * gain1
            five.value = five.value * decay5 + runnable * gain5
            for tracker, threads in pairs:
                t_one = tracker.one
                t_five = tracker.five
                t_one.value = t_one.value * decay1 + threads * gain1
                t_five.value = t_five.value * decay5 + threads * gain5
        self._memory.advance(self._last_traffic, dt, ticks)
        self._ticks += ticks

    def sample(
        self, perspective_job_id: Optional[str] = None
    ) -> EnvironmentSample:
        """Current environment from ``perspective_job_id``'s viewpoint."""
        if self._last_runqueue is None:
            raise RuntimeError("sample() before the first update()")
        own = self._last_threads.get(perspective_job_id, 0)
        total = sum(self._last_threads.values())
        own_load = self._job_loadavg.get(perspective_job_id)
        own_ld1 = own_load.ldavg_1 if own_load is not None else 0.0
        own_ld5 = own_load.ldavg_5 if own_load is not None else 0.0
        runqueue = self._last_runqueue
        external = max(0, total - own)
        memory = self._memory
        # Bind every raw-feature input *now* (default arguments) so the
        # lazily built dictionary is identical to one built eagerly,
        # even if the sampler has advanced since.
        raw_factory = (
            lambda ext=external, o=own, rq=runqueue,
            ld1=self._loadavg.ldavg_1, ld5=self._loadavg.ldavg_5,
            cached_gb=memory.cached_gb,
            pages_free=memory.pages_free_rate,
            cached_fraction=memory.cached_fraction,
            saturation=self._last_saturation, traffic=self._last_traffic:
            self._raw_features(
                ext, o, rq, ld1, ld5, cached_gb, pages_free,
                cached_fraction, saturation, traffic,
            )
        )
        return EnvironmentSample(
            time=self._time,
            workload_threads=float(external),
            processors=float(runqueue.processors),
            runq_sz=float(max(0, runqueue.runq_sz - own)),
            ldavg_1=max(0.0, self._loadavg.ldavg_1 - own_ld1),
            ldavg_5=max(0.0, self._loadavg.ldavg_5 - own_ld5),
            cached_memory=memory.cached_gb,
            pages_free_rate=memory.pages_free_rate,
            raw_factory=raw_factory,
        )

    def sample_norm(
        self, perspective_job_id: Optional[str] = None
    ) -> float:
        """``sample(...).norm`` without building the full sample.

        Timeline bookkeeping only needs the scalar ‖e‖ once per
        timeline period; this computes exactly the seven values
        :meth:`sample` would put in the vector (same expressions, same
        order) and skips the raw-feature dictionary.
        """
        if self._last_runqueue is None:
            raise RuntimeError("sample() before the first update()")
        own = self._last_threads.get(perspective_job_id, 0)
        total = sum(self._last_threads.values())
        own_load = self._job_loadavg.get(perspective_job_id)
        own_ld1 = own_load.ldavg_1 if own_load is not None else 0.0
        own_ld5 = own_load.ldavg_5 if own_load is not None else 0.0
        runqueue = self._last_runqueue
        return environment_norm((
            float(max(0, total - own)),
            float(runqueue.processors),
            float(max(0, runqueue.runq_sz - own)),
            max(0.0, self._loadavg.ldavg_1 - own_ld1),
            max(0.0, self._loadavg.ldavg_5 - own_ld5),
            self._memory.cached_gb,
            self._memory.pages_free_rate,
        ))

    def _raw_features(
        self,
        workload_threads: int,
        own: int,
        runqueue: RunQueueStats,
        ld1: float,
        ld5: float,
        cached_gb: float,
        pages_free: float,
        cached_fraction: float,
        saturation: float,
        traffic: float,
    ) -> Dict[str, float]:
        """The raw environment candidate pool (env side of the 134).

        All mutable sampler state is passed in explicitly so the caller
        (:meth:`sample`) can snapshot it at sampling time and defer the
        dictionary construction until someone actually reads it.
        """
        utilization = runqueue.utilization
        oversub = runqueue.oversubscription
        raw = {
            "env.workload_threads": float(workload_threads),
            "env.processors": float(runqueue.processors),
            "env.runq_sz": float(max(0, runqueue.runq_sz - own)),
            "env.ldavg_1": max(0.0, ld1 - own),
            "env.ldavg_5": ld5,
            "env.cached_memory": cached_gb,
            "env.pages_free_rate": pages_free,
            "env.runq_sz_total": float(runqueue.runq_sz),
            "env.own_threads": float(own),
            "env.waiting_tasks": float(runqueue.waiting),
            "env.utilization": utilization,
            "env.idle_pct": 100.0 * (1.0 - utilization),
            "env.oversubscription": oversub,
            "env.bandwidth_saturation": saturation,
            "env.memory_traffic": traffic,
            "env.cached_fraction": cached_fraction,
            "env.free_memory": self._topology.ram_gb - cached_gb,
            "env.total_cores": float(self._topology.cores),
            "env.offline_cores": float(
                self._topology.cores - runqueue.processors
            ),
            "env.ctx_switch_rate": 1000.0 * max(0.0, oversub - 1.0),
            "env.load_trend": ld1 - ld5,
            "env.threads_per_core": (
                float(runqueue.runq_sz) / runqueue.processors
            ),
        }
        # Simple nonlinear expansions, as a profiler exporting derived
        # counters would provide.
        for name in ("env.ldavg_1", "env.runq_sz", "env.workload_threads"):
            raw[f"{name}.sq"] = raw[name] ** 2
            raw[f"{name}.log1p"] = math.log1p(max(0.0, raw[name]))
        return raw
