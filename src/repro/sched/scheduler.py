"""Proportional-share CPU scheduler with contention modelling.

This is the substrate that makes thread-count selection *matter*.  Each
tick, every job demands one core per thread.  The scheduler grants CPU
time proportionally and computes three multiplicative slowdown factors
with the same causal structure as a real SMP:

* **time-slicing**: with total demand ``D`` on ``P`` cores, each thread
  runs for ``min(1, P/D)`` of the tick;
* **context-switch overhead**: oversubscription (``D > P``) wastes a
  fraction of every slice on switches and cache refill;
* **memory contention**: aggregate memory traffic beyond the machine's
  bandwidth slows memory-intensive jobs, scaled by placement locality
  (affinity reduces traffic).

The program-side efficiency of running ``n`` threads (synchronisation,
serial fractions) lives in :mod:`repro.programs.scaling`; the scheduler
is program-agnostic, exactly like a real OS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Mapping, Sequence

from ..machine.topology import Topology
from .runqueue import RunQueueStats


@dataclass(frozen=True)
class JobDemand:
    """One job's resource demand for a tick."""

    job_id: str
    threads: int
    memory_intensity: float = 0.0
    locality: float = 1.0

    def __post_init__(self) -> None:
        if self.threads < 0:
            raise ValueError(f"job {self.job_id!r}: threads must be >= 0")
        if not 0.0 <= self.memory_intensity <= 1.0:
            raise ValueError(
                f"job {self.job_id!r}: memory_intensity must be in [0, 1]"
            )
        if not 0.0 < self.locality <= 1.0:
            raise ValueError(
                f"job {self.job_id!r}: locality must be in (0, 1]"
            )
        # Precompute the derived values the scheduler and the engine's
        # allocation memo read on every tick.  Demands are immutable and
        # reused across many ticks (the engine memoises them per
        # phase/thread pair), so both are computed exactly once.
        object.__setattr__(
            self, "_traffic",
            0.0 if self.threads == 0
            else self.threads * self.memory_intensity / self.locality,
        )
        object.__setattr__(
            self, "_hash",
            hash((self.job_id, self.threads,
                  self.memory_intensity, self.locality)),
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def traffic(self) -> float:
        """Memory traffic units this job generates when fully scheduled."""
        return self._traffic


@dataclass(frozen=True)
class Allocation:
    """CPU granted to one job for a tick."""

    job_id: str
    threads: int
    granted_cpus: float
    switch_factor: float
    memory_factor: float

    @property
    def effective_cpus(self) -> float:
        """Granted CPU after switch and memory slowdowns."""
        return self.granted_cpus * self.switch_factor * self.memory_factor

    @cached_property
    def thread_share(self) -> float:
        """Per-thread CPU fraction, ``granted_cpus / max(threads, 1)``.

        A ``cached_property`` (non-data descriptor) so the scheduler can
        pre-fill it at construction time; the engine reads it once per
        job per tick.
        """
        return self.granted_cpus / max(self.threads, 1)


@dataclass(frozen=True)
class TickAllocation:
    """System-wide scheduling outcome for one tick."""

    allocations: Mapping[str, Allocation]
    runqueue: RunQueueStats
    memory_traffic: float
    bandwidth_saturation: float


@dataclass
class ProportionalShareScheduler:
    """A CFS-flavoured fair scheduler over a topology.

    Calibration constants are chosen so that, on the Table 2 machine,
    modest oversubscription (2x) costs ~11% per slice and saturating the
    memory system roughly halves the progress of a fully memory-bound job
    — consistent with the published behaviour of the NAS codes the paper
    uses (cg/mg/art degrade sharply when over-threaded; ep does not).
    """

    topology: Topology
    #: Slice lost per unit of excess demand ratio (D/P - 1).
    switch_overhead: float = 0.12
    #: Memory slowdown per unit of excess bandwidth saturation.
    memory_overhead: float = 2.0
    #: Traffic units the machine absorbs before saturating.  Scaled from
    #: bandwidth: one traffic unit is one fully memory-bound thread.
    traffic_capacity: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.traffic_capacity <= 0.0:
            # A thread of a memory-bound code streams ~5 GB/s on this
            # class of machine; the LLC absorbs a little extra.
            self.traffic_capacity = (
                self.topology.mem_bandwidth_gbs / 5.0
                + self.topology.llc_mb / 24.0
            )

    def allocate(
        self, demands: Sequence[JobDemand], available: int
    ) -> TickAllocation:
        """Schedule one tick.

        ``available`` is the processor count granted by the availability
        schedule (clamped to the topology by the caller).
        """
        if available < 1:
            raise ValueError("available processors must be >= 1")
        if available > self.topology.cores:
            raise ValueError(
                f"available={available} exceeds topology cores "
                f"{self.topology.cores}"
            )
        if len({d.job_id for d in demands}) != len(demands):
            raise ValueError(
                f"duplicate job ids in demands: "
                f"{[d.job_id for d in demands]}"
            )

        total_demand = 0
        for d in demands:
            total_demand += d.threads
        runqueue = RunQueueStats(runnable=total_demand, processors=available)

        share = 1.0 if total_demand <= available else available / total_demand
        overload = max(0.0, runqueue.oversubscription - 1.0)
        switch_factor = 1.0 / (1.0 + self.switch_overhead * overload)

        # Memory traffic is generated by *scheduled* thread-time.
        traffic = 0.0
        for d in demands:
            traffic += d.traffic * share
        saturation = traffic / self.traffic_capacity
        excess = max(0.0, saturation - 1.0)

        memory_overhead = self.memory_overhead
        allocations: Dict[str, Allocation] = {}
        for demand in demands:
            # Allocations are built on every scheduling tick; bypassing
            # the frozen-dataclass __init__ (one object.__setattr__ per
            # field) in favour of a direct __dict__ fill is a measurable
            # win.  Field set and semantics are unchanged — Allocation
            # has no __post_init__.
            threads = demand.threads
            granted = threads * share
            alloc = object.__new__(Allocation)
            alloc.__dict__.update(
                job_id=demand.job_id,
                threads=threads,
                granted_cpus=granted,
                switch_factor=switch_factor,
                memory_factor=1.0 / (
                    1.0 + memory_overhead
                    * demand.memory_intensity * excess
                ),
                thread_share=granted / (threads if threads >= 1 else 1),
            )
            allocations[demand.job_id] = alloc
        return TickAllocation(
            allocations=allocations,
            runqueue=runqueue,
            memory_traffic=traffic,
            bandwidth_saturation=saturation,
        )
