"""Run-queue accounting (``sar -q`` semantics).

``runq-sz`` (feature f^6) is the number of runnable tasks in the run
queue.  We follow ``sar``: every thread that wants CPU is runnable,
whether it is currently on a core or waiting for one.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RunQueueStats:
    """Snapshot of scheduler queue state for one tick."""

    runnable: int
    processors: int

    def __post_init__(self) -> None:
        if self.runnable < 0:
            raise ValueError("runnable count cannot be negative")
        if self.processors < 1:
            raise ValueError("processors must be >= 1")

    @property
    def runq_sz(self) -> int:
        """Runnable tasks (the ``sar`` run-queue size)."""
        return self.runnable

    @property
    def waiting(self) -> int:
        """Runnable tasks not currently on a core."""
        return max(0, self.runnable - self.processors)

    @property
    def oversubscription(self) -> float:
        """Demand per processor; > 1 means the machine is oversubscribed."""
        return self.runnable / self.processors

    @property
    def utilization(self) -> float:
        """Fraction of processors with a runnable task."""
        return min(1.0, self.runnable / self.processors)
