"""Linux-style exponentially-damped load averages.

The paper's environment features f^7 and f^8 are ``ldavg-1`` and
``ldavg-5`` as reported by ``sar``.  Linux computes these as exponentially
damped moving averages of the number of runnable (plus, in real Linux,
uninterruptible) tasks.  We reproduce the continuous-time form: for a
window of ``period`` seconds and a tick of ``dt`` seconds,

    load <- load * exp(-dt/period) + active * (1 - exp(-dt/period))
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

ONE_MINUTE = 60.0
FIVE_MINUTES = 300.0


@dataclass
class LoadAverage:
    """One damped average over a fixed window."""

    period: float
    value: float = 0.0
    # Decay memo: the engine ticks with a fixed dt, so the exp() is the
    # same every update; recompute only when dt changes.
    _decay_dt: float = field(
        default=-1.0, init=False, repr=False, compare=False
    )
    _decay: float = field(
        default=1.0, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")

    def update(self, active: float, dt: float) -> float:
        """Advance the average by ``dt`` seconds of ``active`` load."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if active < 0:
            raise ValueError("active load cannot be negative")
        if dt != self._decay_dt:
            self._decay_dt = dt
            self._decay = math.exp(-dt / self.period)
        decay = self._decay
        self.value = self.value * decay + active * (1.0 - decay)
        return self.value


@dataclass
class LoadAverages:
    """The (ldavg-1, ldavg-5) pair the feature vector uses."""

    one: LoadAverage = field(
        default_factory=lambda: LoadAverage(ONE_MINUTE)
    )
    five: LoadAverage = field(
        default_factory=lambda: LoadAverage(FIVE_MINUTES)
    )

    def update(self, active: float, dt: float) -> None:
        self.one.update(active, dt)
        self.five.update(active, dt)

    @property
    def ldavg_1(self) -> float:
        return self.one.value

    @property
    def ldavg_5(self) -> float:
        return self.five.value

    def prime(self, active: float) -> None:
        """Jump both averages to ``active`` (steady-state warm start)."""
        self.one.value = active
        self.five.value = active
