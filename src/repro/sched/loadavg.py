"""Linux-style exponentially-damped load averages.

The paper's environment features f^7 and f^8 are ``ldavg-1`` and
``ldavg-5`` as reported by ``sar``.  Linux computes these as exponentially
damped moving averages of the number of runnable (plus, in real Linux,
uninterruptible) tasks.  We reproduce the continuous-time form: for a
window of ``period`` seconds and a tick of ``dt`` seconds,

    load <- load * exp(-dt/period) + active * (1 - exp(-dt/period))
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

ONE_MINUTE = 60.0
FIVE_MINUTES = 300.0


@dataclass
class LoadAverage:
    """One damped average over a fixed window."""

    period: float
    value: float = 0.0
    # Decay memo: the engine ticks with a fixed dt, so the exp() is the
    # same every update; recompute only when dt changes.
    _decay_dt: float = field(
        default=-1.0, init=False, repr=False, compare=False
    )
    _decay: float = field(
        default=1.0, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")

    def update(self, active: float, dt: float) -> float:
        """Advance the average by ``dt`` seconds of ``active`` load."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if active < 0:
            raise ValueError("active load cannot be negative")
        if dt != self._decay_dt:
            self._decay_dt = dt
            self._decay = math.exp(-dt / self.period)
        decay = self._decay
        self.value = self.value * decay + active * (1.0 - decay)
        return self.value

    def advance(self, active: float, dt: float, ticks: int) -> float:
        """Closed form for ``ticks`` consecutive :meth:`update` calls.

        While the runnable count is constant the recurrence telescopes:

            load_n = load_0 * d^n + active * (1 - d^n),  d = exp(-dt/period)

        so a whole event-free span costs one ``pow`` instead of ``n``
        multiplies.  Agrees with iterating :meth:`update` to within
        floating-point accumulation error (~1 ulp per skipped tick); the
        single-tick case delegates to :meth:`update` exactly.
        """
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        if ticks == 0:
            return self.value
        if ticks == 1:
            return self.update(active, dt)
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if active < 0:
            raise ValueError("active load cannot be negative")
        if dt != self._decay_dt:
            self._decay_dt = dt
            self._decay = math.exp(-dt / self.period)
        decay_n = self._decay ** ticks
        self.value = self.value * decay_n + active * (1.0 - decay_n)
        return self.value


@dataclass
class LoadAverages:
    """The (ldavg-1, ldavg-5) pair the feature vector uses."""

    one: LoadAverage = field(
        default_factory=lambda: LoadAverage(ONE_MINUTE)
    )
    five: LoadAverage = field(
        default_factory=lambda: LoadAverage(FIVE_MINUTES)
    )

    def update(self, active: float, dt: float) -> None:
        # Inlined EMA pair: this runs once per job per engine tick, and
        # the call/validation overhead of two LoadAverage.update calls
        # dominates the two multiplies.  The slow path (first call, or a
        # dt change) delegates so the decay memos stay coherent.
        one = self.one
        five = self.five
        if dt != one._decay_dt or dt != five._decay_dt:
            one.update(active, dt)
            five.update(active, dt)
            return
        decay = one._decay
        one.value = one.value * decay + active * (1.0 - decay)
        decay = five._decay
        five.value = five.value * decay + active * (1.0 - decay)

    def advance(self, active: float, dt: float, ticks: int) -> None:
        """Advance both averages by ``ticks`` ticks of constant load."""
        # Inlined like :meth:`update`; the slow path (first call, a dt
        # change, or an edge tick count) delegates for validation and
        # decay-memo upkeep.
        one = self.one
        five = self.five
        if (ticks < 2 or dt != one._decay_dt or dt != five._decay_dt):
            one.advance(active, dt, ticks)
            five.advance(active, dt, ticks)
            return
        decay_n = one._decay ** ticks
        one.value = one.value * decay_n + active * (1.0 - decay_n)
        decay_n = five._decay ** ticks
        five.value = five.value * decay_n + active * (1.0 - decay_n)

    @property
    def ldavg_1(self) -> float:
        return self.one.value

    @property
    def ldavg_5(self) -> float:
        return self.five.value

    def prime(self, active: float) -> None:
        """Jump both averages to ``active`` (steady-state warm start)."""
        self.one.value = active
        self.five.value = active
