"""Page-cache and memory-reclaim model.

Provides features f^9 (cached memory) and f^10 (pages-free-list rate,
``sar -B pgfree/s``-style).  The model is first-order: the page cache
relaxes toward the memory-intensive working set of the running jobs, and
page-free (reclaim) activity rises with memory pressure and with cache
churn from streaming, memory-bound jobs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class PageCacheModel:
    """Evolves cached-memory and page-free-rate over simulated time."""

    ram_gb: float
    #: GB of working set one fully-memory-intensive thread touches.
    working_set_per_thread_gb: float = 0.35
    #: Cache relaxation time constant, seconds.
    time_constant: float = 8.0
    #: Baseline OS page churn, kilo-pages/s.
    baseline_free_rate: float = 0.4
    #: Kilo-pages/s of churn per unit of memory traffic.
    churn_per_traffic: float = 0.25

    cached_gb: float = 0.0
    pages_free_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.ram_gb <= 0:
            raise ValueError("ram_gb must be positive")
        if self.cached_gb == 0.0:
            # Idle systems keep a modest warm cache.
            self.cached_gb = 0.1 * self.ram_gb
        self.pages_free_rate = self.baseline_free_rate

    def update(self, memory_traffic: float, dt: float) -> None:
        """Advance the model by ``dt`` seconds.

        ``memory_traffic`` is the aggregate memory-intensity-weighted
        thread count from the scheduler (unitless traffic units).
        """
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if memory_traffic < 0:
            raise ValueError("memory_traffic cannot be negative")
        target = min(
            0.9 * self.ram_gb,
            0.1 * self.ram_gb
            + self.working_set_per_thread_gb * memory_traffic,
        )
        decay = math.exp(-dt / self.time_constant)
        self.cached_gb = self.cached_gb * decay + target * (1.0 - decay)

        pressure = self.cached_gb / self.ram_gb
        reclaim = 4.0 * max(0.0, pressure - 0.7)
        self.pages_free_rate = (
            self.baseline_free_rate
            + self.churn_per_traffic * memory_traffic
            + reclaim
        )

    def advance(self, memory_traffic: float, dt: float, ticks: int) -> None:
        """Closed form for ``ticks`` consecutive :meth:`update` calls.

        With constant traffic the cache target is fixed, so the
        relaxation telescopes to a single exponential over ``ticks*dt``
        seconds; ``pages_free_rate`` depends only on the final cache
        level and the (constant) traffic, exactly as the last iterated
        update would leave it.
        """
        if ticks < 0:
            raise ValueError("ticks must be non-negative")
        if ticks == 0:
            return
        if ticks == 1:
            return self.update(memory_traffic, dt)
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if memory_traffic < 0:
            raise ValueError("memory_traffic cannot be negative")
        target = min(
            0.9 * self.ram_gb,
            0.1 * self.ram_gb
            + self.working_set_per_thread_gb * memory_traffic,
        )
        decay = math.exp(-dt / self.time_constant) ** ticks
        self.cached_gb = self.cached_gb * decay + target * (1.0 - decay)

        pressure = self.cached_gb / self.ram_gb
        reclaim = 4.0 * max(0.0, pressure - 0.7)
        self.pages_free_rate = (
            self.baseline_free_rate
            + self.churn_per_traffic * memory_traffic
            + reclaim
        )

    @property
    def cached_fraction(self) -> float:
        return self.cached_gb / self.ram_gb
