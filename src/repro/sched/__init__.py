"""Simulated OS scheduler: CPU sharing, load accounting, memory stats."""

from .loadavg import FIVE_MINUTES, LoadAverage, LoadAverages, ONE_MINUTE
from .memory import PageCacheModel
from .runqueue import RunQueueStats
from .scheduler import (
    Allocation,
    JobDemand,
    ProportionalShareScheduler,
    TickAllocation,
)
from .stats import (
    ENV_FEATURE_NAMES,
    EnvironmentSample,
    SystemStatsSampler,
    environment_norm,
)

__all__ = [
    "Allocation",
    "ENV_FEATURE_NAMES",
    "EnvironmentSample",
    "FIVE_MINUTES",
    "JobDemand",
    "LoadAverage",
    "LoadAverages",
    "ONE_MINUTE",
    "PageCacheModel",
    "ProportionalShareScheduler",
    "RunQueueStats",
    "SystemStatsSampler",
    "TickAllocation",
    "environment_norm",
]
