"""Result metrics.

The paper reports speedups over the OpenMP-default baseline and averages
with the harmonic mean "to avoid outliers" (Section 7).

The serving runtime (:mod:`repro.serve`) adds a latency dimension:
:func:`percentile` and :class:`LatencyLedger` track per-decision
wall-clock cost, because a mapping decision that arrives after the
parallel region has already started is worthless however good it is.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean; the paper's 'hmean' average."""
    values = list(values)
    if not values:
        raise ValueError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic_mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for sanity cross-checks)."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def median(values: Sequence[float]) -> float:
    """Median (the paper quotes a 1.54x median alongside the mean)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]).

    Nearest-rank rather than interpolation: a reported p99 is then an
    actually-observed latency, not a synthetic value between two
    samples.
    """
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if q == 0.0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without float fuzz
    return ordered[int(rank) - 1]


class LatencyLedger:
    """Per-decision latency bookkeeping for the serving runtime.

    Samples are kept raw (one float per decision) — a soak run is at
    most a few hundred thousand requests, and raw samples make the
    nearest-rank percentiles exact instead of bucketed.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))

    @property
    def count(self) -> int:
        return len(self._samples)

    def p50(self) -> float:
        return percentile(self._samples, 50.0) if self._samples else 0.0

    def p99(self) -> float:
        return percentile(self._samples, 99.0) if self._samples else 0.0

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Summary dict for reports (all values in seconds)."""
        return {
            "count": float(self.count),
            "p50": self.p50(),
            "p99": self.p99(),
            "mean": self.mean(),
            "max": self.max(),
        }

    def clear(self) -> None:
        self._samples = []


def speedup(baseline_time: float, policy_time: float) -> float:
    """Speedup of a policy run over the baseline run."""
    if baseline_time <= 0 or policy_time <= 0:
        raise ValueError("times must be positive")
    return baseline_time / policy_time


def speedups_over_baseline(
    times: Mapping[str, float], baseline: str
) -> Dict[str, float]:
    """Per-policy speedups relative to ``times[baseline]``."""
    if baseline not in times:
        raise KeyError(f"baseline {baseline!r} missing from times")
    base = times[baseline]
    return {name: speedup(base, t) for name, t in times.items()}
