"""Result metrics.

The paper reports speedups over the OpenMP-default baseline and averages
with the harmonic mean "to avoid outliers" (Section 7).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean; the paper's 'hmean' average."""
    values = list(values)
    if not values:
        raise ValueError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic_mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for sanity cross-checks)."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def median(values: Sequence[float]) -> float:
    """Median (the paper quotes a 1.54x median alongside the mean)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def speedup(baseline_time: float, policy_time: float) -> float:
    """Speedup of a policy run over the baseline run."""
    if baseline_time <= 0 or policy_time <= 0:
        raise ValueError("times must be positive")
    return baseline_time / policy_time


def speedups_over_baseline(
    times: Mapping[str, float], baseline: str
) -> Dict[str, float]:
    """Per-policy speedups relative to ``times[baseline]``."""
    if baseline not in times:
        raise KeyError(f"baseline {baseline!r} missing from times")
    base = times[baseline]
    return {name: speedup(base, t) for name, t in times.items()}
