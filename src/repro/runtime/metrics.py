"""Result metrics.

The paper reports speedups over the OpenMP-default baseline and averages
with the harmonic mean "to avoid outliers" (Section 7).

The serving runtime (:mod:`repro.serve`) adds a latency dimension:
:func:`percentile` and :class:`LatencyLedger` track per-decision
wall-clock cost, because a mapping decision that arrives after the
parallel region has already started is worthless however good it is.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean; the paper's 'hmean' average."""
    values = list(values)
    if not values:
        raise ValueError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic_mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for sanity cross-checks)."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def median(values: Sequence[float]) -> float:
    """Median (the paper quotes a 1.54x median alongside the mean)."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]).

    Nearest-rank rather than interpolation: a reported p99 is then an
    actually-observed latency, not a synthetic value between two
    samples.
    """
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if q == 0.0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without float fuzz
    return ordered[int(rank) - 1]


#: Upper bounds (seconds) of the default latency histogram: log2-spaced
#: from 1µs to ~4s.  Values beyond the last bound land in an implicit
#: overflow bucket.  Fixed bounds (rather than data-dependent ones) make
#: histograms from different shards directly mergeable.
LATENCY_BUCKET_BOUNDS: tuple = tuple(1e-6 * (2.0 ** k) for k in range(23))


class FixedBucketHistogram:
    """Counts over fixed, pre-declared bucket bounds.

    p50/p99 summaries hide batching-induced shapes — a micro-batching
    server's latency is bimodal (flush-on-full vs flush-on-linger), and
    only the full distribution shows it.  Bucket ``i`` holds values in
    ``(bounds[i-1], bounds[i]]``; one extra overflow bucket catches
    everything beyond the last bound.
    """

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKET_BOUNDS):
        self._bounds = tuple(float(b) for b in bounds)
        if not self._bounds or list(self._bounds) != sorted(self._bounds):
            raise ValueError("bounds must be non-empty and ascending")
        self._counts = [0] * (len(self._bounds) + 1)

    def record(self, value: float) -> None:
        self._counts[bisect.bisect_left(self._bounds, float(value))] += 1

    @property
    def count(self) -> int:
        return sum(self._counts)

    def snapshot(self) -> Dict[str, list]:
        return {
            "bounds": list(self._bounds),
            "counts": list(self._counts),
        }

    def merge(self, snapshot: Mapping[str, list]) -> None:
        """Fold another histogram's snapshot in (same bounds required).

        This is how the fleet aggregates per-shard latency: fixed
        shared bounds make the merge a plain elementwise sum.
        """
        if list(snapshot["bounds"]) != list(self._bounds):
            raise ValueError("cannot merge histograms with different "
                             "bucket bounds")
        for i, count in enumerate(snapshot["counts"]):
            self._counts[i] += int(count)

    def nonzero(self) -> List[tuple]:
        """``(label, count)`` for populated buckets, in bound order."""
        out = []
        for i, count in enumerate(self._counts):
            if not count:
                continue
            if i == len(self._bounds):
                label = f">{_si(self._bounds[-1])}"
            else:
                low = 0.0 if i == 0 else self._bounds[i - 1]
                label = f"{_si(low)}-{_si(self._bounds[i])}"
            out.append((label, count))
        return out


def _si(seconds: float) -> str:
    """Compact seconds rendering for histogram bucket labels."""
    if seconds >= 1.0:
        return f"{seconds:g}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:g}ms"
    return f"{seconds * 1e6:g}us"


class Gauge:
    """Running min/mean/max/last of an operational quantity.

    Used for queue depth and micro-batch size: a mean alone hides the
    bursts that cause shedding, a max alone hides the steady state.
    """

    def __init__(self) -> None:
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._last = 0.0

    def record(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._total += value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        self._last = value

    @property
    def count(self) -> int:
        return self._count

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": float(self._count),
            "min": self._min if self._min is not None else 0.0,
            "max": self._max if self._max is not None else 0.0,
            "mean": self._total / self._count if self._count else 0.0,
            "last": self._last,
        }

    def merge(self, snapshot: Mapping[str, float]) -> None:
        """Fold another gauge's snapshot in (fleet aggregation)."""
        count = int(snapshot.get("count", 0))
        if count <= 0:
            return
        mean = float(snapshot.get("mean", 0.0))
        self._total += mean * count
        self._count += count
        low, high = float(snapshot["min"]), float(snapshot["max"])
        self._min = low if self._min is None else min(self._min, low)
        self._max = high if self._max is None else max(self._max, high)
        self._last = float(snapshot.get("last", self._last))


class LatencyLedger:
    """Per-decision latency bookkeeping for the serving runtime.

    Samples are kept raw (one float per decision) — a soak run is at
    most a few hundred thousand requests, and raw samples make the
    nearest-rank percentiles exact instead of bucketed.  A fixed-bucket
    histogram rides along for distribution-shape reporting and
    cross-shard merging.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self.histogram = FixedBucketHistogram()

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))
        self.histogram.record(float(seconds))

    @property
    def count(self) -> int:
        return len(self._samples)

    def p50(self) -> float:
        return percentile(self._samples, 50.0) if self._samples else 0.0

    def p99(self) -> float:
        return percentile(self._samples, 99.0) if self._samples else 0.0

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def snapshot(self) -> Dict[str, float]:
        """Summary dict for reports (all values in seconds)."""
        return {
            "count": float(self.count),
            "p50": self.p50(),
            "p99": self.p99(),
            "mean": self.mean(),
            "max": self.max(),
        }

    def clear(self) -> None:
        self._samples = []
        self.histogram = FixedBucketHistogram()


class Counter:
    """Monotonic named event counts with mergeable snapshots.

    The fleet's lifecycle bookkeeping (streams migrated, epochs swapped,
    restarts granted, shards evacuated) flows through one of these so a
    :class:`~repro.serve.report.FleetReport` aggregates events the same
    way it aggregates histograms and gauges: by merging snapshots, never
    by reaching into live objects.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def bump(self, name: str, amount: int = 1) -> int:
        if amount < 0:
            raise ValueError("counters are monotonic; amount must be >= 0")
        value = self._counts.get(name, 0) + int(amount)
        self._counts[name] = value
        return value

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(self._counts)

    def merge(self, snapshot: Mapping[str, int]) -> None:
        for name, count in snapshot.items():
            if int(count) < 0:
                raise ValueError(f"counter {name!r} snapshot is negative")
            self._counts[name] = self._counts.get(name, 0) + int(count)


def speedup(baseline_time: float, policy_time: float) -> float:
    """Speedup of a policy run over the baseline run."""
    if baseline_time <= 0 or policy_time <= 0:
        raise ValueError("times must be positive")
    return baseline_time / policy_time


def speedups_over_baseline(
    times: Mapping[str, float], baseline: str
) -> Dict[str, float]:
    """Per-policy speedups relative to ``times[baseline]``."""
    if baseline not in times:
        raise KeyError(f"baseline {baseline!r} missing from times")
    base = times[baseline]
    return {name: speedup(base, t) for name, t in times.items()}
