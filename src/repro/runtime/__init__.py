"""The co-execution runtime: engine and metrics."""

from .engine import (
    CoExecutionEngine,
    JobSpec,
    Selection,
    SimulationResult,
    TimelinePoint,
)
from .tracing import TickRecord, TickTracer
from .metrics import (
    geometric_mean,
    harmonic_mean,
    median,
    speedup,
    speedups_over_baseline,
)

__all__ = [
    "CoExecutionEngine",
    "JobSpec",
    "Selection",
    "SimulationResult",
    "TickRecord",
    "TickTracer",
    "TimelinePoint",
    "geometric_mean",
    "harmonic_mean",
    "median",
    "speedup",
    "speedups_over_baseline",
]
